//! Live multi-server tests: real `e2nvm-server` instances on
//! ephemeral loopback ports, a real router over them. Everything a
//! unit test cannot prove about the cluster — replication actually
//! lands on R servers, failover actually survives a kill, read
//! repair actually re-fills a replica — is proven here.

use e2nvm_cluster::{ClusterClient, ClusterConfig, NodeState};
use e2nvm_kvstore::{NvmKvStore, StoreError};
use e2nvm_server::demo::{demo_store, demo_store_with_fault};
use e2nvm_server::{Client, Server, ServerConfig, ServerHandle};
use e2nvm_sim::FaultConfig;
use std::collections::BTreeMap;
use std::time::Duration;

/// Boot `n` independent demo servers; returns their handles and
/// addresses in node-index order.
fn start_servers(n: usize) -> (Vec<ServerHandle>, Vec<String>) {
    let handles: Vec<ServerHandle> = (0..n)
        .map(|i| {
            let store = demo_store(2, 256, 32, 11 + i as u64);
            Server::new(store, ServerConfig::default())
                .start()
                .expect("server binds an ephemeral port")
        })
        .collect();
    let addrs = handles.iter().map(|h| h.local_addr().to_string()).collect();
    (handles, addrs)
}

fn cluster_over(addrs: &[String], replication: usize, probing: bool) -> ClusterClient {
    let cfg = ClusterConfig::builder()
        .addrs(addrs.iter().cloned())
        .replication(replication)
        .probing(probing)
        .probe_interval(Duration::from_millis(50))
        .wear_drain_threshold(0.02)
        .build()
        .expect("valid cluster config");
    ClusterClient::connect(cfg)
}

/// CRUD through the router against a shadow map, then verify every
/// key is physically present on exactly its R-way replica set by
/// asking each server directly.
#[test]
fn three_nodes_replicate_every_write_r_ways() {
    let (handles, addrs) = start_servers(3);
    let mut cluster = cluster_over(&addrs, 2, false);

    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for key in 0..60u64 {
        let value = format!("value-{key}").into_bytes();
        cluster.put(key, &value).expect("replicated put");
        shadow.insert(key, value);
    }
    for key in (0..60u64).step_by(3) {
        assert!(cluster.delete(key).expect("replicated delete"));
        shadow.remove(&key);
    }
    for key in 0..60u64 {
        assert_eq!(
            cluster.get(key).expect("cluster get").as_ref(),
            shadow.get(&key),
            "key {key} diverged"
        );
    }
    let scanned = cluster.scan(0, 59).expect("merged scan");
    let expect: Vec<(u64, Vec<u8>)> = shadow.iter().map(|(k, v)| (*k, v.clone())).collect();
    assert_eq!(scanned, expect, "merged scan diverged from shadow");

    // Replication audit: every surviving key sits on each node of its
    // replica set, and on no other node.
    let mut direct: Vec<Client> = addrs
        .iter()
        .map(|a| Client::connect(a).expect("direct connect"))
        .collect();
    for (key, value) in &shadow {
        let set = cluster.ring().replicas(*key, 2);
        for (node, client) in direct.iter_mut().enumerate() {
            let held = client.get(*key).expect("direct get");
            if set.contains(&node) {
                assert_eq!(
                    held.as_deref(),
                    Some(value.as_slice()),
                    "key {key} missing from replica node {node}"
                );
            } else {
                assert_eq!(held, None, "key {key} leaked to non-replica node {node}");
            }
        }
    }

    cluster.shutdown_all();
    for h in handles {
        h.join();
    }
}

/// Kill a server mid-workload: every previously acked write must stay
/// readable through the survivors, new writes must keep succeeding
/// (the ring walk promotes the next node), and the router must mark
/// the dead node down on its own — no prober involved.
#[test]
fn killing_a_node_loses_no_acked_write() {
    let (mut handles, addrs) = start_servers(3);
    let mut cluster = cluster_over(&addrs, 2, false);

    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    for key in 0..80u64 {
        let value = format!("pre-kill-{key}").into_bytes();
        cluster.put(key, &value).expect("put before kill");
        shadow.insert(key, value);
    }

    // Hard-stop node 1 (shutdown + join = its port stops answering).
    let victim = handles.remove(1);
    victim.shutdown();
    victim.join();

    // Every acked write is still served, through whatever replicas
    // survived; the first operations that touch node 1 mark it down.
    for (key, value) in &shadow {
        assert_eq!(
            cluster.get(*key).expect("get after kill").as_deref(),
            Some(value.as_slice()),
            "acked key {key} lost after node kill"
        );
    }
    assert_eq!(cluster.view().state(1), NodeState::Down);

    // Writes keep flowing: sets that contained node 1 are promoted.
    for key in 80..120u64 {
        let value = format!("post-kill-{key}").into_bytes();
        cluster.put(key, &value).expect("put after kill");
        shadow.insert(key, value);
    }
    for (key, value) in &shadow {
        assert_eq!(
            cluster.get(*key).expect("get post-kill").as_deref(),
            Some(value.as_slice())
        );
    }
    assert!(cluster.cluster_stats().snapshot().nodes_marked_down >= 1);

    cluster.shutdown_all();
    for h in handles {
        h.join();
    }
}

/// Read repair: a router whose view has node 0 down writes a key to
/// the promoted set; a *fresh* router (all-healthy view) then reads
/// the key — its walk tries node 0 first, misses, falls back, and
/// must repair node 0 in-line so the next direct read hits it.
#[test]
fn get_repairs_a_replica_that_missed_the_write() {
    let (handles, addrs) = start_servers(3);
    let mut writer = cluster_over(&addrs, 2, false);

    // Find a key whose primary is node 0.
    let key = (0..10_000u64)
        .find(|&k| writer.ring().primary(k) == 0)
        .expect("some key lands on node 0");

    // Simulate a router that believed node 0 was dead: the write
    // lands on the promoted replica set, skipping node 0.
    writer.view().mark_down(0);
    writer.put(key, b"repaired-later").expect("promoted put");
    let mut direct = Client::connect(&addrs[0]).expect("connect node 0");
    assert_eq!(direct.get(key).expect("direct get"), None);

    // A fresh router sees node 0 healthy, misses there, finds the
    // value on the fallback replica, and repairs node 0.
    let mut reader = cluster_over(&addrs, 2, false);
    assert_eq!(
        reader.get(key).expect("fallback get").as_deref(),
        Some(&b"repaired-later"[..])
    );
    assert_eq!(reader.cluster_stats().snapshot().read_repairs, 1);
    assert_eq!(
        direct.get(key).expect("direct get after repair").as_deref(),
        Some(&b"repaired-later"[..]),
        "read repair did not re-fill the missed replica"
    );

    reader.shutdown_all();
    for h in handles {
        h.join();
    }
}

/// Wear-driven drain, end to end: one server runs on a device with a
/// tiny endurance budget; the prober sees its retired_segments rise,
/// flips it to draining, and the router's maintenance pass re-homes
/// its keys — all while every acked write stays readable and new
/// writes avoid the dying device.
#[test]
fn wear_crossing_threshold_drains_the_node_before_it_dies() {
    // Node 0 wears out fast; nodes 1 and 2 are effectively immortal.
    let mut handles = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..3usize {
        let store = if i == 0 {
            demo_store_with_fault(
                2,
                128,
                64,
                7,
                Some(FaultConfig {
                    seed: 0xFA_57,
                    endurance_bits: 6_000,
                    ..FaultConfig::default()
                }),
            )
        } else {
            demo_store(2, 256, 64, 11 + i as u64)
        };
        let h = Server::new(store, ServerConfig::default())
            .start()
            .expect("server binds");
        addrs.push(h.local_addr().to_string());
        handles.push(h);
    }
    let mut cluster = cluster_over(&addrs, 2, true);

    // Dense values burn node 0's endurance; keep writing until the
    // prober flips it to draining (or give up and fail).
    let mut shadow: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
    let mut drained = false;
    'outer: for round in 0..600u64 {
        for i in 0..8u64 {
            let key = (round * 8 + i) % 64;
            let value: Vec<u8> = (0..48)
                .map(|j| ((key ^ round).wrapping_mul(0x9E37) as u8).wrapping_add(j))
                .collect();
            cluster.put(key, &value).expect("replicated put under wear");
            shadow.insert(key, value);
        }
        if cluster.view().state(0) == NodeState::Draining {
            drained = true;
            break 'outer;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        drained,
        "prober never flipped the wearing node to draining; view: {:?}",
        cluster.view().snapshot()
    );

    // The maintenance hook claims the pending drain and re-homes.
    cluster.maintenance();
    let stats = cluster.cluster_stats().snapshot();
    assert!(stats.drains_completed >= 1, "drain never ran: {stats:?}");

    // Post-drain: writes exclude node 0, reads still verify.
    for key in 100..140u64 {
        let value = format!("post-drain-{key}").into_bytes();
        cluster.put(key, &value).expect("put post-drain");
        shadow.insert(key, value);
        assert!(
            !cluster
                .ring()
                .replicas_where(key, 2, |n| {
                    cluster.view().state(n) == NodeState::Healthy
                })
                .contains(&0),
            "write set still contains the draining node"
        );
    }
    for (key, value) in &shadow {
        assert_eq!(
            cluster.get(*key).expect("get post-drain").as_deref(),
            Some(value.as_slice()),
            "acked key {key} lost across the wear drain"
        );
    }

    cluster.shutdown_all();
    for h in handles {
        h.join();
    }
}

/// With every node down, operations fail with the typed cluster
/// errors — never a panic, never a silent success.
#[test]
fn all_nodes_down_yields_typed_errors() {
    let (handles, addrs) = start_servers(2);
    let mut cluster = cluster_over(&addrs, 2, false);
    cluster.put(1, b"x").expect("put while alive");
    cluster.view().mark_down(0);
    cluster.view().mark_down(1);
    match cluster.put(2, b"y") {
        Err(StoreError::Unroutable { key: 2 }) => {}
        other => panic!("expected Unroutable, got {other:?}"),
    }
    match cluster.get(1) {
        Err(StoreError::Unroutable { key: 1 }) => {}
        other => panic!("expected Unroutable, got {other:?}"),
    }

    // Servers are actually still alive; shut them down directly.
    for (addr, h) in addrs.iter().zip(handles) {
        Client::connect(addr)
            .and_then(|mut c| c.shutdown_server())
            .expect("direct shutdown");
        h.join();
    }
}
