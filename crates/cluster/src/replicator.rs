//! The replication data path: R-way fan-out writes, ordered-fallback
//! reads with per-key read repair, and the transport/store error
//! split that drives failover.
//!
//! ## Write path
//!
//! A PUT or DELETE goes to every node in the key's *write replica
//! set*: the first R **healthy** nodes met walking the ring (draining
//! and down nodes are walked past, which is how a replacement replica
//! is promoted). The operation acks only when **every** node in the
//! set acked — the "zero lost acked writes" claim of the failover
//! experiments rests exactly here: an acked write provably exists on
//! R servers, so losing any single one of them cannot lose the write.
//! A transport error marks the node down *immediately* (no waiting
//! for the next probe tick) and the whole set is retried against a
//! fresh walk — the dead node's slot falls to the next node on the
//! circle, and re-putting to replicas that already acked is
//! idempotent. A server-side error frame (out of space, degraded)
//! fails the operation with [`StoreError::ReplicationFailed`] but
//! leaves the node up — the store said no, the network is fine — and
//! the caller knows the write may exist on the replicas that did ack.
//!
//! ## Read path
//!
//! A GET walks the key's *read replica set* and returns the first
//! hit. The set is the healthy write walk first, then draining nodes
//! as fallback: a draining device still serves reads, but only for
//! keys no healthy replica holds — the healthy copy is always newest
//! (writes stopped reaching the draining node the moment it flipped),
//! so consulting the draining node first could return a stale value
//! for a key updated since the drain began. Healthy replicas earlier
//! in the walk that missed the key are repaired with a
//! background-free, in-line re-put — so a replica promoted after a
//! failure converges toward a full copy one read at a time, without
//! any server-to-server protocol.

use crate::health::NodeState;
use crate::router::ClusterClient;
use e2nvm_kvstore::StoreError;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// True when the error means "the node (or the path to it) is gone"
/// rather than "the server answered with an error frame". Client
/// protocol-level failures surface as `Other`/`InvalidData`, which
/// must *not* mark a node down — a degraded store still holds data.
pub(crate) fn is_transport(e: &std::io::Error) -> bool {
    !matches!(
        e.kind(),
        std::io::ErrorKind::Other | std::io::ErrorKind::InvalidData
    )
}

impl ClusterClient {
    /// The key's write replica set: first R healthy nodes on the walk.
    fn write_set(&self, key: u64) -> Vec<usize> {
        let view = self.view.clone();
        self.ring.replicas_where(key, self.cfg.replication, |n| {
            view.state(n) == NodeState::Healthy
        })
    }

    /// The key's read replica set: the healthy write walk first, then
    /// draining nodes (stale-capable, so fallback only) to fill the
    /// set out to R. See the module docs for why this order is a
    /// correctness requirement, not a preference.
    fn read_set(&self, key: u64) -> Vec<usize> {
        let view = self.view.clone();
        let mut set = self.write_set(key);
        if set.len() < self.cfg.replication {
            let draining = self.ring.replicas_where(key, self.cfg.replication, |n| {
                view.state(n) == NodeState::Draining
            });
            set.extend(draining.into_iter().take(self.cfg.replication - set.len()));
        }
        set
    }

    /// One fan-out attempt of `op` over the key's current write set.
    /// Returns `Ok(Some(fold))` when every replica acked (folding the
    /// per-replica answers), `Ok(None)` when a transport failure
    /// shrank the set mid-attempt (caller re-walks and retries), and
    /// `Err` on a store-level rejection or an empty set.
    fn write_attempt<T: Copy>(
        &mut self,
        key: u64,
        init: T,
        mut op: impl FnMut(&mut e2nvm_server::Client, u64, T) -> std::io::Result<T>,
    ) -> Result<Option<T>, StoreError> {
        let set = self.write_set(key);
        if set.is_empty() {
            return Err(StoreError::Unroutable { key });
        }
        let required = set.len();
        let mut acked = 0usize;
        let mut folded = init;
        let mut node_lost = false;
        let mut store_reject: Option<String> = None;
        for node in set {
            match self.conn(node).and_then(|c| op(c, key, folded)) {
                Ok(v) => {
                    folded = v;
                    acked += 1;
                }
                Err(e) if is_transport(&e) => {
                    self.fail_node(node);
                    self.stats
                        .replica_write_failures
                        .fetch_add(1, Ordering::Relaxed);
                    node_lost = true;
                }
                Err(e) => {
                    self.stats
                        .replica_write_failures
                        .fetch_add(1, Ordering::Relaxed);
                    store_reject = Some(e.to_string());
                }
            }
        }
        if let Some(msg) = store_reject {
            // A live store refused the mutation: retrying the same
            // walk would refuse again. Partial acks are reported, not
            // hidden — see StoreError::ReplicationFailed docs.
            return Err(if acked == 0 && !node_lost {
                StoreError::Remote(msg)
            } else {
                StoreError::ReplicationFailed { acked, required }
            });
        }
        if node_lost {
            return Ok(None);
        }
        Ok(Some(folded))
    }

    /// Fully-acked replicated write: retries the fan-out on a fresh
    /// ring walk whenever a replica dies mid-operation, so an `Ok`
    /// means the mutation exists on a complete, currently-live
    /// replica set. Bounded by the node count — each retry is paid
    /// for by at least one node leaving the ring.
    fn replicated_write<T: Copy>(
        &mut self,
        key: u64,
        init: T,
        mut op: impl FnMut(&mut e2nvm_server::Client, u64, T) -> std::io::Result<T>,
    ) -> Result<T, StoreError> {
        // +1: the first attempt is not a retry.
        for _ in 0..self.cfg.addrs.len() + 1 {
            if let Some(folded) = self.write_attempt(key, init, &mut op)? {
                return Ok(folded);
            }
        }
        // Unreachable in practice (every retry consumed a node), but
        // never loop unbounded on a pathological view.
        Err(StoreError::Unroutable { key })
    }

    /// R-way replicated PUT; acks only when every replica in the
    /// (possibly re-walked) write set stored the value.
    pub(crate) fn replicated_put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        self.stats.puts.fetch_add(1, Ordering::Relaxed);
        self.replicated_write(key, (), |c, k, ()| c.put(k, value))
    }

    /// Replicated DELETE; `existed` is the OR over replica answers (a
    /// promoted replica may never have held the key even though the
    /// cluster did). Draining nodes are deliberately skipped — no
    /// writes to a dying device — so a key deleted while one of its
    /// replicas drains can be re-homed by that node's drain pass;
    /// see [`crate::router::ClusterClient::drain`].
    pub(crate) fn replicated_delete(&mut self, key: u64) -> Result<bool, StoreError> {
        self.stats.deletes.fetch_add(1, Ordering::Relaxed);
        self.replicated_write(key, false, |c, k, existed| Ok(existed | c.delete(k)?))
    }

    /// Ordered-fallback GET with read repair (see module docs).
    pub(crate) fn replicated_get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.stats.gets.fetch_add(1, Ordering::Relaxed);
        let set = self.read_set(key);
        if set.is_empty() {
            return Err(StoreError::Unroutable { key });
        }
        let mut missed_healthy: Vec<usize> = Vec::new();
        let mut answered = false;
        for node in set {
            match self.conn(node).and_then(|c| c.get(key)) {
                Ok(Some(value)) => {
                    // Repair earlier replicas that should hold the key
                    // but answered "not found".
                    for miss in missed_healthy {
                        if self.conn(miss).and_then(|c| c.put(key, &value)).is_ok() {
                            self.stats.read_repairs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    return Ok(Some(value));
                }
                Ok(None) => {
                    answered = true;
                    if self.view.state(node) == NodeState::Healthy {
                        missed_healthy.push(node);
                    }
                }
                Err(e) if is_transport(&e) => self.fail_node(node),
                Err(_) => answered = true,
            }
        }
        if answered {
            Ok(None)
        } else {
            // Every replica fell to a transport error mid-walk.
            Err(StoreError::Unroutable { key })
        }
    }

    /// Merged SCAN over every readable node: the union of per-node
    /// results, each key's value taken from the node earliest in that
    /// key's ring walk (replicas agree after repair, so this is a
    /// tie-break, not a consistency mechanism).
    pub(crate) fn merged_scan(
        &mut self,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.stats.scans.fetch_add(1, Ordering::Relaxed);
        let mut merged: BTreeMap<u64, (usize, Vec<u8>)> = BTreeMap::new();
        let mut any_node = false;
        for node in 0..self.cfg.addrs.len() {
            if self.view.state(node) == NodeState::Down {
                continue;
            }
            let entries = match self.conn(node).and_then(|c| c.scan(lo, hi, 0)) {
                Ok(entries) => entries,
                Err(e) if is_transport(&e) => {
                    self.fail_node(node);
                    continue;
                }
                Err(e) => return Err(StoreError::Remote(e.to_string())),
            };
            any_node = true;
            for (key, value) in entries {
                let rank = self
                    .read_set(key)
                    .iter()
                    .position(|&n| n == node)
                    .unwrap_or(usize::MAX);
                match merged.get(&key) {
                    Some((best, _)) if *best <= rank => {}
                    _ => {
                        merged.insert(key, (rank, value));
                    }
                }
            }
        }
        if !any_node {
            return Err(StoreError::Unroutable { key: lo });
        }
        Ok(merged.into_iter().map(|(k, (_, v))| (k, v)).collect())
    }
}

/// Router-side operation counters (atomics — cheap, lock-free, and
/// shared with any thread holding the `Arc`).
#[derive(Debug, Default)]
pub struct ClusterStats {
    /// Replicated PUTs attempted.
    pub puts: AtomicU64,
    /// Cluster GETs attempted.
    pub gets: AtomicU64,
    /// Replicated DELETEs attempted.
    pub deletes: AtomicU64,
    /// Merged SCANs attempted.
    pub scans: AtomicU64,
    /// Per-replica write attempts that failed (transport or store).
    pub replica_write_failures: AtomicU64,
    /// Replicas re-filled by the GET read-repair path.
    pub read_repairs: AtomicU64,
    /// Nodes this router marked down (probe or data path).
    pub nodes_marked_down: AtomicU64,
    /// Wear-driven drains completed.
    pub drains_completed: AtomicU64,
    /// Keys re-homed off draining nodes.
    pub keys_rehomed: AtomicU64,
    /// Drain passes that failed (kept for maintenance(), which
    /// swallows the error itself).
    pub drain_errors: AtomicU64,
}

impl ClusterStats {
    pub(crate) fn note_node_down(&self) {
        self.nodes_marked_down.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn note_drain(&self, rehomed: usize) {
        self.drains_completed.fetch_add(1, Ordering::Relaxed);
        self.keys_rehomed
            .fetch_add(rehomed as u64, Ordering::Relaxed);
    }

    pub(crate) fn note_drain_error(&self) {
        self.drain_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Zero every counter.
    pub fn reset(&self) {
        for counter in [
            &self.puts,
            &self.gets,
            &self.deletes,
            &self.scans,
            &self.replica_write_failures,
            &self.read_repairs,
            &self.nodes_marked_down,
            &self.drains_completed,
            &self.keys_rehomed,
            &self.drain_errors,
        ] {
            counter.store(0, Ordering::Relaxed);
        }
    }

    /// A plain-value copy for reports and assertions.
    pub fn snapshot(&self) -> ClusterStatsSnapshot {
        ClusterStatsSnapshot {
            puts: self.puts.load(Ordering::Relaxed),
            gets: self.gets.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            scans: self.scans.load(Ordering::Relaxed),
            replica_write_failures: self.replica_write_failures.load(Ordering::Relaxed),
            read_repairs: self.read_repairs.load(Ordering::Relaxed),
            nodes_marked_down: self.nodes_marked_down.load(Ordering::Relaxed),
            drains_completed: self.drains_completed.load(Ordering::Relaxed),
            keys_rehomed: self.keys_rehomed.load(Ordering::Relaxed),
            drain_errors: self.drain_errors.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value view of [`ClusterStats`] at one moment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStatsSnapshot {
    /// Replicated PUTs attempted.
    pub puts: u64,
    /// Cluster GETs attempted.
    pub gets: u64,
    /// Replicated DELETEs attempted.
    pub deletes: u64,
    /// Merged SCANs attempted.
    pub scans: u64,
    /// Per-replica write attempts that failed.
    pub replica_write_failures: u64,
    /// Replicas re-filled by read repair.
    pub read_repairs: u64,
    /// Nodes marked down.
    pub nodes_marked_down: u64,
    /// Wear-driven drains completed.
    pub drains_completed: u64,
    /// Keys re-homed off draining nodes.
    pub keys_rehomed: u64,
    /// Drain passes that failed.
    pub drain_errors: u64,
}
