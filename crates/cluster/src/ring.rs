//! Consistent-hash ring with virtual nodes.
//!
//! The router hashes every key onto a 64-bit circle; each server owns
//! the arcs that end at its virtual-node points. Virtual nodes (many
//! ring points per server) smooth the arc lengths so load spreads
//! within a few percent of uniform, and a key's *replica set* is the
//! first `r` **distinct** servers met walking clockwise from the key's
//! hash — so when a server leaves the ring (killed, or drained for
//! wear), each of its arcs falls to the next server on the circle and
//! only `1/n` of the keyspace moves.
//!
//! The ring is pure data: it never talks to the network and knows
//! nothing about node health. The router composes it with the
//! [`crate::health::ClusterView`] by passing a liveness predicate to
//! [`HashRing::replicas_where`].

/// Multiplier used by the SplitMix64 finalizer.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: the same cheap, high-quality 64-bit mix the
/// simulator's fault model uses — deterministic across runs by design.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring mapping 64-bit keys to node indices.
///
/// Construction is deterministic in `(nodes, vnodes)`: every router
/// and every experiment re-derives the identical ring, so routing
/// decisions need no coordination service.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(point, node)` pairs sorted by point; the node owns the arc
    /// ending at its point.
    points: Vec<(u64, usize)>,
    nodes: usize,
    vnodes: usize,
}

impl HashRing {
    /// Build a ring for `nodes` servers with `vnodes` virtual nodes
    /// each.
    ///
    /// # Panics
    /// Panics when `nodes` or `vnodes` is zero — an empty ring cannot
    /// route anything and is always a configuration bug.
    pub fn new(nodes: usize, vnodes: usize) -> Self {
        assert!(nodes > 0, "a ring needs at least one node");
        assert!(vnodes > 0, "a ring needs at least one vnode per node");
        let mut points = Vec::with_capacity(nodes * vnodes);
        for node in 0..nodes {
            for v in 0..vnodes {
                // Decorrelate the (node, vnode) pair into one seed.
                let seed = (node as u64).wrapping_mul(GOLDEN) ^ (v as u64);
                points.push((splitmix64(seed), node));
            }
        }
        points.sort_unstable();
        // Hash collisions across distinct nodes are astronomically
        // unlikely but would make ownership order-dependent; dedup by
        // point keeps the ring a function.
        points.dedup_by_key(|(p, _)| *p);
        HashRing {
            points,
            nodes,
            vnodes,
        }
    }

    /// Number of servers on the ring.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Virtual nodes per server.
    pub fn vnodes(&self) -> usize {
        self.vnodes
    }

    /// Where `key` lands on the circle.
    fn point_of(key: u64) -> u64 {
        splitmix64(key)
    }

    /// Index into `points` of the first ring point at or after `key`'s
    /// hash (wrapping).
    fn start_index(&self, key: u64) -> usize {
        let p = Self::point_of(key);
        match self.points.binary_search_by(|(pt, _)| pt.cmp(&p)) {
            Ok(i) => i,
            Err(i) => i % self.points.len(),
        }
    }

    /// The key's primary: the first node met walking clockwise.
    pub fn primary(&self, key: u64) -> usize {
        self.points[self.start_index(key)].1
    }

    /// The first `r` **distinct** nodes met walking clockwise from
    /// `key` — the key's replica set, in preference order. `r` is
    /// clamped to the node count.
    pub fn replicas(&self, key: u64, r: usize) -> Vec<usize> {
        self.replicas_where(key, r, |_| true)
    }

    /// Like [`HashRing::replicas`], but only nodes satisfying `live`
    /// count — the walk *extends past* excluded nodes, so when a
    /// replica is down or draining the next node on the circle is
    /// promoted into the set. This is the whole failover mechanism:
    /// no rebalancing step, just a longer walk.
    pub fn replicas_where(
        &self,
        key: u64,
        r: usize,
        mut live: impl FnMut(usize) -> bool,
    ) -> Vec<usize> {
        let want = r.min(self.nodes).max(1);
        let start = self.start_index(key);
        let mut out = Vec::with_capacity(want);
        let mut seen = vec![false; self.nodes];
        for off in 0..self.points.len() {
            let (_, node) = self.points[(start + off) % self.points.len()];
            if seen[node] {
                continue;
            }
            seen[node] = true;
            if live(node) {
                out.push(node);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }

    /// Fraction of the hash circle each node owns as *primary* —
    /// the expected share of the keyspace it serves first. Sums to
    /// 1.0; with enough vnodes every entry is close to `1/nodes`.
    pub fn ownership(&self) -> Vec<f64> {
        let mut arcs = vec![0u128; self.nodes];
        for i in 0..self.points.len() {
            let (p, node) = self.points[i];
            let prev = if i == 0 {
                // The arc wrapping past 0 belongs to the first point.
                self.points[self.points.len() - 1].0
            } else {
                self.points[i - 1].0
            };
            arcs[node] += u128::from(p.wrapping_sub(prev));
        }
        let total: u128 = arcs.iter().sum();
        arcs.iter().map(|&a| a as f64 / total as f64).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic() {
        let a = HashRing::new(5, 64);
        let b = HashRing::new(5, 64);
        for key in 0..1000u64 {
            assert_eq!(a.replicas(key, 3), b.replicas(key, 3));
        }
    }

    #[test]
    fn replicas_are_distinct_and_ordered_by_walk() {
        let ring = HashRing::new(4, 64);
        for key in 0..1000u64 {
            let set = ring.replicas(key, 3);
            assert_eq!(set.len(), 3);
            let mut sorted = set.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), 3, "duplicate node in replica set");
            assert_eq!(set[0], ring.primary(key));
        }
    }

    #[test]
    fn replica_count_clamps_to_node_count() {
        let ring = HashRing::new(2, 16);
        assert_eq!(ring.replicas(7, 5).len(), 2);
    }

    #[test]
    fn excluding_a_node_promotes_the_next_on_the_circle() {
        let ring = HashRing::new(4, 64);
        for key in 0..500u64 {
            let full = ring.replicas(key, 2);
            let dead = full[0];
            let after = ring.replicas_where(key, 2, |n| n != dead);
            assert_eq!(after.len(), 2);
            assert!(!after.contains(&dead));
            // The survivor keeps its slot; only the dead node's slot
            // is re-homed.
            assert!(after.contains(&full[1]));
        }
    }

    #[test]
    fn ownership_is_balanced_within_tolerance() {
        let ring = HashRing::new(5, 128);
        let shares = ring.ownership();
        let sum: f64 = shares.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for (node, share) in shares.iter().enumerate() {
            assert!(
                (0.1..0.3).contains(share),
                "node {node} owns {share:.3} of the ring — vnodes not smoothing"
            );
        }
    }

    #[test]
    fn keyspace_distributes_across_all_nodes() {
        let ring = HashRing::new(3, 64);
        let mut counts = [0usize; 3];
        for key in 0..3000u64 {
            counts[ring.primary(key)] += 1;
        }
        for (node, count) in counts.iter().enumerate() {
            assert!(
                (500..1800).contains(count),
                "node {node} is primary for {count}/3000 keys"
            );
        }
    }
}
