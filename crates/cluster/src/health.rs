//! Shared node-health state and the wear prober.
//!
//! Every routing decision consults a [`ClusterView`]: one
//! [`NodeState`] plus the last wear summary per server, behind a
//! mutex shared by the router and the background [`HealthProber`].
//! The prober polls each server's HEALTH frame (a fixed 40-byte
//! binary probe, cheap enough for sub-second intervals) and applies
//! two transitions:
//!
//! * `Healthy → Draining` when the server's wear fraction
//!   (`retired_segments / total_segments`) crosses the configured
//!   threshold. A draining server stops receiving writes immediately
//!   (the router excludes it from write replica sets) but keeps
//!   serving reads while its keys are re-homed — wear is an early
//!   warning, acted on *before* the device dies.
//! * `any → Down` when the probe cannot connect or the connection
//!   fails mid-probe. A down server is excluded from reads and
//!   writes; the ring walk promotes the next node on the circle.
//!
//! The router also marks nodes `Down` synchronously when an operation
//! hits a transport error, so failover does not wait for the next
//! probe tick.

use e2nvm_kvstore::WearSummary;
use e2nvm_server::Client;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Routing-relevant state of one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeState {
    /// Serving reads and writes.
    Healthy,
    /// Wear crossed the drain threshold: no new writes, still serving
    /// reads while the router re-homes its keys.
    Draining,
    /// Unreachable: excluded from reads and writes.
    Down,
}

impl NodeState {
    /// Render for routing tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            NodeState::Healthy => "healthy",
            NodeState::Draining => "draining",
            NodeState::Down => "down",
        }
    }
}

/// One server's entry in the [`ClusterView`].
#[derive(Debug, Clone)]
pub struct NodeHealth {
    /// Current routing state.
    pub state: NodeState,
    /// Last wear summary a probe (or the router) recorded; default
    /// (all zeros) until the first successful probe.
    pub wear: WearSummary,
    /// Set when the node entered `Draining` and its keys have not
    /// been re-homed yet; cleared by the router's drain pass.
    pub drain_pending: bool,
}

/// Shared, mutex-guarded health state for every node — cheap to
/// clone, all clones observe the same state.
#[derive(Debug, Clone)]
pub struct ClusterView {
    inner: Arc<Mutex<Vec<NodeHealth>>>,
}

impl ClusterView {
    /// A view over `nodes` servers, all initially [`NodeState::Healthy`].
    pub fn new(nodes: usize) -> Self {
        let entries = (0..nodes)
            .map(|_| NodeHealth {
                state: NodeState::Healthy,
                wear: WearSummary::default(),
                drain_pending: false,
            })
            .collect();
        ClusterView {
            inner: Arc::new(Mutex::new(entries)),
        }
    }

    /// Number of nodes tracked.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when the view tracks no nodes.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// Current state of node `i`.
    pub fn state(&self, i: usize) -> NodeState {
        self.inner.lock()[i].state
    }

    /// Snapshot of every node's health (states + wear), for routing
    /// tables and reports.
    pub fn snapshot(&self) -> Vec<NodeHealth> {
        self.inner.lock().clone()
    }

    /// Mark node `i` down (transport failure observed). Idempotent.
    pub fn mark_down(&self, i: usize) {
        self.inner.lock()[i].state = NodeState::Down;
    }

    /// Record a successful probe of node `i`: store the wear summary
    /// and, when the wear fraction crosses `drain_threshold` on a
    /// healthy node, flip it to [`NodeState::Draining`] with a drain
    /// pending. Returns the state after the update.
    pub fn record_probe(&self, i: usize, wear: WearSummary, drain_threshold: f64) -> NodeState {
        let mut nodes = self.inner.lock();
        let node = &mut nodes[i];
        node.wear = wear;
        if node.state == NodeState::Healthy && wear.wear_fraction() >= drain_threshold {
            node.state = NodeState::Draining;
            node.drain_pending = true;
        }
        node.state
    }

    /// Nodes whose drain is pending (entered `Draining`, keys not yet
    /// re-homed). The router claims them with
    /// [`ClusterView::claim_drain`].
    pub fn drains_pending(&self) -> Vec<usize> {
        self.inner
            .lock()
            .iter()
            .enumerate()
            .filter(|(_, n)| n.drain_pending)
            .map(|(i, _)| i)
            .collect()
    }

    /// Atomically claim node `i`'s pending drain; returns false when
    /// another router already claimed it (or none was pending).
    pub fn claim_drain(&self, i: usize) -> bool {
        let mut nodes = self.inner.lock();
        std::mem::take(&mut nodes[i].drain_pending)
    }
}

/// Background thread polling every server's HEALTH frame and updating
/// a [`ClusterView`]. Stops (and joins) on drop.
#[derive(Debug)]
pub struct HealthProber {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HealthProber {
    /// Start probing `addrs` every `interval`, recording into `view`
    /// with the given wear `drain_threshold`. Connections are opened
    /// lazily and re-opened after failures, so a server that comes
    /// back mid-run is probed again (its state, however, only
    /// recovers from `Down` by operator action — flapping nodes must
    /// not silently rejoin with stale data).
    pub fn start(
        addrs: Vec<String>,
        view: ClusterView,
        interval: Duration,
        drain_threshold: f64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("e2nvm-health-prober".into())
            .spawn(move || {
                let mut conns: Vec<Option<Client>> = addrs.iter().map(|_| None).collect();
                while !stop_flag.load(Ordering::Relaxed) {
                    for (i, addr) in addrs.iter().enumerate() {
                        if stop_flag.load(Ordering::Relaxed) {
                            return;
                        }
                        if view.state(i) == NodeState::Down {
                            continue;
                        }
                        if conns[i].is_none() {
                            conns[i] = Client::connect(addr).ok();
                        }
                        let probed = conns[i].as_mut().and_then(|c| c.health().ok());
                        match probed {
                            Some(wear) => {
                                view.record_probe(i, wear, drain_threshold);
                            }
                            None => {
                                // Connect or probe failed: drop the
                                // connection and mark the node down.
                                conns[i] = None;
                                view.mark_down(i);
                            }
                        }
                    }
                    std::thread::sleep(interval);
                }
            })
            .expect("spawn health prober thread");
        HealthProber {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HealthProber {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_past_threshold_flips_to_draining_once() {
        let view = ClusterView::new(2);
        let wear = WearSummary {
            keys: 10,
            free_segments: 90,
            retired_segments: 10,
            retired_physical: 10,
            total_segments: 100,
        };
        assert_eq!(view.record_probe(0, wear, 0.05), NodeState::Draining);
        assert_eq!(view.drains_pending(), vec![0]);
        assert!(view.claim_drain(0));
        assert!(!view.claim_drain(0), "drain claims are one-shot");
        // Further probes past threshold do not re-arm the drain.
        assert_eq!(view.record_probe(0, wear, 0.05), NodeState::Draining);
        assert!(view.drains_pending().is_empty());
        assert_eq!(view.state(1), NodeState::Healthy);
    }

    #[test]
    fn below_threshold_stays_healthy_and_down_is_sticky() {
        let view = ClusterView::new(1);
        let wear = WearSummary {
            keys: 1,
            free_segments: 99,
            retired_segments: 1,
            retired_physical: 1,
            total_segments: 100,
        };
        assert_eq!(view.record_probe(0, wear, 0.05), NodeState::Healthy);
        view.mark_down(0);
        // A later "successful" probe does not resurrect a down node.
        assert_eq!(view.record_probe(0, wear, 0.05), NodeState::Down);
    }
}
