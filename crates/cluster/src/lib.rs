//! # e2nvm-cluster — N servers, one keyspace
//!
//! A client-side cluster layer over `e2nvm-server`: a deterministic
//! consistent-hash [`HashRing`] routes every key to an R-way replica
//! set, a [`ClusterClient`] fans writes out and falls reads back with
//! per-key read repair, and a background [`HealthProber`] polls each
//! server's HEALTH frame so a device that is *wearing out* — rising
//! `retired_segments`, the paper's endurance failure mode — is
//! drained to its replicas **before** it dies, not after.
//!
//! Servers stay entirely cluster-unaware: the wire protocol is
//! unchanged, nodes never talk to each other, and any single-node
//! client keeps working against any one server (see PROTOCOL.md,
//! "routing invisibility"). All coordination is derivable: every
//! router computes the same ring from the same ordered address list.
//!
//! [`ClusterClient`] implements [`e2nvm_kvstore::NvmKvStore`], so a
//! cluster drops in anywhere a single store does — including the
//! Figure-12-style harnesses — and speaks the same typed
//! [`e2nvm_kvstore::StoreError`] language (`Unroutable`,
//! `ReplicationFailed`, `Remote`).
//!
//! ```no_run
//! use e2nvm_cluster::{ClusterClient, ClusterConfig};
//! use e2nvm_kvstore::NvmKvStore;
//!
//! let cfg = ClusterConfig::builder()
//!     .addrs(["127.0.0.1:4242", "127.0.0.1:4243", "127.0.0.1:4244"])
//!     .replication(2)
//!     .wear_drain_threshold(0.05)
//!     .build()
//!     .unwrap();
//! let mut cluster = ClusterClient::connect(cfg);
//! cluster.put(7, b"replicated").unwrap();
//! assert_eq!(cluster.get(7).unwrap().as_deref(), Some(&b"replicated"[..]));
//! ```
//!
//! Operational guidance (thresholds, probe cadence, recovery
//! procedures) lives in OPERATIONS.md; the architecture discussion in
//! DESIGN.md §15.

#![warn(missing_docs)]

pub mod health;
pub mod replicator;
pub mod ring;
pub mod router;

pub use health::{ClusterView, HealthProber, NodeHealth, NodeState};
pub use replicator::{ClusterStats, ClusterStatsSnapshot};
pub use ring::HashRing;
pub use router::{ClusterClient, ClusterConfig, ClusterConfigBuilder};
