//! The cluster router: one [`ClusterClient`] that makes N servers
//! look like a single [`NvmKvStore`].
//!
//! Routing is entirely client-side — servers never talk to each
//! other and need no cluster awareness (the wire protocol is
//! unchanged; see PROTOCOL.md). The router derives the same
//! deterministic [`HashRing`] everywhere, keeps one lazily-connected
//! [`Client`] per server, and consults the shared
//! [`ClusterView`] before every operation. The replication data path
//! (fan-out writes, read repair, error classification) lives in
//! [`crate::replicator`]; this module owns configuration, connection
//! management, drains, and the admin surface.

use crate::health::{ClusterView, HealthProber, NodeState};
use crate::replicator::ClusterStats;
use crate::ring::HashRing;
use e2nvm_kvstore::{NvmKvStore, StoreError, WearSummary};
use e2nvm_server::Client;
use std::sync::Arc;
use std::time::Duration;

/// Cluster topology and policy. Build with [`ClusterConfig::builder`].
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    pub(crate) addrs: Vec<String>,
    pub(crate) replication: usize,
    pub(crate) vnodes: usize,
    pub(crate) wear_drain_threshold: f64,
    pub(crate) probe_interval: Duration,
    pub(crate) probing: bool,
}

impl ClusterConfig {
    /// Start building a config. Defaults: replication factor 2
    /// (clamped to the node count), 64 vnodes per server, drain at 5%
    /// retired segments, probe every 200 ms, probing on.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            addrs: Vec::new(),
            replication: 2,
            vnodes: 64,
            wear_drain_threshold: 0.05,
            probe_interval: Duration::from_millis(200),
            probing: true,
        }
    }

    /// Server addresses, in node-index order.
    pub fn addrs(&self) -> &[String] {
        &self.addrs
    }

    /// Effective replication factor (after clamping to node count).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Wear fraction at which a node is drained.
    pub fn wear_drain_threshold(&self) -> f64 {
        self.wear_drain_threshold
    }
}

/// Builder for [`ClusterConfig`].
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    addrs: Vec<String>,
    replication: usize,
    vnodes: usize,
    wear_drain_threshold: f64,
    probe_interval: Duration,
    probing: bool,
}

impl ClusterConfigBuilder {
    /// Server addresses, in node-index order (the index is the node's
    /// identity on the ring, so order matters and must match across
    /// routers).
    pub fn addrs<S: Into<String>>(mut self, addrs: impl IntoIterator<Item = S>) -> Self {
        self.addrs = addrs.into_iter().map(Into::into).collect();
        self
    }

    /// Replica count per key (clamped to the node count at build).
    pub fn replication(mut self, r: usize) -> Self {
        self.replication = r;
        self
    }

    /// Virtual nodes per server (more = smoother balance, larger ring).
    pub fn vnodes(mut self, v: usize) -> Self {
        self.vnodes = v;
        self
    }

    /// Wear fraction (`retired_segments / total_segments`) at which
    /// the prober flips a node to draining. See OPERATIONS.md for
    /// tuning guidance.
    pub fn wear_drain_threshold(mut self, t: f64) -> Self {
        self.wear_drain_threshold = t;
        self
    }

    /// How often the health prober polls each server.
    pub fn probe_interval(mut self, i: Duration) -> Self {
        self.probe_interval = i;
        self
    }

    /// Disable the background prober (tests that drive state
    /// transitions by hand; the router still marks nodes down on
    /// transport errors it observes itself).
    pub fn probing(mut self, on: bool) -> Self {
        self.probing = on;
        self
    }

    /// Validate and build.
    pub fn build(self) -> Result<ClusterConfig, StoreError> {
        if self.addrs.is_empty() {
            return Err(StoreError::Config(
                "cluster needs at least one server".into(),
            ));
        }
        if self.replication == 0 {
            return Err(StoreError::Config("replication factor must be >= 1".into()));
        }
        if self.vnodes == 0 {
            return Err(StoreError::Config("vnodes must be >= 1".into()));
        }
        if !(self.wear_drain_threshold > 0.0 && self.wear_drain_threshold <= 1.0) {
            return Err(StoreError::Config(format!(
                "wear_drain_threshold must be in (0, 1], got {}",
                self.wear_drain_threshold
            )));
        }
        Ok(ClusterConfig {
            replication: self.replication.min(self.addrs.len()),
            addrs: self.addrs,
            vnodes: self.vnodes,
            wear_drain_threshold: self.wear_drain_threshold,
            probe_interval: self.probe_interval,
            probing: self.probing,
        })
    }
}

/// A client-side cluster router implementing [`NvmKvStore`] over N
/// `e2nvm-server` processes: consistent-hash routing, R-way
/// replicated writes, per-key read repair, and wear-driven drains.
///
/// Cloning is intentionally not provided: each router owns its
/// connections. Multiple routers over the same topology agree on
/// routing (the ring is deterministic) but each maintains its own
/// [`ClusterView`] unless one is shared via
/// [`ClusterClient::connect_with_view`].
#[derive(Debug)]
pub struct ClusterClient {
    pub(crate) cfg: ClusterConfig,
    pub(crate) ring: HashRing,
    pub(crate) conns: Vec<Option<Client>>,
    pub(crate) view: ClusterView,
    pub(crate) stats: Arc<ClusterStats>,
    _prober: Option<HealthProber>,
}

impl ClusterClient {
    /// Connect a router over `cfg`'s servers. Connections open
    /// lazily on first use; the health prober (when enabled) starts
    /// immediately.
    pub fn connect(cfg: ClusterConfig) -> Self {
        let view = ClusterView::new(cfg.addrs.len());
        Self::connect_with_view(cfg, view)
    }

    /// Like [`ClusterClient::connect`] but sharing an existing view —
    /// several routers (e.g. one per driver thread) then observe each
    /// other's down-markings and drain claims.
    pub fn connect_with_view(cfg: ClusterConfig, view: ClusterView) -> Self {
        let ring = HashRing::new(cfg.addrs.len(), cfg.vnodes);
        let conns = cfg.addrs.iter().map(|_| None).collect();
        let prober = cfg.probing.then(|| {
            HealthProber::start(
                cfg.addrs.clone(),
                view.clone(),
                cfg.probe_interval,
                cfg.wear_drain_threshold,
            )
        });
        ClusterClient {
            ring,
            conns,
            view,
            stats: Arc::new(ClusterStats::default()),
            _prober: prober,
            cfg,
        }
    }

    /// The shared health view (clone to observe from elsewhere).
    pub fn view(&self) -> ClusterView {
        self.view.clone()
    }

    /// The deterministic hash ring this router routes by.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The router's operation counters.
    pub fn cluster_stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// This router's configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// The connection to node `i`, opening it if needed. A connect
    /// failure marks the node down before returning the error.
    pub(crate) fn conn(&mut self, i: usize) -> std::io::Result<&mut Client> {
        if self.conns[i].is_none() {
            match Client::connect(&self.cfg.addrs[i]) {
                Ok(c) => self.conns[i] = Some(c),
                Err(e) => {
                    self.view.mark_down(i);
                    self.stats.note_node_down();
                    return Err(e);
                }
            }
        }
        Ok(self.conns[i].as_mut().expect("connection just ensured"))
    }

    /// Drop node `i`'s connection and mark it down (transport error
    /// observed by the data path).
    pub(crate) fn fail_node(&mut self, i: usize) {
        self.conns[i] = None;
        self.view.mark_down(i);
        self.stats.note_node_down();
    }

    /// Re-home every key whose presence still depends on node `i`:
    /// scan the (draining, still readable) node and re-put, through
    /// the router, each entry that **no node in the key's current
    /// write set holds** — those are the keys that would go dark if
    /// `i` died. Keys a live replica already holds are skipped: the
    /// live copy is newer or equal (writes stopped reaching `i` the
    /// moment it entered draining, so `i` can never hold the newest
    /// version of a key a healthy replica also has), and re-putting
    /// the draining copy could roll a concurrent update back.
    ///
    /// Returns the number of keys re-homed. Safe to call repeatedly.
    /// A transport failure on `i` itself ends the drain with `Ok(0)`:
    /// failover — not drain — now owns its keys (they live on in the
    /// replicas). Known limitation, shared with read repair: a key
    /// deleted cluster-wide *while* `i` was draining still exists on
    /// `i` (deletes skip draining nodes) and is indistinguishable
    /// from a key that was never re-homed, so the drain resurrects
    /// it; see OPERATIONS.md.
    pub fn drain(&mut self, i: usize) -> Result<usize, StoreError> {
        let entries = match self.conn(i).and_then(|c| c.scan(0, u64::MAX, 0)) {
            Ok(entries) => entries,
            Err(e) if crate::replicator::is_transport(&e) => {
                self.fail_node(i);
                return Ok(0);
            }
            Err(e) => return Err(StoreError::Remote(e.to_string())),
        };
        let mut rehomed = 0usize;
        for (key, value) in entries {
            if self.any_write_replica_holds(key)? {
                continue;
            }
            self.put(key, &value)?;
            rehomed += 1;
        }
        self.stats.note_drain(rehomed);
        Ok(rehomed)
    }

    /// True when at least one node in `key`'s current write replica
    /// set already holds the key (transport failures mark the node
    /// down and keep looking).
    fn any_write_replica_holds(&mut self, key: u64) -> Result<bool, StoreError> {
        let view = self.view.clone();
        let set = self.ring.replicas_where(key, self.cfg.replication, |n| {
            view.state(n) == NodeState::Healthy
        });
        for node in set {
            match self.conn(node).and_then(|c| c.get(key)) {
                Ok(Some(_)) => return Ok(true),
                Ok(None) => {}
                Err(e) if crate::replicator::is_transport(&e) => self.fail_node(node),
                Err(e) => return Err(StoreError::Remote(e.to_string())),
            }
        }
        Ok(false)
    }

    /// Claim and execute every pending drain the prober has flagged.
    /// Returns total keys re-homed. Called from
    /// [`NvmKvStore::maintenance`], so embedders that already call
    /// maintenance periodically get wear-driven drains for free.
    pub fn run_pending_drains(&mut self) -> Result<usize, StoreError> {
        let mut total = 0usize;
        for i in self.view.drains_pending() {
            if self.view.claim_drain(i) {
                total += self.drain(i)?;
            }
        }
        Ok(total)
    }

    /// A markdown routing table: per node — address, state, primary
    /// ring ownership, and last observed wear. This is what the
    /// failover experiments snapshot before and after each event.
    pub fn routing_table(&self) -> String {
        let shares = self.ring.ownership();
        let snapshot = self.view.snapshot();
        let mut out = String::from(
            "| node | address | state | ring share | keys | retired/total segments |\n\
             |-----:|---------|-------|-----------:|-----:|-----------------------:|\n",
        );
        for (i, (node, share)) in snapshot.iter().zip(&shares).enumerate() {
            let WearSummary {
                keys,
                retired_segments,
                total_segments,
                ..
            } = node.wear;
            out.push_str(&format!(
                "| {i} | {} | {} | {:.1}% | {keys} | {retired_segments}/{total_segments} |\n",
                self.cfg.addrs[i],
                node.state.name(),
                share * 100.0,
            ));
        }
        out
    }

    /// Ask every reachable server to shut down gracefully. Used by
    /// experiment harnesses; errors on unreachable nodes are ignored
    /// (they are already down).
    pub fn shutdown_all(&mut self) {
        for i in 0..self.cfg.addrs.len() {
            if self.view.state(i) == NodeState::Down {
                continue;
            }
            if let Ok(conn) = self.conn(i) {
                let _ = conn.shutdown_server();
            }
        }
    }
}

impl NvmKvStore for ClusterClient {
    fn name(&self) -> &'static str {
        "e2nvm-cluster"
    }

    fn put(&mut self, key: u64, value: &[u8]) -> Result<(), StoreError> {
        self.replicated_put(key, value)
    }

    fn get(&mut self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        self.replicated_get(key)
    }

    fn delete(&mut self, key: u64) -> Result<bool, StoreError> {
        self.replicated_delete(key)
    }

    fn scan(&mut self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>, StoreError> {
        self.merged_scan(lo, hi)
    }

    /// Aggregate device statistics are not carried by the binary
    /// protocol (STATS is a JSON document per server); the cluster
    /// returns zeros here and exposes its own counters via
    /// [`ClusterClient::cluster_stats`].
    fn stats(&self) -> e2nvm_sim::DeviceStats {
        e2nvm_sim::DeviceStats::default()
    }

    fn reset_stats(&mut self) {
        self.stats.reset();
    }

    /// Maintenance = execute pending wear-driven drains. Errors are
    /// swallowed (maintenance is a best-effort hook) but counted in
    /// [`ClusterStats`].
    fn maintenance(&mut self) {
        if self.run_pending_drains().is_err() {
            self.stats.note_drain_error();
        }
    }

    /// Fan FLUSH out to every reachable server; returns the summed
    /// snapshot bytes (0 for memory-only servers).
    fn flush(&mut self) -> Result<u64, StoreError> {
        let mut total = 0u64;
        for i in 0..self.cfg.addrs.len() {
            if self.view.state(i) == NodeState::Down {
                continue;
            }
            match self.conn(i).and_then(|c| c.flush()) {
                Ok(bytes) => total += bytes,
                Err(e) if crate::replicator::is_transport(&e) => self.fail_node(i),
                Err(e) => return Err(StoreError::Remote(e.to_string())),
            }
        }
        Ok(total)
    }
}
