//! Bounded structured event journal.
//!
//! Events are rare control-plane occurrences (retrains, pool
//! exhaustion, wear-leveling swaps) — a few per second at most — so the
//! journal trades the metrics module's lock-freedom for structure: a
//! mutex-guarded ring buffer with monotonic sequence numbers and
//! wall-clock timestamps. When the ring is full the oldest entry is
//! dropped and counted, so the journal is safe to leave attached
//! forever.

/// A structured control-plane event emitted by the serving stack.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A background retrain was submitted for `shard`.
    RetrainStarted {
        /// Shard whose retrain was submitted.
        shard: usize,
    },
    /// A retrained model was installed on `shard`. `loss` is the final
    /// training loss of the new model when available.
    RetrainFinished {
        /// Shard the model was installed on.
        shard: usize,
        /// Final training loss of the new model, when available.
        loss: Option<f64>,
        /// Wall-clock training duration in milliseconds.
        duration_ms: u64,
    },
    /// A placement request found cluster `cluster`'s free list empty.
    ClusterExhausted {
        /// Shard the placement ran on.
        shard: usize,
        /// Cluster whose free list was empty.
        cluster: usize,
    },
    /// A placement fell back from the predicted cluster to another
    /// cluster's free list.
    FallbackPlacement {
        /// Shard the placement ran on.
        shard: usize,
        /// Cluster the model predicted.
        predicted: usize,
        /// Cluster that actually supplied the address.
        used: usize,
    },
    /// The wear leveler swapped two physical segments.
    WearLevelSwap {
        /// First physical segment of the swap.
        a: usize,
        /// Second physical segment of the swap.
        b: usize,
    },
    /// A shard-level rebalance or administrative action.
    ShardRebalance {
        /// Source shard.
        from: usize,
        /// Destination shard.
        to: usize,
    },
    /// A physical segment crossed its endurance limit: its content is
    /// frozen and all further writes to it fail (recorded by the
    /// memory controller when the device reports wear-out).
    SegmentWornOut {
        /// The worn-out physical segment.
        segment: usize,
    },
    /// The placement engine permanently retired a worn-out segment
    /// from its address pool (graceful degradation: capacity shrinks
    /// instead of crashing).
    SegmentRetired {
        /// Shard whose pool shrank.
        shard: usize,
        /// The retired segment (shard-local logical id).
        segment: usize,
        /// The physical slot that actually wore out and was
        /// quarantined — under active wear leveling this differs from
        /// the logical id, and it is the id wear heatmaps and the
        /// HEALTH summary are keyed by.
        physical: usize,
    },
    /// The network serving layer bound its listener and began
    /// accepting connections.
    ServerStarted {
        /// The TCP port the listener bound (useful with ephemeral
        /// binds).
        port: usize,
    },
    /// The network serving layer finished a graceful shutdown: the
    /// listener closed and every connection thread drained and joined.
    ServerStopped {
        /// Connections served over the server's lifetime.
        connections_served: usize,
    },
}

impl Event {
    /// Stable kind tag, used as the `kind` field in JSON output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RetrainStarted { .. } => "retrain_started",
            Event::RetrainFinished { .. } => "retrain_finished",
            Event::ClusterExhausted { .. } => "cluster_exhausted",
            Event::FallbackPlacement { .. } => "fallback_placement",
            Event::WearLevelSwap { .. } => "wear_level_swap",
            Event::ShardRebalance { .. } => "shard_rebalance",
            Event::SegmentWornOut { .. } => "segment_worn_out",
            Event::SegmentRetired { .. } => "segment_retired",
            Event::ServerStarted { .. } => "server_started",
            Event::ServerStopped { .. } => "server_stopped",
        }
    }
}

#[cfg(feature = "enabled")]
mod imp {
    use super::Event;
    use parking_lot::Mutex;
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::time::{SystemTime, UNIX_EPOCH};

    /// An [`Event`] plus the journal's bookkeeping: a monotonic
    /// sequence number and the unix timestamp (milliseconds) at which
    /// it was recorded.
    #[derive(Clone, Debug, PartialEq)]
    pub struct TimedEvent {
        /// Monotonic sequence number within the journal.
        pub seq: u64,
        /// Unix timestamp in milliseconds at record time.
        pub unix_ms: u64,
        /// The recorded event.
        pub event: Event,
    }

    /// Bounded ring of [`TimedEvent`]s; drop-oldest when full.
    #[derive(Debug)]
    pub struct EventJournal {
        ring: Mutex<VecDeque<TimedEvent>>,
        capacity: usize,
        next_seq: AtomicU64,
        dropped: AtomicU64,
    }

    impl EventJournal {
        /// A journal holding at most `capacity` events. Capacity 0 is a
        /// legal "disconnected" journal that records nothing.
        pub fn with_capacity(capacity: usize) -> Self {
            EventJournal {
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                next_seq: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }
        }

        /// Append `event`, evicting the oldest entry when full.
        pub fn record(&self, event: Event) {
            if self.capacity == 0 {
                return;
            }
            let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
            let unix_ms = SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
                .unwrap_or(0);
            let mut ring = self.ring.lock();
            if ring.len() == self.capacity {
                ring.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            ring.push_back(TimedEvent {
                seq,
                unix_ms,
                event,
            });
        }

        /// All currently retained events, oldest first.
        pub fn snapshot(&self) -> Vec<TimedEvent> {
            self.ring.lock().iter().cloned().collect()
        }

        /// Total events ever recorded (including since-dropped ones).
        pub fn recorded(&self) -> u64 {
            self.next_seq.load(Ordering::Relaxed)
        }

        /// Events evicted to make room for newer ones.
        pub fn dropped(&self) -> u64 {
            self.dropped.load(Ordering::Relaxed)
        }

        /// Maximum number of retained events.
        pub fn capacity(&self) -> usize {
            self.capacity
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use super::Event;

    /// No-op timed event (telemetry disabled at compile time).
    #[derive(Clone, Debug, PartialEq)]
    pub struct TimedEvent {
        /// Monotonic sequence number (never produced in this build).
        pub seq: u64,
        /// Unix timestamp in milliseconds (never produced).
        pub unix_ms: u64,
        /// The recorded event (never produced).
        pub event: Event,
    }

    /// No-op journal (telemetry disabled at compile time).
    #[derive(Debug, Default)]
    pub struct EventJournal;

    impl EventJournal {
        /// A journal that records nothing, whatever its capacity.
        pub fn with_capacity(_capacity: usize) -> Self {
            EventJournal
        }

        /// Append an event (no-op).
        #[inline(always)]
        pub fn record(&self, _event: Event) {}

        /// Retained events (always empty).
        pub fn snapshot(&self) -> Vec<TimedEvent> {
            Vec::new()
        }

        /// Total events ever recorded (always 0).
        pub fn recorded(&self) -> u64 {
            0
        }

        /// Events evicted (always 0).
        pub fn dropped(&self) -> u64 {
            0
        }

        /// Maximum retained events (always 0).
        pub fn capacity(&self) -> usize {
            0
        }
    }
}

pub use imp::{EventJournal, TimedEvent};

impl TimedEvent {
    /// Render this event as a single JSON object.
    #[cfg_attr(not(feature = "enabled"), allow(dead_code))]
    pub(crate) fn to_json(&self) -> String {
        let mut fields = format!(
            "\"seq\":{},\"unix_ms\":{},\"kind\":\"{}\"",
            self.seq,
            self.unix_ms,
            self.event.kind()
        );
        match &self.event {
            Event::RetrainStarted { shard } => {
                fields.push_str(&format!(",\"shard\":{shard}"));
            }
            Event::RetrainFinished {
                shard,
                loss,
                duration_ms,
            } => {
                fields.push_str(&format!(",\"shard\":{shard}"));
                match loss {
                    Some(l) if l.is_finite() => fields.push_str(&format!(",\"loss\":{l}")),
                    _ => fields.push_str(",\"loss\":null"),
                }
                fields.push_str(&format!(",\"duration_ms\":{duration_ms}"));
            }
            Event::ClusterExhausted { shard, cluster } => {
                fields.push_str(&format!(",\"shard\":{shard},\"cluster\":{cluster}"));
            }
            Event::FallbackPlacement {
                shard,
                predicted,
                used,
            } => {
                fields.push_str(&format!(
                    ",\"shard\":{shard},\"predicted\":{predicted},\"used\":{used}"
                ));
            }
            Event::WearLevelSwap { a, b } => {
                fields.push_str(&format!(",\"a\":{a},\"b\":{b}"));
            }
            Event::ShardRebalance { from, to } => {
                fields.push_str(&format!(",\"from\":{from},\"to\":{to}"));
            }
            Event::SegmentWornOut { segment } => {
                fields.push_str(&format!(",\"segment\":{segment}"));
            }
            Event::SegmentRetired {
                shard,
                segment,
                physical,
            } => {
                fields.push_str(&format!(
                    ",\"shard\":{shard},\"segment\":{segment},\"physical\":{physical}"
                ));
            }
            Event::ServerStarted { port } => {
                fields.push_str(&format!(",\"port\":{port}"));
            }
            Event::ServerStopped { connections_served } => {
                fields.push_str(&format!(",\"connections_served\":{connections_served}"));
            }
        }
        format!("{{{fields}}}")
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_seq() {
        let j = EventJournal::with_capacity(8);
        j.record(Event::RetrainStarted { shard: 0 });
        j.record(Event::WearLevelSwap { a: 1, b: 2 });
        let snap = j.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].seq, 0);
        assert_eq!(snap[1].seq, 1);
        assert_eq!(snap[1].event, Event::WearLevelSwap { a: 1, b: 2 });
    }

    #[test]
    fn drops_oldest_when_full() {
        let j = EventJournal::with_capacity(2);
        for shard in 0..5 {
            j.record(Event::RetrainStarted { shard });
        }
        let snap = j.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].event, Event::RetrainStarted { shard: 3 });
        assert_eq!(snap[1].event, Event::RetrainStarted { shard: 4 });
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.dropped(), 3);
    }

    #[test]
    fn zero_capacity_is_disconnected() {
        let j = EventJournal::with_capacity(0);
        j.record(Event::ShardRebalance { from: 0, to: 1 });
        assert!(j.snapshot().is_empty());
        assert_eq!(j.recorded(), 0);
    }

    #[test]
    fn event_json_shapes() {
        let j = EventJournal::with_capacity(4);
        j.record(Event::RetrainFinished {
            shard: 3,
            loss: Some(0.5),
            duration_ms: 12,
        });
        j.record(Event::FallbackPlacement {
            shard: 0,
            predicted: 1,
            used: 2,
        });
        let snap = j.snapshot();
        let a = snap[0].to_json();
        assert!(a.contains("\"kind\":\"retrain_finished\""), "{a}");
        assert!(a.contains("\"loss\":0.5"), "{a}");
        assert!(a.contains("\"duration_ms\":12"), "{a}");
        let b = snap[1].to_json();
        assert!(b.contains("\"predicted\":1"), "{b}");
        assert!(b.contains("\"used\":2"), "{b}");
    }

    #[test]
    fn server_event_json_shapes() {
        let j = EventJournal::with_capacity(4);
        j.record(Event::ServerStarted { port: 4242 });
        j.record(Event::ServerStopped {
            connections_served: 12,
        });
        let snap = j.snapshot();
        let a = snap[0].to_json();
        assert!(a.contains("\"kind\":\"server_started\""), "{a}");
        assert!(a.contains("\"port\":4242"), "{a}");
        let b = snap[1].to_json();
        assert!(b.contains("\"kind\":\"server_stopped\""), "{b}");
        assert!(b.contains("\"connections_served\":12"), "{b}");
    }

    #[test]
    fn fault_event_json_shapes() {
        let j = EventJournal::with_capacity(4);
        j.record(Event::SegmentWornOut { segment: 17 });
        j.record(Event::SegmentRetired {
            shard: 2,
            segment: 17,
            physical: 19,
        });
        let snap = j.snapshot();
        let a = snap[0].to_json();
        assert!(a.contains("\"kind\":\"segment_worn_out\""), "{a}");
        assert!(a.contains("\"segment\":17"), "{a}");
        let b = snap[1].to_json();
        assert!(b.contains("\"kind\":\"segment_retired\""), "{b}");
        assert!(b.contains("\"shard\":2"), "{b}");
        assert!(b.contains("\"segment\":17"), "{b}");
    }
}
