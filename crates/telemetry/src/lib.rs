//! # e2nvm-telemetry — observability for the E2-NVM serving stack
//!
//! Two primitives, both designed so the serving hot path never takes a
//! lock:
//!
//! * A **metrics registry** ([`TelemetryRegistry`]): monotonic
//!   [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s. Handles
//!   are `Arc`-backed and updated with relaxed atomics; the registry's
//!   mutex is touched only at registration and render time.
//! * A **bounded event journal** ([`EventJournal`]): a ring buffer of
//!   structured [`Event`]s (retrain started/finished, cluster
//!   exhausted, fallback placement, wear-leveling swap, shard
//!   rebalance). Events are rare control-plane occurrences, so the ring
//!   uses a short critical section; when full, the oldest entry is
//!   dropped and counted.
//!
//! Rendering: [`TelemetryRegistry::render_prometheus`] emits the
//! Prometheus text exposition format, and
//! [`TelemetryRegistry::snapshot_json`] a self-contained JSON document
//! including recent journal entries.
//!
//! ## The `enabled` feature
//!
//! With the `enabled` feature **off** (the default), every type here is
//! a zero-sized struct whose methods are empty `#[inline]` bodies — an
//! instrumented call site like `sink.writes.inc()` compiles to nothing.
//! Crates in this workspace therefore instrument unconditionally and
//! expose their own `telemetry` forwarding feature; turning it on flips
//! this crate to the real atomics-backed implementation. No `#[cfg]`
//! appears outside this crate.
//!
//! ```
//! use e2nvm_telemetry::{Event, TelemetryRegistry};
//!
//! let registry = TelemetryRegistry::new();
//! let writes = registry.counter("demo_writes_total", "Writes served");
//! let latency = registry.histogram("demo_latency_ns", "Op latency", &[100, 1000, 10000]);
//! writes.inc();
//! latency.observe(250);
//! registry.journal().record(Event::RetrainStarted { shard: 0 });
//! let text = registry.render_prometheus();
//! # #[cfg(feature = "enabled")]
//! assert!(text.contains("demo_writes_total 1"));
//! ```

#![warn(missing_docs)]

mod journal;
mod metrics;
mod registry;

pub use journal::{Event, EventJournal, TimedEvent};
pub use metrics::{Counter, Gauge, Histogram, HistogramTimer};
pub use registry::TelemetryRegistry;

/// Whether this build carries the real instrumentation (`enabled`
/// feature) or the zero-cost no-op stand-ins.
pub const fn is_enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Minimal JSON string escaping (quotes, backslashes, control chars) —
/// shared by the JSON renderers; metric and label names are expected to
/// be plain identifiers, but escaping keeps the output well-formed for
/// any input.
#[cfg_attr(not(feature = "enabled"), allow(dead_code))]
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
