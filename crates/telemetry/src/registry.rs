//! The [`TelemetryRegistry`]: owns every registered metric plus the
//! event journal, and renders them as Prometheus text exposition or a
//! JSON snapshot.
//!
//! Registration takes a short mutex; the returned handles are
//! lock-free. Registering the same `(name, labels)` pair twice returns
//! the *same* underlying handle, so independent components can share a
//! series without coordination.

#[cfg(feature = "enabled")]
mod imp {
    use crate::journal::EventJournal;
    use crate::json_escape;
    use crate::metrics::{Counter, Gauge, Histogram};
    use parking_lot::Mutex;
    use std::sync::Arc;

    const DEFAULT_JOURNAL_CAPACITY: usize = 256;

    type Labels = Vec<(String, String)>;

    struct Series<H> {
        name: String,
        help: String,
        labels: Labels,
        handle: H,
    }

    struct Inner {
        counters: Mutex<Vec<Series<Counter>>>,
        gauges: Mutex<Vec<Series<Gauge>>>,
        histograms: Mutex<Vec<Series<Histogram>>>,
        journal: EventJournal,
    }

    /// Shared handle to a set of metrics plus an event journal.
    /// Cloning is cheap and clones observe the same underlying state.
    #[derive(Clone)]
    pub struct TelemetryRegistry {
        inner: Arc<Inner>,
    }

    impl std::fmt::Debug for TelemetryRegistry {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("TelemetryRegistry")
                .field("counters", &self.inner.counters.lock().len())
                .field("gauges", &self.inner.gauges.lock().len())
                .field("histograms", &self.inner.histograms.lock().len())
                .finish()
        }
    }

    impl Default for TelemetryRegistry {
        fn default() -> Self {
            Self::new()
        }
    }

    fn canonical(labels: &[(&str, &str)]) -> Labels {
        let mut out: Labels = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        out.sort();
        out
    }

    fn get_or_insert<H: Clone>(
        series: &Mutex<Vec<Series<H>>>,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> H,
    ) -> H {
        let labels = canonical(labels);
        let mut series = series.lock();
        if let Some(s) = series.iter().find(|s| s.name == name && s.labels == labels) {
            return s.handle.clone();
        }
        let handle = make();
        series.push(Series {
            name: name.to_string(),
            help: help.to_string(),
            labels,
            handle: handle.clone(),
        });
        handle
    }

    fn render_labels(labels: &Labels, extra: Option<(&str, &str)>) -> String {
        let mut pairs: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", json_escape(v)))
            .collect();
        if let Some((k, v)) = extra {
            pairs.push(format!("{k}=\"{v}\""));
        }
        if pairs.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", pairs.join(","))
        }
    }

    fn labels_json(labels: &Labels) -> String {
        let fields: Vec<String> = labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)))
            .collect();
        format!("{{{}}}", fields.join(","))
    }

    impl TelemetryRegistry {
        /// A registry with the default journal capacity.
        pub fn new() -> Self {
            Self::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
        }

        /// A registry whose journal retains at most `capacity` events.
        pub fn with_journal_capacity(capacity: usize) -> Self {
            TelemetryRegistry {
                inner: Arc::new(Inner {
                    counters: Mutex::new(Vec::new()),
                    gauges: Mutex::new(Vec::new()),
                    histograms: Mutex::new(Vec::new()),
                    journal: EventJournal::with_capacity(capacity),
                }),
            }
        }

        /// Register (or fetch) an unlabeled counter.
        pub fn counter(&self, name: &str, help: &str) -> Counter {
            self.counter_with_labels(name, help, &[])
        }

        /// Register (or fetch) a counter distinguished by `labels`.
        pub fn counter_with_labels(
            &self,
            name: &str,
            help: &str,
            labels: &[(&str, &str)],
        ) -> Counter {
            get_or_insert(&self.inner.counters, name, help, labels, Counter::default)
        }

        /// Register (or fetch) an unlabeled gauge.
        pub fn gauge(&self, name: &str, help: &str) -> Gauge {
            self.gauge_with_labels(name, help, &[])
        }

        /// Register (or fetch) a gauge distinguished by `labels`.
        pub fn gauge_with_labels(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
            get_or_insert(&self.inner.gauges, name, help, labels, Gauge::default)
        }

        /// Register (or fetch) an unlabeled histogram with `bounds`.
        pub fn histogram(&self, name: &str, help: &str, bounds: &[u64]) -> Histogram {
            self.histogram_with_labels(name, help, bounds, &[])
        }

        /// Register (or fetch) a histogram distinguished by `labels`.
        pub fn histogram_with_labels(
            &self,
            name: &str,
            help: &str,
            bounds: &[u64],
            labels: &[(&str, &str)],
        ) -> Histogram {
            get_or_insert(&self.inner.histograms, name, help, labels, || {
                Histogram::disconnected(bounds)
            })
        }

        /// Sum of a counter family across every label combination.
        pub fn counter_total(&self, name: &str) -> u64 {
            self.inner
                .counters
                .lock()
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.handle.get())
                .sum()
        }

        /// Sum of a gauge family across every label combination.
        pub fn gauge_total(&self, name: &str) -> i64 {
            self.inner
                .gauges
                .lock()
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.handle.get())
                .sum()
        }

        /// The shared structured event journal.
        pub fn journal(&self) -> &EventJournal {
            &self.inner.journal
        }

        /// Render every registered metric in the Prometheus text
        /// exposition format (`# HELP` / `# TYPE` headers, cumulative
        /// `_bucket{le=...}` histogram series).
        pub fn render_prometheus(&self) -> String {
            let mut out = String::new();
            let mut seen: Vec<String> = Vec::new();
            let mut header = |out: &mut String, name: &str, help: &str, kind: &str| {
                if !seen.iter().any(|s| s == name) {
                    out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} {kind}\n"));
                    seen.push(name.to_string());
                }
            };

            for s in self.inner.counters.lock().iter() {
                header(&mut out, &s.name, &s.help, "counter");
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    s.handle.get()
                ));
            }
            for s in self.inner.gauges.lock().iter() {
                header(&mut out, &s.name, &s.help, "gauge");
                out.push_str(&format!(
                    "{}{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    s.handle.get()
                ));
            }
            for s in self.inner.histograms.lock().iter() {
                header(&mut out, &s.name, &s.help, "histogram");
                let counts = s.handle.bucket_counts();
                let bounds = s.handle.bounds().to_vec();
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    cumulative += c;
                    let le = if i < bounds.len() {
                        bounds[i].to_string()
                    } else {
                        "+Inf".to_string()
                    };
                    out.push_str(&format!(
                        "{}_bucket{} {}\n",
                        s.name,
                        render_labels(&s.labels, Some(("le", &le))),
                        cumulative
                    ));
                }
                out.push_str(&format!(
                    "{}_sum{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    s.handle.sum()
                ));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    s.name,
                    render_labels(&s.labels, None),
                    s.handle.count()
                ));
            }
            out
        }

        /// Render metrics plus the retained journal as one JSON
        /// document.
        pub fn snapshot_json(&self) -> String {
            let counters: Vec<String> = self
                .inner
                .counters
                .lock()
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                        json_escape(&s.name),
                        labels_json(&s.labels),
                        s.handle.get()
                    )
                })
                .collect();
            let gauges: Vec<String> = self
                .inner
                .gauges
                .lock()
                .iter()
                .map(|s| {
                    format!(
                        "{{\"name\":\"{}\",\"labels\":{},\"value\":{}}}",
                        json_escape(&s.name),
                        labels_json(&s.labels),
                        s.handle.get()
                    )
                })
                .collect();
            let histograms: Vec<String> = self
                .inner
                .histograms
                .lock()
                .iter()
                .map(|s| {
                    let bounds: Vec<String> =
                        s.handle.bounds().iter().map(|b| b.to_string()).collect();
                    let counts: Vec<String> = s
                        .handle
                        .bucket_counts()
                        .iter()
                        .map(|c| c.to_string())
                        .collect();
                    format!(
                        "{{\"name\":\"{}\",\"labels\":{},\"count\":{},\"sum\":{},\"bounds\":[{}],\"buckets\":[{}]}}",
                        json_escape(&s.name),
                        labels_json(&s.labels),
                        s.handle.count(),
                        s.handle.sum(),
                        bounds.join(","),
                        counts.join(",")
                    )
                })
                .collect();
            let events: Vec<String> = self
                .inner
                .journal
                .snapshot()
                .iter()
                .map(|e| e.to_json())
                .collect();
            format!(
                "{{\"enabled\":true,\"counters\":[{}],\"gauges\":[{}],\"histograms\":[{}],\
                 \"events\":[{}],\"events_recorded\":{},\"events_dropped\":{}}}",
                counters.join(","),
                gauges.join(","),
                histograms.join(","),
                events.join(","),
                self.inner.journal.recorded(),
                self.inner.journal.dropped()
            )
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use crate::journal::EventJournal;
    use crate::metrics::{Counter, Gauge, Histogram};

    static NOOP_JOURNAL: EventJournal = EventJournal;

    /// No-op registry (telemetry disabled at compile time). All
    /// registration methods return no-op handles; renderers emit a
    /// fixed "disabled" document. Deliberately `Clone` but not `Copy`,
    /// matching the enabled registry's surface so downstream code
    /// lints identically in both feature states.
    #[derive(Clone, Debug, Default)]
    pub struct TelemetryRegistry;

    impl TelemetryRegistry {
        /// A registry with the default journal capacity (which is 0 here).
        pub fn new() -> Self {
            TelemetryRegistry
        }

        /// A registry with an explicit journal capacity (ignored).
        pub fn with_journal_capacity(_capacity: usize) -> Self {
            TelemetryRegistry
        }

        /// Register a counter (returns the no-op handle).
        #[inline(always)]
        pub fn counter(&self, _name: &str, _help: &str) -> Counter {
            Counter
        }

        /// Register a labeled counter (returns the no-op handle).
        #[inline(always)]
        pub fn counter_with_labels(
            &self,
            _name: &str,
            _help: &str,
            _labels: &[(&str, &str)],
        ) -> Counter {
            Counter
        }

        /// Register a gauge (returns the no-op handle).
        #[inline(always)]
        pub fn gauge(&self, _name: &str, _help: &str) -> Gauge {
            Gauge
        }

        /// Register a labeled gauge (returns the no-op handle).
        #[inline(always)]
        pub fn gauge_with_labels(
            &self,
            _name: &str,
            _help: &str,
            _labels: &[(&str, &str)],
        ) -> Gauge {
            Gauge
        }

        /// Register a histogram (returns the no-op handle).
        #[inline(always)]
        pub fn histogram(&self, _name: &str, _help: &str, _bounds: &[u64]) -> Histogram {
            Histogram
        }

        /// Register a labeled histogram (returns the no-op handle).
        #[inline(always)]
        pub fn histogram_with_labels(
            &self,
            _name: &str,
            _help: &str,
            _bounds: &[u64],
            _labels: &[(&str, &str)],
        ) -> Histogram {
            Histogram
        }

        /// Sum of a counter family across label sets (always 0).
        pub fn counter_total(&self, _name: &str) -> u64 {
            0
        }

        /// Sum of a gauge family across label sets (always 0).
        pub fn gauge_total(&self, _name: &str) -> i64 {
            0
        }

        /// The shared event journal (a no-op sink).
        pub fn journal(&self) -> &EventJournal {
            &NOOP_JOURNAL
        }

        /// Prometheus text exposition (a fixed "disabled" comment).
        pub fn render_prometheus(&self) -> String {
            "# e2nvm telemetry disabled (build without the `telemetry` feature)\n".to_string()
        }

        /// JSON snapshot (a fixed "disabled" document).
        pub fn snapshot_json(&self) -> String {
            "{\"enabled\":false}".to_string()
        }
    }
}

pub use imp::TelemetryRegistry;

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use crate::journal::Event;

    #[test]
    fn dedup_returns_shared_handle() {
        let r = TelemetryRegistry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
        assert_eq!(r.counter_total("x_total"), 2);
    }

    #[test]
    fn labels_distinguish_series_and_total_sums() {
        let r = TelemetryRegistry::new();
        let s0 = r.counter_with_labels("ops_total", "ops", &[("shard", "0")]);
        let s1 = r.counter_with_labels("ops_total", "ops", &[("shard", "1")]);
        s0.add(3);
        s1.add(4);
        assert_eq!(r.counter_total("ops_total"), 7);
        // Label order is canonicalised, so permutations dedup.
        let s0b = r.counter_with_labels("ops_total", "ops", &[("shard", "0")]);
        s0b.inc();
        assert_eq!(s0.get(), 4);
    }

    #[test]
    fn prometheus_rendering_shape() {
        let r = TelemetryRegistry::new();
        r.counter("writes_total", "Writes").add(5);
        r.gauge_with_labels("depth", "Pool depth", &[("cluster", "1")])
            .set(-2);
        let h = r.histogram("lat_ns", "Latency", &[10, 100]);
        h.observe(7);
        h.observe(50);
        h.observe(5000);
        let text = r.render_prometheus();
        assert!(text.contains("# HELP writes_total Writes"), "{text}");
        assert!(text.contains("# TYPE writes_total counter"), "{text}");
        assert!(text.contains("writes_total 5"), "{text}");
        assert!(text.contains("depth{cluster=\"1\"} -2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"10\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"100\"} 2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 3"), "{text}");
        assert!(text.contains("lat_ns_sum 5057"), "{text}");
        assert!(text.contains("lat_ns_count 3"), "{text}");
    }

    #[test]
    fn help_header_emitted_once_per_family() {
        let r = TelemetryRegistry::new();
        r.counter_with_labels("ops_total", "ops", &[("shard", "0")]);
        r.counter_with_labels("ops_total", "ops", &[("shard", "1")]);
        let text = r.render_prometheus();
        assert_eq!(text.matches("# HELP ops_total").count(), 1, "{text}");
    }

    #[test]
    fn json_snapshot_includes_events() {
        let r = TelemetryRegistry::new();
        r.counter("c_total", "c").inc();
        r.journal().record(Event::ClusterExhausted {
            shard: 1,
            cluster: 2,
        });
        let json = r.snapshot_json();
        assert!(json.starts_with("{\"enabled\":true"), "{json}");
        assert!(json.contains("\"name\":\"c_total\""), "{json}");
        assert!(json.contains("\"kind\":\"cluster_exhausted\""), "{json}");
        assert!(json.contains("\"events_recorded\":1"), "{json}");
    }

    #[test]
    fn clones_share_registrations() {
        let r = TelemetryRegistry::new();
        let r2 = r.clone();
        r.counter("shared_total", "s").add(2);
        assert_eq!(r2.counter_total("shared_total"), 2);
    }
}
