//! Metric handle types: [`Counter`], [`Gauge`], [`Histogram`], and the
//! [`HistogramTimer`] drop guard.
//!
//! Handles are cheap to clone (`Arc` around atomics) and updated with
//! `Ordering::Relaxed` — each metric is an independent statistical
//! accumulator, so no cross-metric ordering is required. With the
//! `enabled` feature off, every type in this module is a zero-sized
//! stand-in whose methods are empty `#[inline]` bodies.

#[cfg(feature = "enabled")]
mod imp {
    use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    /// Monotonically increasing counter.
    ///
    /// Counters never decrease and are never reset: consumers that want
    /// deltas (e.g. per-interval rates) subtract successive reads, the
    /// same contract Prometheus counters have.
    #[derive(Clone, Debug, Default)]
    pub struct Counter(Arc<AtomicU64>);

    impl Counter {
        /// A counter not attached to any registry; updates are kept but
        /// never rendered. Useful as a default sink.
        pub fn disconnected() -> Self {
            Self::default()
        }

        /// Increment by one.
        #[inline]
        pub fn inc(&self) {
            self.0.fetch_add(1, Ordering::Relaxed);
        }

        /// Add `delta` to the counter.
        #[inline]
        pub fn add(&self, delta: u64) {
            // Skipping zero deltas keeps accounting-style call sites
            // (which unconditionally add per-op quantities, several of
            // which are usually 0) off the RMW for free: a predicted
            // branch is cheaper than a relaxed fetch_add.
            if delta != 0 {
                self.0.fetch_add(delta, Ordering::Relaxed);
            }
        }

        /// Current value.
        #[inline]
        pub fn get(&self) -> u64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    /// Signed instantaneous value (free-list depth, queue length, ...).
    #[derive(Clone, Debug, Default)]
    pub struct Gauge(Arc<AtomicI64>);

    impl Gauge {
        /// A gauge not attached to any registry.
        pub fn disconnected() -> Self {
            Self::default()
        }

        /// Set the gauge to `value`.
        #[inline]
        pub fn set(&self, value: i64) {
            self.0.store(value, Ordering::Relaxed);
        }

        /// Add `delta` to the gauge.
        #[inline]
        pub fn add(&self, delta: i64) {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }

        /// Subtract `delta` from the gauge.
        #[inline]
        pub fn sub(&self, delta: i64) {
            self.0.fetch_sub(delta, Ordering::Relaxed);
        }

        /// Current value.
        #[inline]
        pub fn get(&self) -> i64 {
            self.0.load(Ordering::Relaxed)
        }
    }

    #[derive(Debug)]
    struct HistogramCore {
        /// Upper bounds of the finite buckets, strictly increasing. An
        /// implicit `+Inf` bucket follows.
        bounds: Vec<u64>,
        /// Per-bucket observation counts, `bounds.len() + 1` entries
        /// (the last one is the `+Inf` overflow bucket). The total
        /// observation count is the sum of these — not a separate
        /// atomic, keeping `observe` at two RMWs.
        buckets: Vec<AtomicU64>,
        sum: AtomicU64,
    }

    /// Fixed-bucket histogram over `u64` observations (nanoseconds, bit
    /// counts, ...). Buckets are chosen at registration time; observing
    /// is two relaxed atomic adds plus a branchless-ish bucket scan over
    /// a handful of bounds.
    #[derive(Clone, Debug)]
    pub struct Histogram(Arc<HistogramCore>);

    impl Histogram {
        /// A histogram not attached to any registry.
        pub fn disconnected(bounds: &[u64]) -> Self {
            let mut sorted: Vec<u64> = bounds.to_vec();
            sorted.sort_unstable();
            sorted.dedup();
            let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
            Histogram(Arc::new(HistogramCore {
                bounds: sorted,
                buckets,
                sum: AtomicU64::new(0),
            }))
        }

        /// Record one sample into its bucket.
        #[inline]
        pub fn observe(&self, value: u64) {
            let core = &*self.0;
            let idx = core
                .bounds
                .iter()
                .position(|&b| value <= b)
                .unwrap_or(core.bounds.len());
            core.buckets[idx].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(value, Ordering::Relaxed);
        }

        /// Start a timer that observes the elapsed wall time in
        /// nanoseconds when dropped.
        #[inline]
        pub fn start_timer(&self) -> HistogramTimer<'_> {
            HistogramTimer {
                histogram: self,
                start: Instant::now(),
            }
        }

        /// Total observations (sum over all buckets).
        pub fn count(&self) -> u64 {
            self.0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .sum()
        }

        /// Sum of all observed values.
        pub fn sum(&self) -> u64 {
            self.0.sum.load(Ordering::Relaxed)
        }

        /// Finite bucket upper bounds (the trailing `+Inf` bucket is
        /// implicit).
        pub fn bounds(&self) -> &[u64] {
            &self.0.bounds
        }

        /// Per-bucket (non-cumulative) counts; the final entry is the
        /// `+Inf` overflow bucket.
        pub fn bucket_counts(&self) -> Vec<u64> {
            self.0
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect()
        }
    }

    /// Drop guard returned by [`Histogram::start_timer`]; records the
    /// elapsed nanoseconds into the histogram when it goes out of scope.
    #[derive(Debug)]
    pub struct HistogramTimer<'a> {
        histogram: &'a Histogram,
        start: Instant,
    }

    impl Drop for HistogramTimer<'_> {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.histogram.observe(ns);
        }
    }
}

#[cfg(not(feature = "enabled"))]
mod imp {
    use std::marker::PhantomData;

    /// No-op counter (telemetry disabled at compile time).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Counter;

    impl Counter {
        /// A counter attached to nothing (all of them, in this build).
        pub fn disconnected() -> Self {
            Counter
        }

        /// Increment by one (no-op).
        #[inline(always)]
        pub fn inc(&self) {}

        /// Add `delta` (no-op).
        #[inline(always)]
        pub fn add(&self, _delta: u64) {}

        /// Current value (always 0).
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge (telemetry disabled at compile time).
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Gauge;

    impl Gauge {
        /// A gauge attached to nothing (all of them, in this build).
        pub fn disconnected() -> Self {
            Gauge
        }

        /// Set the value (no-op).
        #[inline(always)]
        pub fn set(&self, _value: i64) {}

        /// Add `delta` (no-op).
        #[inline(always)]
        pub fn add(&self, _delta: i64) {}

        /// Subtract `delta` (no-op).
        #[inline(always)]
        pub fn sub(&self, _delta: i64) {}

        /// Current value (always 0).
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// No-op histogram (telemetry disabled at compile time).
    #[derive(Clone, Copy, Debug)]
    pub struct Histogram;

    impl Histogram {
        /// A histogram attached to nothing (all of them, in this build).
        pub fn disconnected(_bounds: &[u64]) -> Self {
            Histogram
        }

        /// Record one sample (no-op).
        #[inline(always)]
        pub fn observe(&self, _value: u64) {}

        /// No-op timer: never reads the clock.
        #[inline(always)]
        pub fn start_timer(&self) -> HistogramTimer<'_> {
            HistogramTimer(PhantomData)
        }

        /// Total samples observed (always 0).
        pub fn count(&self) -> u64 {
            0
        }

        /// Sum of all samples (always 0).
        pub fn sum(&self) -> u64 {
            0
        }

        /// Finite bucket upper bounds (always empty).
        pub fn bounds(&self) -> &[u64] {
            &[]
        }

        /// Per-bucket counts (always empty).
        pub fn bucket_counts(&self) -> Vec<u64> {
            Vec::new()
        }
    }

    /// No-op drop guard; carries the histogram lifetime so the API
    /// matches the enabled build exactly.
    #[derive(Debug)]
    pub struct HistogramTimer<'a>(PhantomData<&'a ()>);
}

pub use imp::{Counter, Gauge, Histogram, HistogramTimer};

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let c = Counter::disconnected();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::disconnected();
        g.set(10);
        g.add(5);
        g.sub(7);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn histogram_buckets_and_moments() {
        let h = Histogram::disconnected(&[10, 100, 1000]);
        for v in [5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 5 + 10 + 11 + 100 + 5000);
        // le=10 gets {5,10}; le=100 gets {11,100}; le=1000 none; +Inf {5000}.
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
        assert_eq!(h.bounds(), &[10, 100, 1000]);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let h = Histogram::disconnected(&[100, 10, 100, 1]);
        assert_eq!(h.bounds(), &[1, 10, 100]);
    }

    #[test]
    fn timer_observes_on_drop() {
        let h = Histogram::disconnected(&[u64::MAX]);
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = Counter::disconnected();
        let b = a.clone();
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2);
    }
}
