//! Property tests for the device model: flip accounting must agree with
//! naive XOR popcount, contents must always read back, and the
//! controller's remap must stay a bijection under arbitrary traffic.

use e2nvm_sim::bitops::hamming;
use e2nvm_sim::{
    DeviceConfig, FaultConfig, LogicalSegment, MemoryController, NvmDevice, PhysicalSegment,
    WearTracking,
};
use proptest::prelude::*;

fn segment_data(len: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(any::<u8>(), len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Bits flipped by a full-segment write equals the hamming distance
    /// between old and new content, regardless of line skipping.
    #[test]
    fn flips_equal_hamming(old in segment_data(256), new in segment_data(256)) {
        let cfg = DeviceConfig::builder().segment_bytes(256).num_segments(2).build().unwrap();
        let mut dev = NvmDevice::new(cfg);
        let seg = dev.segment(0);
        dev.seed_segment(seg, &old).unwrap();
        let expected = hamming(&old, &new);
        let r = dev.write(seg, &new).unwrap();
        prop_assert_eq!(r.bits_flipped, expected);
        prop_assert_eq!(dev.peek(seg), &new[..]);
    }

    /// A partial write only changes the addressed range, and its flip
    /// count equals the hamming distance over that range.
    #[test]
    fn partial_write_is_local(
        old in segment_data(256),
        data in proptest::collection::vec(any::<u8>(), 1..64),
        offset in 0usize..200,
    ) {
        prop_assume!(offset + data.len() <= 256);
        let cfg = DeviceConfig::builder().segment_bytes(256).num_segments(1).build().unwrap();
        let mut dev = NvmDevice::new(cfg);
        let seg = dev.segment(0);
        dev.seed_segment(seg, &old).unwrap();
        let r = dev.write_at(seg, offset, &data).unwrap();
        prop_assert_eq!(r.bits_flipped, hamming(&old[offset..offset + data.len()], &data));
        let now = dev.peek(seg);
        prop_assert_eq!(&now[offset..offset + data.len()], &data[..]);
        prop_assert_eq!(&now[..offset], &old[..offset]);
        prop_assert_eq!(&now[offset + data.len()..], &old[offset + data.len()..]);
    }

    /// Lines written + lines skipped is the number of lines the write
    /// touches; skipped lines carry zero flips.
    #[test]
    fn line_accounting_totals(old in segment_data(512), new in segment_data(512)) {
        let cfg = DeviceConfig::builder()
            .segment_bytes(512)
            .num_segments(1)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let seg = dev.segment(0);
        dev.seed_segment(seg, &old).unwrap();
        let r = dev.write(seg, &new).unwrap();
        prop_assert_eq!(r.lines_written + r.lines_skipped, 8);
        // Per-line check: a line is skipped iff identical.
        let mut expect_written = 0;
        for li in 0..8 {
            if old[li * 64..(li + 1) * 64] != new[li * 64..(li + 1) * 64] {
                expect_written += 1;
            }
        }
        prop_assert_eq!(r.lines_written, expect_written);
    }

    /// Under random-swap wear leveling and arbitrary write traffic, the
    /// logical view is preserved and the remap stays a bijection.
    #[test]
    fn controller_preserves_logical_contents(
        writes in proptest::collection::vec((0usize..6, any::<u8>()), 1..80),
        psi in 1u64..8,
    ) {
        let cfg = DeviceConfig::builder().segment_bytes(128).num_segments(6).build().unwrap();
        let mut mc = MemoryController::with_random_swap(NvmDevice::new(cfg), psi, 42);
        let mut shadow: Vec<Vec<u8>> = vec![vec![0u8; 128]; 6];
        for (seg, fill) in writes {
            let data = vec![fill; 128];
            mc.write(LogicalSegment(seg), &data).unwrap();
            shadow[seg] = data;
            prop_assert!(mc.remap_is_consistent());
        }
        for (i, expect) in shadow.iter().enumerate() {
            prop_assert_eq!(mc.peek(LogicalSegment(i)).unwrap(), &expect[..]);
        }
    }

    /// Start-gap: same preservation property, with one reserved segment.
    #[test]
    fn start_gap_preserves_logical_contents(
        writes in proptest::collection::vec((0usize..5, any::<u8>()), 1..80),
        psi in 1u64..5,
    ) {
        let cfg = DeviceConfig::builder().segment_bytes(128).num_segments(6).build().unwrap();
        let mut mc = MemoryController::with_start_gap(NvmDevice::new(cfg), psi);
        prop_assert_eq!(mc.num_segments(), 5);
        let mut shadow: Vec<Vec<u8>> = vec![vec![0u8; 128]; 5];
        for (seg, fill) in writes {
            let data = vec![fill; 128];
            mc.write(LogicalSegment(seg), &data).unwrap();
            shadow[seg] = data;
            prop_assert!(mc.remap_is_consistent());
        }
        for (i, expect) in shadow.iter().enumerate() {
            prop_assert_eq!(mc.peek(LogicalSegment(i)).unwrap(), &expect[..]);
        }
    }

    /// Per-bit wear counters sum to total flips (small pool).
    #[test]
    fn wear_counters_sum_to_flips(datas in proptest::collection::vec(segment_data(64), 1..20)) {
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(2)
            .block_bytes(64)
            .wear_tracking(WearTracking::PerBit)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let seg = dev.segment(0);
        for d in &datas {
            dev.write(seg, d).unwrap();
        }
        let total: u64 = dev
            .wear()
            .per_bit_flips()
            .unwrap()
            .iter()
            .map(|&v| v as u64)
            .sum();
        prop_assert_eq!(total, dev.stats().bits_flipped);
    }

    /// Energy is monotone: more flips with the same content length never
    /// costs less.
    #[test]
    fn energy_nonnegative_and_bounded(old in segment_data(256), new in segment_data(256)) {
        let cfg = DeviceConfig::builder().segment_bytes(256).num_segments(1).build().unwrap();
        let mut dev = NvmDevice::new(cfg.clone());
        let seg = dev.segment(0);
        dev.seed_segment(seg, &old).unwrap();
        let r = dev.write(seg, &new).unwrap();
        let worst = cfg.energy.write_energy_pj(4, 256 * 8);
        prop_assert!(r.energy_pj >= 0.0);
        prop_assert!(r.energy_pj <= worst);
    }

    /// Fault injection that cannot fire (zero transient rate, an
    /// endurance budget no workload can reach) is bitwise inert: over
    /// arbitrary write traffic a fault-carrying device produces exactly
    /// the same reports, stats, and contents as a plain one. This pins
    /// the acceptance criterion that faults-disabled behavior is
    /// identical to the pre-fault device.
    #[test]
    fn unreachable_fault_config_is_bitwise_inert(
        writes in proptest::collection::vec(
            (0usize..4, segment_data(128)), 1..40),
    ) {
        let plain_cfg = DeviceConfig::builder()
            .segment_bytes(128)
            .num_segments(4)
            .build()
            .unwrap();
        let guarded_cfg = DeviceConfig::builder()
            .segment_bytes(128)
            .num_segments(4)
            .fault(FaultConfig {
                seed: 7,
                endurance_bits: u64::MAX >> 8,
                endurance_shape: 3.0,
                transient_rate: 0.0,
            })
            .build()
            .unwrap();
        let mut plain = NvmDevice::new(plain_cfg);
        let mut guarded = NvmDevice::new(guarded_cfg);
        for (seg, data) in &writes {
            let a = plain.write(PhysicalSegment(*seg), data).unwrap();
            let b = guarded.write(PhysicalSegment(*seg), data).unwrap();
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(plain.stats(), guarded.stats());
        for seg in 0..4 {
            prop_assert_eq!(plain.peek(PhysicalSegment(seg)), guarded.peek(PhysicalSegment(seg)));
        }
        prop_assert_eq!(guarded.fault_stats(), e2nvm_sim::FaultStats::default());
        prop_assert_eq!(guarded.worn_out_count(), 0);
    }

    /// The fault model is deterministic: two identically configured
    /// devices fed the same traffic fail at exactly the same writes
    /// with exactly the same reported bits.
    #[test]
    fn fault_injection_is_deterministic(
        writes in proptest::collection::vec(
            (0usize..4, segment_data(128)), 1..60),
        seed in any::<u64>(),
    ) {
        let build = || {
            NvmDevice::new(
                DeviceConfig::builder()
                    .segment_bytes(128)
                    .num_segments(4)
                    .fault(FaultConfig {
                        seed,
                        endurance_bits: 40_000,
                        endurance_shape: 3.0,
                        transient_rate: 0.05,
                    })
                    .build()
                    .unwrap(),
            )
        };
        let mut a = build();
        let mut b = build();
        for (seg, data) in &writes {
            let ra = a.write(PhysicalSegment(*seg), data);
            let rb = b.write(PhysicalSegment(*seg), data);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.stats(), b.stats());
        prop_assert_eq!(a.fault_stats(), b.fault_stats());
        for seg in 0..4 {
            prop_assert_eq!(a.peek(PhysicalSegment(seg)), b.peek(PhysicalSegment(seg)));
        }
    }

    /// The translation layer stays a bijection under arbitrary
    /// policy-generated SwapAction sequences interleaved with
    /// retirements: every logical id round-trips through the remap, no
    /// two logicals share a physical slot, and a retired physical keeps
    /// (or loses to the gap walk) exactly its own preimage — it is
    /// never silently reassigned to a *different* logical id.
    #[test]
    fn remap_stays_bijective_under_swaps_and_retirement(
        ops in proptest::collection::vec((0usize..5, any::<u8>(), any::<u8>()), 1..120),
        psi in 1u64..4,
        random_swap in any::<bool>(),
    ) {
        let cfg = DeviceConfig::builder().segment_bytes(64).num_segments(6).build().unwrap();
        let mut mc = if random_swap {
            MemoryController::with_random_swap(NvmDevice::new(cfg), psi, 7)
        } else {
            MemoryController::with_start_gap(NvmDevice::new(cfg), psi)
        };
        let logical_n = mc.num_segments();
        let mut retired_owner: Vec<(PhysicalSegment, LogicalSegment)> = Vec::new();
        for (seg, fill, retire_draw) in ops {
            let retire = retire_draw < 13; // ~5% of ops retire
            let seg = seg % logical_n;
            mc.write(LogicalSegment(seg), &[fill; 64]).unwrap();
            if retire {
                let phys = mc.retire(LogicalSegment(seg)).unwrap();
                prop_assert!(mc.is_retired(phys));
                retired_owner.push((phys, LogicalSegment(seg)));
            }
            // Bijection both ways, every step.
            prop_assert!(mc.remap_is_consistent());
            for l in 0..logical_n {
                let p = mc.remap().physical(LogicalSegment(l)).unwrap();
                prop_assert_eq!(mc.remap().logical(p), Some(LogicalSegment(l)));
            }
            // Quarantine sticks to the physical slot, and the slot is
            // never handed to a different logical id.
            for &(phys, owner) in &retired_owner {
                prop_assert!(mc.is_retired(phys));
                let now = mc.remap().logical(phys);
                prop_assert!(
                    now == Some(owner) || now.is_none(),
                    "retired {} reassigned from {} to {:?}", phys, owner, now
                );
            }
        }
        prop_assert_eq!(mc.retired_physical().len(),
            retired_owner.iter().map(|(p, _)| p).collect::<std::collections::HashSet<_>>().len());
    }
}
