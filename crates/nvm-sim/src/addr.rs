//! Typed segment addressing: which address space a segment id lives in
//! is part of its type.
//!
//! The simulator exposes two address spaces:
//!
//! - [`PhysicalSegment`] — a slot on the device. Wear is physical:
//!   endurance limits, programmed-bit totals, worn-out flags, wear
//!   heatmaps and retirement quarantine are all keyed here, because the
//!   *medium* wears out, not the name software calls it by.
//! - [`LogicalSegment`] — the stable name software uses. The engine,
//!   dynamic address pool, key index and snapshots speak logical ids;
//!   the [`crate::MemoryController`] owns the (possibly non-identity)
//!   translation between the two, published as a [`SegmentRemap`].
//!
//! Before this split both spaces shared one `usize`-backed `SegmentId`,
//! and the retirement path quarantined *logical* ids — which silently
//! assumed the identity mapping and broke the moment a wear-leveling
//! policy relocated a segment (DESIGN.md §10). With distinct newtypes
//! that misuse class no longer compiles.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Sentinel for "no logical segment maps here" (the start-gap spare).
pub(crate) const GAP: usize = usize::MAX;

/// A segment address in the **logical** space: what the engine, DAP,
/// key index, and partition math use. Translate to the device's
/// physical space through [`crate::MemoryController::remap`].
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct LogicalSegment(pub usize);

/// A segment address in the **physical** space: an actual slot on the
/// [`crate::NvmDevice`]. Endurance limits, wear counters, worn-out
/// state and retirement quarantine are keyed here.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct PhysicalSegment(pub usize);

impl LogicalSegment {
    /// The raw index (e.g. for array indexing or display).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl PhysicalSegment {
    /// The raw index (e.g. for array indexing or display).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for LogicalSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lseg#{}", self.0)
    }
}

impl fmt::Display for PhysicalSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pseg#{}", self.0)
    }
}

// One-release migration shims: code that carried raw `usize` segment
// indices can convert explicitly while it migrates to the typed ids.
// These never convert *between* the two spaces — that is exactly the
// step that must go through a [`SegmentRemap`].

impl From<usize> for LogicalSegment {
    fn from(i: usize) -> Self {
        Self(i)
    }
}

impl From<LogicalSegment> for usize {
    fn from(s: LogicalSegment) -> usize {
        s.0
    }
}

impl From<usize> for PhysicalSegment {
    fn from(i: usize) -> Self {
        Self(i)
    }
}

impl From<PhysicalSegment> for usize {
    fn from(s: PhysicalSegment) -> usize {
        s.0
    }
}

/// The deprecated untyped segment id of the pre-translation-layer API.
///
/// It aliases [`LogicalSegment`] because every pre-existing public use
/// (engine, DAP, store, snapshots) was semantically logical; device
/// entry points now take [`PhysicalSegment`]. Kept for one release as a
/// migration shim.
#[deprecated(
    since = "0.2.0",
    note = "use `LogicalSegment` (software address space) or \
            `PhysicalSegment` (device address space) explicitly"
)]
pub type SegmentId = LogicalSegment;

/// The controller-owned logical→physical translation table and its
/// inverse, queryable by any layer that needs to cross address spaces
/// (wear attribution, quarantine, snapshots, debugging).
///
/// Invariants (checked by [`SegmentRemap::is_consistent`]):
/// - `physical` is injective: no two logical segments share a slot;
/// - `logical(physical(l)) == l` for every logical `l`;
/// - physical slots not hit by any logical id (e.g. the start-gap
///   spare) have no logical preimage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRemap {
    /// `forward[l]` = physical slot backing logical `l`.
    forward: Vec<usize>,
    /// `inverse[p]` = logical id mapped to physical `p`, or [`GAP`].
    inverse: Vec<usize>,
}

impl SegmentRemap {
    /// Identity mapping over `n` segments (both spaces the same size).
    pub fn identity(n: usize) -> Self {
        Self {
            forward: (0..n).collect(),
            inverse: (0..n).collect(),
        }
    }

    /// Build from a forward table over `physical_segments` device
    /// slots; unmapped slots get no logical preimage. Fails if any
    /// entry is out of range or two logical ids share a physical slot.
    pub fn from_forward(forward: Vec<usize>, physical_segments: usize) -> Option<Self> {
        let mut inverse = vec![GAP; physical_segments];
        for (l, &p) in forward.iter().enumerate() {
            if p >= physical_segments || inverse[p] != GAP {
                return None;
            }
            inverse[p] = l;
        }
        Some(Self { forward, inverse })
    }

    /// The physical slot backing logical segment `l`, or `None` if `l`
    /// is out of range.
    #[inline]
    pub fn physical(&self, l: LogicalSegment) -> Option<PhysicalSegment> {
        self.forward.get(l.0).map(|&p| PhysicalSegment(p))
    }

    /// The logical segment mapped to physical slot `p`; `None` if `p`
    /// is out of range or currently unmapped (the start-gap spare).
    #[inline]
    pub fn logical(&self, p: PhysicalSegment) -> Option<LogicalSegment> {
        match self.inverse.get(p.0) {
            Some(&l) if l != GAP => Some(LogicalSegment(l)),
            _ => None,
        }
    }

    /// Number of logical segments.
    pub fn logical_len(&self) -> usize {
        self.forward.len()
    }

    /// Number of physical slots (≥ [`SegmentRemap::logical_len`]).
    pub fn physical_len(&self) -> usize {
        self.inverse.len()
    }

    /// Whether the mapping is the identity over equal-sized spaces.
    pub fn is_identity(&self) -> bool {
        self.forward.len() == self.inverse.len()
            && self.forward.iter().enumerate().all(|(l, &p)| l == p)
    }

    /// Iterate `(logical, physical)` pairs in logical order.
    pub fn iter(&self) -> impl Iterator<Item = (LogicalSegment, PhysicalSegment)> + '_ {
        self.forward
            .iter()
            .enumerate()
            .map(|(l, &p)| (LogicalSegment(l), PhysicalSegment(p)))
    }

    /// The forward table as raw indices (`table[l]` = physical slot),
    /// the shape snapshots serialize.
    pub fn forward_table(&self) -> &[usize] {
        &self.forward
    }

    /// Check the bijection invariants; `false` means the table was
    /// corrupted (every mutation in the controller preserves them).
    pub fn is_consistent(&self) -> bool {
        if self.forward.len() > self.inverse.len() {
            return false;
        }
        let mut seen = vec![false; self.inverse.len()];
        for (l, &p) in self.forward.iter().enumerate() {
            if p >= self.inverse.len() || seen[p] || self.inverse[p] != l {
                return false;
            }
            seen[p] = true;
        }
        self.inverse
            .iter()
            .all(|&l| l == GAP || (l < self.forward.len() && seen[self.forward[l]]))
    }

    /// Swap the logical preimages of two physical slots (both must be
    /// mapped). Used by the controller when it applies a
    /// [`crate::SwapAction::Swap`].
    pub(crate) fn swap_physical(&mut self, a: PhysicalSegment, b: PhysicalSegment) {
        let la = self.inverse[a.0];
        let lb = self.inverse[b.0];
        debug_assert!(la != GAP && lb != GAP);
        self.forward[la] = b.0;
        self.forward[lb] = a.0;
        self.inverse.swap(a.0, b.0);
    }

    /// Move the logical preimage of `src` onto the unmapped slot `gap`,
    /// leaving `src` unmapped (the new gap). Used by the controller
    /// when it applies a [`crate::SwapAction::MoveToGap`].
    pub(crate) fn move_to_gap(&mut self, src: PhysicalSegment, gap: PhysicalSegment) {
        let l = self.inverse[src.0];
        debug_assert!(l != GAP && self.inverse[gap.0] == GAP);
        self.forward[l] = gap.0;
        self.inverse[gap.0] = l;
        self.inverse[src.0] = GAP;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_roundtrips() {
        let r = SegmentRemap::identity(4);
        assert!(r.is_identity());
        assert!(r.is_consistent());
        for i in 0..4 {
            assert_eq!(r.physical(LogicalSegment(i)), Some(PhysicalSegment(i)));
            assert_eq!(r.logical(PhysicalSegment(i)), Some(LogicalSegment(i)));
        }
        assert_eq!(r.physical(LogicalSegment(4)), None);
        assert_eq!(r.logical(PhysicalSegment(4)), None);
    }

    #[test]
    fn gap_slot_has_no_preimage() {
        // 3 logical over 4 physical, slot 3 is the gap.
        let r = SegmentRemap::from_forward(vec![0, 1, 2], 4).unwrap();
        assert!(!r.is_identity());
        assert!(r.is_consistent());
        assert_eq!(r.logical(PhysicalSegment(3)), None);
        assert_eq!(r.logical_len(), 3);
        assert_eq!(r.physical_len(), 4);
    }

    #[test]
    fn from_forward_rejects_aliasing_and_range() {
        assert!(SegmentRemap::from_forward(vec![0, 0], 4).is_none());
        assert!(SegmentRemap::from_forward(vec![0, 7], 4).is_none());
    }

    #[test]
    fn swap_and_move_preserve_consistency() {
        let mut r = SegmentRemap::from_forward(vec![0, 1, 2], 4).unwrap();
        r.swap_physical(PhysicalSegment(0), PhysicalSegment(2));
        assert!(r.is_consistent());
        assert_eq!(r.physical(LogicalSegment(0)), Some(PhysicalSegment(2)));
        assert_eq!(r.logical(PhysicalSegment(0)), Some(LogicalSegment(2)));
        r.move_to_gap(PhysicalSegment(1), PhysicalSegment(3));
        assert!(r.is_consistent());
        assert_eq!(r.physical(LogicalSegment(1)), Some(PhysicalSegment(3)));
        assert_eq!(r.logical(PhysicalSegment(1)), None);
    }

    #[test]
    fn displays_name_their_space() {
        assert_eq!(LogicalSegment(3).to_string(), "lseg#3");
        assert_eq!(PhysicalSegment(3).to_string(), "pseg#3");
    }

    #[test]
    fn usize_shims_convert_explicitly() {
        let l: LogicalSegment = 5usize.into();
        let p: PhysicalSegment = 5usize.into();
        assert_eq!(usize::from(l), usize::from(p));
    }
}
