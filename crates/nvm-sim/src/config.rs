//! Device configuration: geometry, write semantics, energy and latency
//! parameters, and the wear-tracking granularity.

use crate::energy::EnergyParams;
use crate::error::{Result, SimError};
use crate::fault::FaultConfig;
use crate::latency::LatencyParams;
use serde::{Deserialize, Serialize};

/// Granularity at which per-cell wear is recorded.
///
/// Finer tracking costs memory proportional to the pool size, so it is
/// opt-in: the Figure 19 experiments use [`WearTracking::PerBit`] on a
/// small pool, while the large YCSB sweeps run with
/// [`WearTracking::PerSegment`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum WearTracking {
    /// Only aggregate counters — no per-location state.
    #[default]
    None,
    /// One `u32` write counter per segment (cheap; enough for Fig 2/10).
    PerSegment,
    /// One saturating `u8` flip counter per bit of the pool. Uses
    /// `pool_bytes * 8` bytes of host memory; intended for pools of a few
    /// MB (the Figure 19 CDFs).
    PerBit,
}

/// Complete configuration of a simulated device.
///
/// Construct through [`DeviceConfig::builder`]; the builder validates
/// geometry (non-zero sizes, cache line divides segment, segment divides
/// pool when segments are larger than a block, ...).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceConfig {
    /// Size of one allocatable segment in bytes. Placement schemes hand
    /// out whole segments.
    pub segment_bytes: usize,
    /// Number of segments in the pool.
    pub num_segments: usize,
    /// Cache-line write granularity (Optane: 64 B). A line identical to
    /// the stored content is skipped.
    pub cache_line_bytes: usize,
    /// Media block size (Optane 3D XPoint: 256 B). Only used for
    /// reporting access counts at block granularity.
    pub block_bytes: usize,
    /// If true the media performs a data-comparison write: only differing
    /// bits inside a written line are programmed. If false, every bit of
    /// every written line costs a programming pulse (energy-wise); the
    /// *flip* count (endurance-wise) is unchanged.
    pub media_dcw: bool,
    /// Wear tracking granularity.
    pub wear_tracking: WearTracking,
    /// Energy model parameters.
    pub energy: EnergyParams,
    /// Latency model parameters.
    pub latency: LatencyParams,
    /// Optional fault injection: finite per-segment endurance and
    /// transient write failures. `None` (the default, and what older
    /// serialized configs deserialize to) keeps the device fault-free
    /// with behaviour bit-identical to previous releases.
    #[serde(default)]
    pub fault: Option<FaultConfig>,
}

impl DeviceConfig {
    /// Start building a config. Defaults: 256 B segments, 64 B lines,
    /// 256 B blocks, media DCW on, no wear tracking, default
    /// energy/latency parameters.
    pub fn builder() -> DeviceConfigBuilder {
        DeviceConfigBuilder::default()
    }

    /// Total pool capacity in bytes.
    #[inline]
    pub fn pool_bytes(&self) -> usize {
        self.segment_bytes * self.num_segments
    }

    /// Number of cache lines per segment.
    #[inline]
    pub fn lines_per_segment(&self) -> usize {
        self.segment_bytes.div_ceil(self.cache_line_bytes)
    }

    /// Validate the configuration, returning a descriptive error on the
    /// first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.segment_bytes == 0 {
            return Err(SimError::InvalidConfig("segment_bytes must be > 0".into()));
        }
        if self.num_segments == 0 {
            return Err(SimError::InvalidConfig("num_segments must be > 0".into()));
        }
        if self.cache_line_bytes == 0 {
            return Err(SimError::InvalidConfig(
                "cache_line_bytes must be > 0".into(),
            ));
        }
        if self.block_bytes == 0 {
            return Err(SimError::InvalidConfig("block_bytes must be > 0".into()));
        }
        if self.segment_bytes % self.cache_line_bytes != 0
            && self.segment_bytes > self.cache_line_bytes
        {
            return Err(SimError::InvalidConfig(format!(
                "segment_bytes ({}) must be a multiple of cache_line_bytes ({}) when larger",
                self.segment_bytes, self.cache_line_bytes
            )));
        }
        if self.block_bytes % self.cache_line_bytes != 0 {
            return Err(SimError::InvalidConfig(format!(
                "block_bytes ({}) must be a multiple of cache_line_bytes ({})",
                self.block_bytes, self.cache_line_bytes
            )));
        }
        if matches!(self.wear_tracking, WearTracking::PerBit) && self.pool_bytes() > 64 << 20 {
            return Err(SimError::InvalidConfig(format!(
                "PerBit wear tracking on a {} byte pool would allocate {} bytes of counters; \
                 use a pool of at most 64 MiB or a coarser granularity",
                self.pool_bytes(),
                self.pool_bytes() * 8
            )));
        }
        if let Some(fault) = &self.fault {
            fault.validate()?;
        }
        Ok(())
    }
}

/// Builder for [`DeviceConfig`].
#[derive(Debug, Clone)]
pub struct DeviceConfigBuilder {
    cfg: DeviceConfig,
}

impl Default for DeviceConfigBuilder {
    fn default() -> Self {
        Self {
            cfg: DeviceConfig {
                segment_bytes: 256,
                num_segments: 1024,
                cache_line_bytes: 64,
                block_bytes: 256,
                media_dcw: true,
                wear_tracking: WearTracking::None,
                energy: EnergyParams::default(),
                latency: LatencyParams::default(),
                fault: None,
            },
        }
    }
}

impl DeviceConfigBuilder {
    /// Set the segment size in bytes.
    pub fn segment_bytes(mut self, v: usize) -> Self {
        self.cfg.segment_bytes = v;
        self
    }

    /// Set the number of segments.
    pub fn num_segments(mut self, v: usize) -> Self {
        self.cfg.num_segments = v;
        self
    }

    /// Set the cache-line granularity in bytes.
    pub fn cache_line_bytes(mut self, v: usize) -> Self {
        self.cfg.cache_line_bytes = v;
        self
    }

    /// Set the media block size in bytes.
    pub fn block_bytes(mut self, v: usize) -> Self {
        self.cfg.block_bytes = v;
        self
    }

    /// Enable or disable the media-level data-comparison write.
    pub fn media_dcw(mut self, v: bool) -> Self {
        self.cfg.media_dcw = v;
        self
    }

    /// Choose wear-tracking granularity.
    pub fn wear_tracking(mut self, v: WearTracking) -> Self {
        self.cfg.wear_tracking = v;
        self
    }

    /// Override energy parameters.
    pub fn energy(mut self, v: EnergyParams) -> Self {
        self.cfg.energy = v;
        self
    }

    /// Override latency parameters.
    pub fn latency(mut self, v: LatencyParams) -> Self {
        self.cfg.latency = v;
        self
    }

    /// Enable fault injection (finite endurance, transient failures).
    pub fn fault(mut self, v: FaultConfig) -> Self {
        self.cfg.fault = Some(v);
        self
    }

    /// Validate and produce the final configuration.
    pub fn build(self) -> Result<DeviceConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_builder_is_valid() {
        let cfg = DeviceConfig::builder().build().unwrap();
        assert_eq!(cfg.segment_bytes, 256);
        assert_eq!(cfg.lines_per_segment(), 4);
        assert_eq!(cfg.pool_bytes(), 256 * 1024);
    }

    #[test]
    fn zero_sizes_rejected() {
        assert!(DeviceConfig::builder().segment_bytes(0).build().is_err());
        assert!(DeviceConfig::builder().num_segments(0).build().is_err());
        assert!(DeviceConfig::builder().cache_line_bytes(0).build().is_err());
        assert!(DeviceConfig::builder().block_bytes(0).build().is_err());
    }

    #[test]
    fn misaligned_segment_rejected() {
        let err = DeviceConfig::builder()
            .segment_bytes(100)
            .cache_line_bytes(64)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("multiple of cache_line_bytes"));
    }

    #[test]
    fn small_segment_smaller_than_line_is_allowed() {
        // Sub-line segments are used for tiny-value experiments; the
        // device writes a full line in that case.
        let cfg = DeviceConfig::builder()
            .segment_bytes(16)
            .cache_line_bytes(64)
            .block_bytes(64)
            .build()
            .unwrap();
        assert_eq!(cfg.lines_per_segment(), 1);
    }

    #[test]
    fn per_bit_tracking_capped() {
        let err = DeviceConfig::builder()
            .segment_bytes(1 << 20)
            .num_segments(128)
            .wear_tracking(WearTracking::PerBit)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("PerBit"));
    }

    #[test]
    fn fault_config_validated_through_builder() {
        let err = DeviceConfig::builder()
            .fault(FaultConfig {
                transient_rate: 2.0,
                ..FaultConfig::default()
            })
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("transient_rate"));
        let cfg = DeviceConfig::builder()
            .fault(FaultConfig::default())
            .build()
            .unwrap();
        assert!(cfg.fault.is_some());
    }

    #[test]
    fn fault_injection_is_off_by_default() {
        let cfg = DeviceConfig::builder().build().unwrap();
        assert_eq!(cfg.fault, None);
    }

    #[test]
    fn lines_per_segment_rounds_up_for_sub_line_segments() {
        let cfg = DeviceConfig::builder()
            .segment_bytes(32)
            .cache_line_bytes(64)
            .block_bytes(64)
            .build()
            .unwrap();
        assert_eq!(cfg.lines_per_segment(), 1);
    }
}
