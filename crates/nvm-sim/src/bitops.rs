//! Bit-level helpers: hamming distance, popcount over byte slices, and
//! per-byte flip extraction.
//!
//! These are the primitives every write scheme in the workspace is
//! measured with, so they are written to be branch-light and to work on
//! `u64` chunks where possible.

/// Number of differing bits between two equal-length byte slices.
///
/// # Panics
/// Panics if the slices have different lengths — a length mismatch here
/// is always a logic error in the caller, never a runtime condition.
#[inline]
pub fn hamming(a: &[u8], b: &[u8]) -> u64 {
    assert_eq!(a.len(), b.len(), "hamming: slice length mismatch");
    let mut total = 0u64;
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        let xa = u64::from_le_bytes(ca.try_into().expect("chunk is 8 bytes"));
        let xb = u64::from_le_bytes(cb.try_into().expect("chunk is 8 bytes"));
        total += (xa ^ xb).count_ones() as u64;
    }
    for (ra, rb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
        total += (ra ^ rb).count_ones() as u64;
    }
    total
}

/// Number of set bits in a byte slice.
#[inline]
pub fn popcount(a: &[u8]) -> u64 {
    let mut total = 0u64;
    let mut chunks = a.chunks_exact(8);
    for c in chunks.by_ref() {
        total += u64::from_le_bytes(c.try_into().expect("chunk is 8 bytes")).count_ones() as u64;
    }
    for r in chunks.remainder() {
        total += r.count_ones() as u64;
    }
    total
}

/// Number of `0 -> 1` transitions (SET pulses in PCM terms) going from
/// `old` to `new`.
#[inline]
pub fn zero_to_one(old: &[u8], new: &[u8]) -> u64 {
    assert_eq!(old.len(), new.len(), "zero_to_one: slice length mismatch");
    old.iter()
        .zip(new)
        .map(|(o, n)| ((!o) & n).count_ones() as u64)
        .sum()
}

/// Number of `1 -> 0` transitions (RESET pulses in PCM terms) going from
/// `old` to `new`.
#[inline]
pub fn one_to_zero(old: &[u8], new: &[u8]) -> u64 {
    assert_eq!(old.len(), new.len(), "one_to_zero: slice length mismatch");
    old.iter()
        .zip(new)
        .map(|(o, n)| (o & !n).count_ones() as u64)
        .sum()
}

/// Expand a byte slice into individual bits, most significant bit first
/// within each byte. Used when feeding memory contents to the ML models.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for shift in (0..8).rev() {
            bits.push((b >> shift) & 1);
        }
    }
    bits
}

/// Pack a bit slice (values 0/1, MSB-first per byte) back into bytes.
/// The bit count must be a multiple of 8.
///
/// # Panics
/// Panics if `bits.len()` is not a multiple of 8.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert_eq!(
        bits.len() % 8,
        0,
        "bits_to_bytes: length must be multiple of 8"
    );
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &bit| (acc << 1) | (bit & 1)))
        .collect()
}

/// Iterator over the byte offsets whose value differs between two
/// equal-length slices. Useful for wear accounting.
pub fn differing_bytes<'a>(old: &'a [u8], new: &'a [u8]) -> impl Iterator<Item = (usize, u8)> + 'a {
    assert_eq!(
        old.len(),
        new.len(),
        "differing_bytes: slice length mismatch"
    );
    old.iter()
        .zip(new)
        .enumerate()
        .filter_map(|(i, (o, n))| (o != n).then_some((i, o ^ n)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hamming_basic() {
        assert_eq!(hamming(&[0x00], &[0xFF]), 8);
        assert_eq!(hamming(&[0xF0], &[0x0F]), 8);
        assert_eq!(hamming(&[0xAA], &[0xAA]), 0);
        assert_eq!(hamming(&[], &[]), 0);
    }

    #[test]
    fn hamming_crosses_chunk_boundary() {
        // 9 bytes: one full u64 chunk + one remainder byte.
        let a = [0u8; 9];
        let mut b = [0u8; 9];
        b[3] = 0b1010_1010;
        b[8] = 0b0000_0001;
        assert_eq!(hamming(&a, &b), 5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn hamming_length_mismatch_panics() {
        hamming(&[0], &[0, 0]);
    }

    #[test]
    fn popcount_matches_naive() {
        let data: Vec<u8> = (0..=255u8).collect();
        let naive: u64 = data.iter().map(|b| b.count_ones() as u64).sum();
        assert_eq!(popcount(&data), naive);
    }

    #[test]
    fn set_reset_decomposition() {
        let old = [0b1100_0011u8, 0xFF, 0x00];
        let new = [0b0011_1100u8, 0x0F, 0xF0];
        let set = zero_to_one(&old, &new);
        let reset = one_to_zero(&old, &new);
        assert_eq!(set + reset, hamming(&old, &new));
        assert_eq!(set, 8);
        assert_eq!(reset, 8);
    }

    #[test]
    fn bits_roundtrip() {
        let bytes = [0b1011_0001u8, 0x00, 0xFF, 0x5A];
        let bits = bytes_to_bits(&bytes);
        assert_eq!(bits.len(), 32);
        assert_eq!(&bits[..8], &[1, 0, 1, 1, 0, 0, 0, 1]);
        assert_eq!(bits_to_bytes(&bits), bytes);
    }

    #[test]
    fn differing_bytes_reports_xor_mask() {
        let old = [1u8, 2, 3, 4];
        let new = [1u8, 0, 3, 5];
        let diffs: Vec<_> = differing_bytes(&old, &new).collect();
        assert_eq!(diffs, vec![(1, 2), (3, 1)]);
    }
}
