//! Energy metering across system components with a sampled time series.
//!
//! The paper measures package energy with `perf`/RAPL at 1000 samples per
//! second (its §5.1) and plots cumulative/phase energy over time (its
//! Figure 16). [`EnergyMeter`] reproduces that interface in simulation:
//! components record energy under an [`EnergyCategory`] together with the
//! simulated time they consumed; `sample()` closes out a time-series
//! point.

use crate::energy::EnergyCategory;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One sampled point of the meter's time series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergySample {
    /// Simulated time of the sample, ns since meter creation.
    pub t_ns: f64,
    /// Cumulative energy at the sample, pJ.
    pub cumulative_pj: f64,
    /// Energy since the previous sample, pJ (instantaneous power ∝ this
    /// over the sample interval).
    pub delta_pj: f64,
}

/// Accumulates energy by category and simulated time.
#[derive(Debug, Clone, Default)]
pub struct EnergyMeter {
    totals: HashMap<EnergyCategory, f64>,
    clock_ns: f64,
    samples: Vec<EnergySample>,
    last_sampled_pj: f64,
}

impl EnergyMeter {
    /// A fresh meter at t = 0 with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `pj` picojoules under `cat`, advancing the simulated clock
    /// by `dt_ns`.
    pub fn record(&mut self, cat: EnergyCategory, pj: f64, dt_ns: f64) {
        debug_assert!(pj >= 0.0 && dt_ns >= 0.0);
        *self.totals.entry(cat).or_insert(0.0) += pj;
        self.clock_ns += dt_ns;
    }

    /// Total energy across all categories, pJ.
    pub fn total_pj(&self) -> f64 {
        self.totals.values().sum()
    }

    /// Energy recorded under one category, pJ.
    pub fn category_pj(&self, cat: EnergyCategory) -> f64 {
        self.totals.get(&cat).copied().unwrap_or(0.0)
    }

    /// Current simulated time, ns.
    pub fn clock_ns(&self) -> f64 {
        self.clock_ns
    }

    /// Close out a time-series sample at the current clock.
    pub fn sample(&mut self) -> EnergySample {
        let cumulative = self.total_pj();
        let s = EnergySample {
            t_ns: self.clock_ns,
            cumulative_pj: cumulative,
            delta_pj: cumulative - self.last_sampled_pj,
        };
        self.last_sampled_pj = cumulative;
        self.samples.push(s);
        s
    }

    /// All samples taken so far.
    pub fn samples(&self) -> &[EnergySample] {
        &self.samples
    }

    /// Per-category breakdown in display order, `(name, pj)`.
    pub fn breakdown(&self) -> Vec<(&'static str, f64)> {
        EnergyCategory::ALL
            .iter()
            .map(|c| (c.name(), self.category_pj(*c)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_accumulate_per_category() {
        let mut m = EnergyMeter::new();
        m.record(EnergyCategory::NvmWrite, 100.0, 10.0);
        m.record(EnergyCategory::NvmWrite, 50.0, 5.0);
        m.record(EnergyCategory::CpuTrain, 1000.0, 500.0);
        assert_eq!(m.category_pj(EnergyCategory::NvmWrite), 150.0);
        assert_eq!(m.category_pj(EnergyCategory::CpuTrain), 1000.0);
        assert_eq!(m.category_pj(EnergyCategory::Dram), 0.0);
        assert_eq!(m.total_pj(), 1150.0);
        assert_eq!(m.clock_ns(), 515.0);
    }

    #[test]
    fn samples_report_deltas() {
        let mut m = EnergyMeter::new();
        m.record(EnergyCategory::NvmWrite, 10.0, 1.0);
        let s1 = m.sample();
        assert_eq!(s1.delta_pj, 10.0);
        m.record(EnergyCategory::NvmRead, 5.0, 1.0);
        let s2 = m.sample();
        assert_eq!(s2.delta_pj, 5.0);
        assert_eq!(s2.cumulative_pj, 15.0);
        assert_eq!(m.samples().len(), 2);
        assert!(m.samples()[1].t_ns > m.samples()[0].t_ns);
    }

    #[test]
    fn breakdown_covers_all_categories() {
        let m = EnergyMeter::new();
        let b = m.breakdown();
        assert_eq!(b.len(), EnergyCategory::ALL.len());
        assert!(b.iter().all(|(_, pj)| *pj == 0.0));
    }
}
