//! # e2nvm-sim — a software model of a PCM/Optane NVM device
//!
//! This crate is the measurement substrate for the E2-NVM reproduction
//! (EDBT 2023). The paper evaluates bit-flip reduction on a mix of a real
//! Intel Optane DIMM and an *emulated* Optane device (its §5.2 notes that
//! bit flips "cannot be measured using the real device"); this crate is
//! that emulated device, extended with calibrated energy and latency
//! models so that every figure of the paper can be regenerated in
//! software.
//!
//! ## Model
//!
//! * The device is a pool of fixed-size **segments** backed by ordinary
//!   memory. All placement logic in the rest of the workspace addresses
//!   the device at segment granularity.
//! * Writes are mediated at **cache-line** (64 B) granularity inside
//!   **media blocks** (256 B), matching Optane's DDR-T behaviour: a line
//!   whose new content is identical to the stored content is *skipped*
//!   entirely (the source of the latency win in the paper's Figure 1),
//!   and within a written line a data-comparison write (DCW) at the media
//!   programs only the differing bits (the source of the energy win).
//! * Per-write accounting produces a [`WriteReport`] (lines written /
//!   skipped, bits flipped, energy in pJ, latency in ns); cumulative
//!   accounting lives in [`DeviceStats`], including optional per-segment
//!   write counters and per-bit flip counters used for the wear-leveling
//!   CDFs of the paper's Figure 19.
//! * A [`MemoryController`] wraps the device with a logical→physical
//!   segment remapping driven by a pluggable [`WearLeveler`] (start-gap
//!   or random swap every ψ writes), reproducing the interference the
//!   paper studies in Figure 2.
//!
//! ## Quick example
//!
//! ```
//! use e2nvm_sim::{DeviceConfig, NvmDevice};
//!
//! let cfg = DeviceConfig::builder()
//!     .segment_bytes(256)
//!     .num_segments(16)
//!     .build()
//!     .unwrap();
//! let mut dev = NvmDevice::new(cfg);
//! let a = dev.segment(0);
//! let report = dev.write(a, &vec![0xFFu8; 256]).unwrap();
//! assert_eq!(report.bits_flipped, 256 * 8); // device starts zeroed
//! let again = dev.write(a, &vec![0xFFu8; 256]).unwrap();
//! assert_eq!(again.bits_flipped, 0);        // identical content: free
//! assert!(again.energy_pj < report.energy_pj);
//! ```
//!
//! ## Fault injection
//!
//! Segments can be given a *finite* endurance budget (plus optional
//! transient write failures) through [`FaultConfig`]; see the [`fault`]
//! module for the model and `e2nvm-core` for the graceful-degradation
//! layer that retires worn-out segments.

#![warn(missing_docs)]

pub mod addr;
pub mod bitops;
pub mod config;
pub mod controller;
pub mod device;
pub mod energy;
pub mod error;
pub mod fault;
pub mod latency;
pub mod meter;
pub mod partition;
pub mod snapshot;
pub mod stats;
pub mod telemetry;
pub mod trace;
pub mod wear_leveling;

#[allow(deprecated)]
pub use addr::SegmentId;
pub use addr::{LogicalSegment, PhysicalSegment, SegmentRemap};
pub use config::{DeviceConfig, DeviceConfigBuilder, WearTracking};
pub use controller::{ControllerState, MemoryController};
pub use device::{NvmDevice, WriteReport};
pub use energy::{EnergyCategory, EnergyParams};
pub use error::{Result, SimError};
pub use fault::{FaultConfig, FaultModel, FaultStats};
pub use latency::LatencyParams;
pub use meter::EnergyMeter;
pub use partition::{
    partition_controllers, partition_controllers_with, partition_device, partition_segments,
    SegmentRange,
};
pub use stats::DeviceStats;
pub use telemetry::DeviceTelemetry;
pub use trace::{TraceEvent, WriteTrace};
pub use wear_leveling::{
    NoWearLeveling, RandomSwap, RetiredSet, StartGap, SwapAction, WearLeveler, WearPolicyState,
};
