//! Cumulative device statistics and wear counters.

use crate::config::WearTracking;
use serde::{Deserialize, Serialize};

/// Aggregate counters maintained by the device across its lifetime.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeviceStats {
    /// Write requests served.
    pub writes: u64,
    /// Read requests served.
    pub reads: u64,
    /// Cache lines transferred to media (identical lines excluded).
    pub lines_written: u64,
    /// Cache lines skipped because their content was unchanged.
    pub lines_skipped: u64,
    /// Bits that changed value (0→1 or 1→0). The endurance-relevant
    /// quantity regardless of media DCW.
    pub bits_flipped: u64,
    /// 0→1 transitions (SET pulses).
    pub bits_set: u64,
    /// 1→0 transitions (RESET pulses).
    pub bits_reset: u64,
    /// Bits that received a programming pulse. Equals `bits_flipped`
    /// when media DCW is on; equals every bit of every written line when
    /// off.
    pub bits_programmed: u64,
    /// Total data bits the callers asked to store (payload size × 8),
    /// the denominator of the paper's "bit updates per written data bit".
    pub bits_requested: u64,
    /// Energy consumed by the device, pJ.
    pub energy_pj: f64,
    /// Wall-model time spent in device operations, ns.
    pub latency_ns: f64,
    /// Wear-leveling swaps performed by the controller.
    pub swaps: u64,
}

impl DeviceStats {
    /// Average flipped bits per write request.
    pub fn flips_per_write(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.bits_flipped as f64 / self.writes as f64
        }
    }

    /// Flipped bits per requested data bit — the y-axis of the paper's
    /// Figure 12.
    pub fn flips_per_data_bit(&self) -> f64 {
        if self.bits_requested == 0 {
            0.0
        } else {
            self.bits_flipped as f64 / self.bits_requested as f64
        }
    }

    /// Average energy per write request, pJ.
    pub fn energy_per_write_pj(&self) -> f64 {
        if self.writes == 0 {
            0.0
        } else {
            self.energy_pj / self.writes as f64
        }
    }

    /// Average flipped bits per cache-line access (written lines only) —
    /// the y-axis of the paper's Figure 10.
    pub fn flips_per_line_access(&self) -> f64 {
        let accesses = self.lines_written + self.lines_skipped;
        if accesses == 0 {
            0.0
        } else {
            self.bits_flipped as f64 / accesses as f64
        }
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &DeviceStats) {
        self.writes += other.writes;
        self.reads += other.reads;
        self.lines_written += other.lines_written;
        self.lines_skipped += other.lines_skipped;
        self.bits_flipped += other.bits_flipped;
        self.bits_set += other.bits_set;
        self.bits_reset += other.bits_reset;
        self.bits_programmed += other.bits_programmed;
        self.bits_requested += other.bits_requested;
        self.energy_pj += other.energy_pj;
        self.latency_ns += other.latency_ns;
        self.swaps += other.swaps;
    }
}

/// Per-location wear counters at the configured granularity.
#[derive(Debug, Clone)]
pub struct WearCounters {
    mode: WearTracking,
    /// Writes per segment (PerSegment and PerBit modes).
    per_segment_writes: Vec<u32>,
    /// Saturating flip count per bit (PerBit mode only).
    per_bit_flips: Vec<u8>,
}

impl WearCounters {
    /// Allocate counters for a device with the given geometry.
    pub fn new(mode: WearTracking, num_segments: usize, pool_bytes: usize) -> Self {
        let per_segment_writes = match mode {
            WearTracking::None => Vec::new(),
            _ => vec![0u32; num_segments],
        };
        let per_bit_flips = match mode {
            WearTracking::PerBit => vec![0u8; pool_bytes * 8],
            _ => Vec::new(),
        };
        Self {
            mode,
            per_segment_writes,
            per_bit_flips,
        }
    }

    /// Tracking granularity in effect.
    pub fn mode(&self) -> WearTracking {
        self.mode
    }

    /// Record one write to `segment`.
    #[inline]
    pub fn record_segment_write(&mut self, segment: usize) {
        if let Some(c) = self.per_segment_writes.get_mut(segment) {
            *c = c.saturating_add(1);
        }
    }

    /// Record flips given the XOR mask of one byte at pool offset
    /// `byte_offset`.
    #[inline]
    pub fn record_byte_flips(&mut self, byte_offset: usize, xor_mask: u8) {
        if self.mode != WearTracking::PerBit || xor_mask == 0 {
            return;
        }
        let base = byte_offset * 8;
        for bit in 0..8 {
            // MSB-first to match `bitops::bytes_to_bits`.
            if (xor_mask >> (7 - bit)) & 1 == 1 {
                let c = &mut self.per_bit_flips[base + bit];
                *c = c.saturating_add(1);
            }
        }
    }

    /// Restore counters from persisted arrays (device image load).
    /// Empty slices leave the corresponding granularity untouched.
    pub fn restore(&mut self, per_segment: &[u32], per_bit: &[u8]) -> Result<(), String> {
        if !per_segment.is_empty() {
            if per_segment.len() != self.per_segment_writes.len() {
                return Err(format!(
                    "segment counter length {} != {}",
                    per_segment.len(),
                    self.per_segment_writes.len()
                ));
            }
            self.per_segment_writes.copy_from_slice(per_segment);
        }
        if !per_bit.is_empty() {
            if per_bit.len() != self.per_bit_flips.len() {
                return Err(format!(
                    "bit counter length {} != {}",
                    per_bit.len(),
                    self.per_bit_flips.len()
                ));
            }
            self.per_bit_flips.copy_from_slice(per_bit);
        }
        Ok(())
    }

    /// Writes per segment, if tracked.
    pub fn per_segment_writes(&self) -> Option<&[u32]> {
        (!self.per_segment_writes.is_empty()).then_some(&self.per_segment_writes[..])
    }

    /// Flip count per bit, if tracked.
    pub fn per_bit_flips(&self) -> Option<&[u8]> {
        (!self.per_bit_flips.is_empty()).then_some(&self.per_bit_flips[..])
    }

    /// Empirical CDF of per-segment write counts: returns sorted
    /// `(count, cumulative_fraction)` points. Used for the red curve of
    /// the paper's Figure 19.
    pub fn segment_write_cdf(&self) -> Vec<(u32, f64)> {
        Self::cdf_of(self.per_segment_writes.iter().copied())
    }

    /// Empirical CDF of per-bit flip counts (blue curve of Figure 19).
    pub fn bit_flip_cdf(&self) -> Vec<(u32, f64)> {
        Self::cdf_of(self.per_bit_flips.iter().map(|&v| v as u32))
    }

    fn cdf_of(values: impl Iterator<Item = u32>) -> Vec<(u32, f64)> {
        let mut v: Vec<u32> = values.collect();
        if v.is_empty() {
            return Vec::new();
        }
        v.sort_unstable();
        let n = v.len() as f64;
        let mut out: Vec<(u32, f64)> = Vec::new();
        for (i, val) in v.iter().enumerate() {
            let frac = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == *val => last.1 = frac,
                _ => out.push((*val, frac)),
            }
        }
        out
    }

    /// Swap the per-segment wear counters of two segments (used when the
    /// wear-leveler physically relocates contents — wear follows the
    /// physical cell, so counters stay with the physical slot; this
    /// helper is for logical-view analyses).
    pub fn max_segment_writes(&self) -> u32 {
        self.per_segment_writes.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero_denominators() {
        let s = DeviceStats::default();
        assert_eq!(s.flips_per_write(), 0.0);
        assert_eq!(s.flips_per_data_bit(), 0.0);
        assert_eq!(s.energy_per_write_pj(), 0.0);
        assert_eq!(s.flips_per_line_access(), 0.0);
    }

    #[test]
    fn merge_adds_all_fields() {
        let mut a = DeviceStats {
            writes: 1,
            reads: 2,
            lines_written: 3,
            lines_skipped: 4,
            bits_flipped: 5,
            bits_set: 3,
            bits_reset: 2,
            bits_programmed: 6,
            bits_requested: 7,
            energy_pj: 8.0,
            latency_ns: 9.0,
            swaps: 10,
        };
        let b = a.clone();
        a.merge(&b);
        assert_eq!(a.writes, 2);
        assert_eq!(a.swaps, 20);
        assert_eq!(a.energy_pj, 16.0);
    }

    #[test]
    fn per_bit_counters_msb_first() {
        let mut w = WearCounters::new(WearTracking::PerBit, 1, 1);
        w.record_byte_flips(0, 0b1000_0001);
        let bits = w.per_bit_flips().unwrap();
        assert_eq!(bits[0], 1);
        assert_eq!(bits[7], 1);
        assert_eq!(bits[1..7].iter().sum::<u8>(), 0);
    }

    #[test]
    fn per_bit_counters_saturate() {
        let mut w = WearCounters::new(WearTracking::PerBit, 1, 1);
        for _ in 0..300 {
            w.record_byte_flips(0, 0b1000_0000);
        }
        assert_eq!(w.per_bit_flips().unwrap()[0], 255);
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut w = WearCounters::new(WearTracking::PerSegment, 4, 16);
        w.record_segment_write(0);
        w.record_segment_write(0);
        w.record_segment_write(1);
        let cdf = w.segment_write_cdf();
        assert_eq!(cdf.last().unwrap().1, 1.0);
        for pair in cdf.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].1 <= pair[1].1);
        }
        // counts: [2,1,0,0] -> P(X<=0)=0.5, P(X<=1)=0.75, P(X<=2)=1.0
        assert_eq!(cdf, vec![(0, 0.5), (1, 0.75), (2, 1.0)]);
    }

    #[test]
    fn none_mode_tracks_nothing() {
        let mut w = WearCounters::new(WearTracking::None, 4, 16);
        w.record_segment_write(0);
        w.record_byte_flips(0, 0xFF);
        assert!(w.per_segment_writes().is_none());
        assert!(w.per_bit_flips().is_none());
        assert!(w.segment_write_cdf().is_empty());
    }
}
