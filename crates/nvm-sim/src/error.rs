//! Error type for the device model.

use std::fmt;

/// Errors produced by the NVM device model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A segment id referred to a segment outside the device.
    SegmentOutOfRange {
        /// The offending segment index.
        segment: usize,
        /// Number of segments in the device.
        num_segments: usize,
    },
    /// A buffer length did not match the expected segment (or sub-segment)
    /// length.
    SizeMismatch {
        /// Length the device expected.
        expected: usize,
        /// Length the caller supplied.
        actual: usize,
    },
    /// A configuration value was invalid (zero sizes, non-divisible
    /// granularities, ...). The string names the offending field.
    InvalidConfig(String),
    /// An offset + length range fell outside a segment.
    RangeOutOfBounds {
        /// Requested start offset within the segment.
        offset: usize,
        /// Requested length.
        len: usize,
        /// The segment size.
        segment_bytes: usize,
    },
    /// The segment exceeded its endurance limit: its content is frozen
    /// (stuck-at faults) and every write to it is rejected. Emitted by
    /// the fault model (see [`crate::FaultConfig`]).
    SegmentWornOut {
        /// The worn-out segment.
        segment: usize,
        /// Bits the dying write left stuck at the wrong value (0 when
        /// the segment was already worn out before this write).
        stuck_bits: u64,
    },
    /// A write failed program-and-verify transiently: some differing
    /// bits were left unprogrammed. Retrying the same write programs
    /// only the remaining bits and usually succeeds.
    WriteFailed {
        /// The segment the write targeted.
        segment: usize,
        /// Bits that failed verification.
        failed_bits: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::SegmentOutOfRange {
                segment,
                num_segments,
            } => write!(
                f,
                "segment {segment} out of range (device has {num_segments} segments)"
            ),
            SimError::SizeMismatch { expected, actual } => {
                write!(f, "buffer size mismatch: expected {expected}, got {actual}")
            }
            SimError::InvalidConfig(what) => write!(f, "invalid device config: {what}"),
            SimError::RangeOutOfBounds {
                offset,
                len,
                segment_bytes,
            } => write!(
                f,
                "range {offset}+{len} out of bounds for segment of {segment_bytes} bytes"
            ),
            SimError::SegmentWornOut {
                segment,
                stuck_bits,
            } => write!(
                f,
                "segment {segment} worn out ({stuck_bits} bits stuck); content frozen"
            ),
            SimError::WriteFailed {
                segment,
                failed_bits,
            } => write!(
                f,
                "transient write failure on segment {segment}: {failed_bits} bits failed verify"
            ),
        }
    }
}

impl std::error::Error for SimError {}

/// Convenience result alias used across the crate.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SimError::SegmentOutOfRange {
            segment: 9,
            num_segments: 4,
        };
        assert!(e.to_string().contains("segment 9"));
        assert!(e.to_string().contains("4 segments"));

        let e = SimError::SizeMismatch {
            expected: 256,
            actual: 64,
        };
        assert!(e.to_string().contains("256"));
        assert!(e.to_string().contains("64"));

        let e = SimError::InvalidConfig("segment_bytes must be > 0".into());
        assert!(e.to_string().contains("segment_bytes"));

        let e = SimError::RangeOutOfBounds {
            offset: 200,
            len: 100,
            segment_bytes: 256,
        };
        assert!(e.to_string().contains("200+100"));

        let e = SimError::SegmentWornOut {
            segment: 7,
            stuck_bits: 3,
        };
        assert!(e.to_string().contains("segment 7 worn out"));
        assert!(e.to_string().contains("3 bits stuck"));

        let e = SimError::WriteFailed {
            segment: 2,
            failed_bits: 16,
        };
        assert!(e.to_string().contains("segment 2"));
        assert!(e.to_string().contains("16 bits failed"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&SimError::InvalidConfig("x".into()));
    }
}
