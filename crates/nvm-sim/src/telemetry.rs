//! Device-level telemetry sink.
//!
//! [`DeviceTelemetry`] bundles the metric handles the [`crate::NvmDevice`]
//! updates at its accounting chokepoints. A freshly built device carries
//! disconnected handles; [`crate::NvmDevice::attach_telemetry`] swaps in
//! handles registered on a shared [`TelemetryRegistry`]. With the
//! `telemetry` feature off every handle is a zero-sized no-op and the
//! whole sink compiles away.
//!
//! The counter set mirrors [`crate::DeviceStats`] field-for-field (the
//! integer fields), updated at the same three accounting sites
//! (`account`, `read`, `swap_segments`) — so after any workload the
//! counter values and the stats snapshot agree *exactly*. A property
//! test in the workspace root enforces this. Unlike `DeviceStats`, the
//! counters are monotonic: `reset_stats` does not touch them.

use e2nvm_telemetry::{Histogram, TelemetryRegistry};

// Re-exported so downstream crates take telemetry types from the crate
// they already depend on.
pub use e2nvm_telemetry::Counter;

/// Upper bounds for the per-write bit-flip histogram (bits).
const FLIP_BOUNDS: [u64; 8] = [0, 8, 32, 128, 512, 2048, 8192, 32768];

/// Upper bounds for the modeled per-write latency histogram (ns).
const LATENCY_BOUNDS: [u64; 7] = [100, 300, 1000, 3000, 10_000, 100_000, 1_000_000];

/// Metric handles updated by the device's accounting paths.
#[derive(Debug, Clone)]
pub struct DeviceTelemetry {
    /// Write operations accounted.
    pub writes: Counter,
    /// Read operations accounted.
    pub reads: Counter,
    /// Wear-leveling segment swaps performed.
    pub swaps: Counter,
    /// Cache lines transferred to media.
    pub lines_written: Counter,
    /// Cache lines skipped because their content was unchanged.
    pub lines_skipped: Counter,
    /// Stored bits whose value changed.
    pub bits_flipped: Counter,
    /// 0→1 transitions (SET pulses).
    pub bits_set: Counter,
    /// 1→0 transitions (RESET pulses).
    pub bits_reset: Counter,
    /// Bits that received a programming pulse.
    pub bits_programmed: Counter,
    /// Bits software asked to write.
    pub bits_requested: Counter,
    /// Writes that failed: transient program-and-verify failures plus
    /// rejected writes to worn-out segments. Not mirrored in
    /// [`crate::DeviceStats`] (fault counters live in
    /// [`crate::FaultStats`]).
    pub write_failures: Counter,
    /// Segments that have crossed their endurance limit.
    pub worn_out_segments: Counter,
    /// Distribution of bit flips per write operation.
    pub flips_per_write: Histogram,
    /// Distribution of the modeled write latency (ns) per operation.
    pub write_latency_ns: Histogram,
}

impl Default for DeviceTelemetry {
    fn default() -> Self {
        Self::disconnected()
    }
}

impl DeviceTelemetry {
    /// Handles not attached to any registry (the initial state of every
    /// device).
    pub fn disconnected() -> Self {
        DeviceTelemetry {
            writes: Counter::disconnected(),
            reads: Counter::disconnected(),
            swaps: Counter::disconnected(),
            lines_written: Counter::disconnected(),
            lines_skipped: Counter::disconnected(),
            bits_flipped: Counter::disconnected(),
            bits_set: Counter::disconnected(),
            bits_reset: Counter::disconnected(),
            bits_programmed: Counter::disconnected(),
            bits_requested: Counter::disconnected(),
            write_failures: Counter::disconnected(),
            worn_out_segments: Counter::disconnected(),
            flips_per_write: Histogram::disconnected(&FLIP_BOUNDS),
            write_latency_ns: Histogram::disconnected(&LATENCY_BOUNDS),
        }
    }

    /// Register the device metric family on `registry`, distinguished by
    /// `labels` (e.g. `[("shard", "3")]`).
    pub fn register(registry: &TelemetryRegistry, labels: &[(&str, &str)]) -> Self {
        let c = |name: &str, help: &str| registry.counter_with_labels(name, help, labels);
        DeviceTelemetry {
            writes: c("e2nvm_device_writes_total", "Write operations accounted"),
            reads: c("e2nvm_device_reads_total", "Read operations accounted"),
            swaps: c(
                "e2nvm_device_swaps_total",
                "Wear-leveling segment swaps performed",
            ),
            lines_written: c(
                "e2nvm_device_lines_written_total",
                "Cache lines transferred to media",
            ),
            lines_skipped: c(
                "e2nvm_device_lines_skipped_total",
                "Cache lines skipped (unchanged content)",
            ),
            bits_flipped: c(
                "e2nvm_device_bits_flipped_total",
                "Stored bits that changed",
            ),
            bits_set: c("e2nvm_device_bits_set_total", "0\u{2192}1 transitions"),
            bits_reset: c("e2nvm_device_bits_reset_total", "1\u{2192}0 transitions"),
            bits_programmed: c(
                "e2nvm_device_bits_programmed_total",
                "Bits that received a programming pulse",
            ),
            bits_requested: c(
                "e2nvm_device_bits_requested_total",
                "Bits software asked to write",
            ),
            write_failures: c(
                "e2nvm_device_write_failures_total",
                "Writes that failed program-and-verify or hit a worn-out segment",
            ),
            worn_out_segments: c(
                "e2nvm_device_worn_out_segments_total",
                "Segments that crossed their endurance limit",
            ),
            flips_per_write: registry.histogram_with_labels(
                "e2nvm_device_flips_per_write",
                "Bit flips per write operation",
                &FLIP_BOUNDS,
                labels,
            ),
            write_latency_ns: registry.histogram_with_labels(
                "e2nvm_device_write_latency_ns",
                "Modeled latency per write operation (ns)",
                &LATENCY_BOUNDS,
                labels,
            ),
        }
    }
}
