//! The simulated NVM device: a segment pool with cache-line write
//! semantics and full flip/energy/latency accounting.

use crate::addr::PhysicalSegment;
use crate::bitops;
use crate::config::DeviceConfig;
use crate::error::{Result, SimError};
use crate::fault::{FaultModel, FaultStats};
use crate::stats::{DeviceStats, WearCounters};
use crate::telemetry::DeviceTelemetry;
use crate::trace::{TraceEvent, WriteTrace};
use e2nvm_telemetry::TelemetryRegistry;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Accounting for a single write operation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct WriteReport {
    /// Cache lines actually transferred to media.
    pub lines_written: u64,
    /// Cache lines skipped because their content was unchanged.
    pub lines_skipped: u64,
    /// Bits whose stored value changed.
    pub bits_flipped: u64,
    /// 0→1 transitions (SET pulses) among the flipped bits.
    pub bits_set: u64,
    /// 1→0 transitions (RESET pulses) among the flipped bits.
    pub bits_reset: u64,
    /// Bits that received a programming pulse (== `bits_flipped` with
    /// media DCW; every bit of written lines without).
    pub bits_programmed: u64,
    /// Energy consumed, pJ.
    pub energy_pj: f64,
    /// Modeled latency, ns.
    pub latency_ns: f64,
}

impl WriteReport {
    /// Merge another report into this one (summing all counters).
    pub fn merge(&mut self, other: &WriteReport) {
        self.lines_written += other.lines_written;
        self.lines_skipped += other.lines_skipped;
        self.bits_flipped += other.bits_flipped;
        self.bits_set += other.bits_set;
        self.bits_reset += other.bits_reset;
        self.bits_programmed += other.bits_programmed;
        self.energy_pj += other.energy_pj;
        self.latency_ns += other.latency_ns;
    }
}

/// The simulated device.
///
/// All mutation goes through `&mut self`; callers that need sharing wrap
/// the device in a lock (see `e2nvm-core`).
#[derive(Debug, Clone)]
pub struct NvmDevice {
    cfg: DeviceConfig,
    data: Vec<u8>,
    stats: DeviceStats,
    wear: WearCounters,
    trace: Option<WriteTrace>,
    telemetry: DeviceTelemetry,
    /// Present iff `cfg.fault` is set; `None` keeps every write path
    /// exactly as it was before fault injection existed.
    fault: Option<FaultModel>,
}

impl NvmDevice {
    /// Create a zero-initialized device.
    ///
    /// # Panics
    /// Panics if `cfg` is invalid; validate with
    /// [`DeviceConfig::validate`] (the builder does this) first.
    pub fn new(cfg: DeviceConfig) -> Self {
        cfg.validate().expect("invalid DeviceConfig");
        let pool = cfg.pool_bytes();
        let wear = WearCounters::new(cfg.wear_tracking, cfg.num_segments, pool);
        let fault = cfg
            .fault
            .as_ref()
            .map(|fc| FaultModel::new(fc.clone(), cfg.num_segments));
        Self {
            data: vec![0u8; pool],
            stats: DeviceStats::default(),
            wear,
            trace: None,
            telemetry: DeviceTelemetry::disconnected(),
            fault,
            cfg,
        }
    }

    /// Register this device's metrics on `registry` (labeled by
    /// `labels`, e.g. `[("shard", "0")]`) and start feeding them. The
    /// telemetry counters mirror [`DeviceStats`] exactly from this point
    /// on, but are monotonic — [`NvmDevice::reset_stats`] does not reset
    /// them. Cloning the device shares the handles.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry, labels: &[(&str, &str)]) {
        self.telemetry = DeviceTelemetry::register(registry, labels);
    }

    /// The device configuration.
    pub fn config(&self) -> &DeviceConfig {
        &self.cfg
    }

    /// Number of segments in the pool.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.cfg.num_segments
    }

    /// Construct a [`PhysicalSegment`], panicking if out of range. Use
    /// [`NvmDevice::try_segment`] for fallible construction.
    #[inline]
    pub fn segment(&self, index: usize) -> PhysicalSegment {
        self.try_segment(index).expect("segment index out of range")
    }

    /// Construct a [`PhysicalSegment`], returning an error if out of range.
    pub fn try_segment(&self, index: usize) -> Result<PhysicalSegment> {
        if index < self.cfg.num_segments {
            Ok(PhysicalSegment(index))
        } else {
            Err(SimError::SegmentOutOfRange {
                segment: index,
                num_segments: self.cfg.num_segments,
            })
        }
    }

    /// Iterator over every segment id.
    pub fn segments(&self) -> impl Iterator<Item = PhysicalSegment> {
        (0..self.cfg.num_segments).map(PhysicalSegment)
    }

    fn check(&self, seg: PhysicalSegment) -> Result<usize> {
        if seg.0 >= self.cfg.num_segments {
            return Err(SimError::SegmentOutOfRange {
                segment: seg.0,
                num_segments: self.cfg.num_segments,
            });
        }
        Ok(seg.0 * self.cfg.segment_bytes)
    }

    /// Read a full segment, with read accounting.
    pub fn read(&mut self, seg: PhysicalSegment) -> Result<&[u8]> {
        let base = self.check(seg)?;
        let lines = self.cfg.lines_per_segment() as u64;
        self.stats.reads += 1;
        self.telemetry.reads.inc();
        self.stats.energy_pj += self.cfg.energy.read_energy_pj(lines);
        self.stats.latency_ns += self.cfg.latency.read_ns(lines);
        Ok(&self.data[base..base + self.cfg.segment_bytes])
    }

    /// Inspect a segment's content without any accounting. Placement
    /// models use this during training snapshots; it does not model a
    /// media read.
    pub fn peek(&self, seg: PhysicalSegment) -> &[u8] {
        let base = seg.0 * self.cfg.segment_bytes;
        &self.data[base..base + self.cfg.segment_bytes]
    }

    /// Write a full segment. `data.len()` must equal the segment size.
    pub fn write(&mut self, seg: PhysicalSegment, data: &[u8]) -> Result<WriteReport> {
        if data.len() != self.cfg.segment_bytes {
            return Err(SimError::SizeMismatch {
                expected: self.cfg.segment_bytes,
                actual: data.len(),
            });
        }
        self.write_at(seg, 0, data)
    }

    /// Write `data` starting at `offset` within the segment. Writes are
    /// applied at cache-line granularity: a partially covered line is
    /// read-modify-written, and any resulting line identical to the
    /// stored line is skipped entirely.
    pub fn write_at(
        &mut self,
        seg: PhysicalSegment,
        offset: usize,
        data: &[u8],
    ) -> Result<WriteReport> {
        let base = self.check(seg)?;
        if offset + data.len() > self.cfg.segment_bytes {
            return Err(SimError::RangeOutOfBounds {
                offset,
                len: data.len(),
                segment_bytes: self.cfg.segment_bytes,
            });
        }
        // A worn-out segment rejects every write up front: its cells are
        // stuck, no pulses are issued, nothing is accounted.
        if let Some(f) = &mut self.fault {
            if f.is_worn(seg) {
                f.record_rejection();
                self.telemetry.write_failures.inc();
                return Err(SimError::SegmentWornOut {
                    segment: seg.0,
                    stuck_bits: 0,
                });
            }
        }
        let line = self.cfg.cache_line_bytes;
        let seg_len = self.cfg.segment_bytes;
        let mut report = WriteReport::default();

        if data.is_empty() {
            // A zero-length write still models a request round-trip.
            report.latency_ns = self.cfg.latency.write_ns(0);
            report.energy_pj = self.cfg.energy.write_energy_pj(0, 0);
            self.account(seg, 0, &report);
            return Ok(report);
        }

        // Transient fault pre-stage: a failing write programs only a
        // subset of the differing bytes. The normal loop below then runs
        // on this `effective` buffer — the pulses that did land are
        // accounted at full price — and the write reports the bits that
        // failed program-and-verify.
        let mut transient_failed_bits = 0u64;
        let effective: Option<Vec<u8>> = match &mut self.fault {
            Some(f) => {
                if f.transient_fires() {
                    let old = &self.data[base + offset..base + offset + data.len()];
                    f.corrupt_transient(old, data).map(|(eff, bits)| {
                        transient_failed_bits = bits;
                        eff
                    })
                } else {
                    None
                }
            }
            None => None,
        };
        let write_data: &[u8] = effective.as_deref().unwrap_or(data);

        // Lines the write touches (line grid is segment-relative; for
        // sub-line segments the whole segment is one line).
        let first_line = offset / line;
        let last_line = (offset + data.len() - 1) / line;

        for li in first_line..=last_line {
            let lstart = li * line;
            let lend = (lstart + line).min(seg_len);
            // Overlap of [offset, offset+len) with this line.
            let ostart = offset.max(lstart);
            let oend = (offset + data.len()).min(lend);
            let old_region = &self.data[base + ostart..base + oend];
            let new_region = &write_data[ostart - offset..oend - offset];
            let flips = bitops::hamming(old_region, new_region);
            if flips == 0 && old_region == new_region {
                report.lines_skipped += 1;
                continue;
            }
            report.lines_written += 1;
            report.bits_flipped += flips;
            report.bits_set += bitops::zero_to_one(old_region, new_region);
            report.bits_reset += bitops::one_to_zero(old_region, new_region);
            report.bits_programmed += if self.cfg.media_dcw {
                flips
            } else {
                ((lend - lstart) * 8) as u64
            };
            // Wear: per-byte flip masks, then apply the new content.
            if self.wear.per_bit_flips().is_some() {
                let diffs: Vec<(usize, u8)> = bitops::differing_bytes(old_region, new_region)
                    .map(|(i, m)| (base + ostart + i, m))
                    .collect();
                for (abs, mask) in diffs {
                    self.wear.record_byte_flips(abs, mask);
                }
            }
            self.data[base + ostart..base + oend].copy_from_slice(new_region);
        }

        report.energy_pj = if self.cfg.media_dcw {
            // With differential writes the flip directions are known:
            // price SET and RESET pulses separately.
            self.cfg.energy.write_energy_directional_pj(
                report.lines_written,
                report.bits_set,
                report.bits_reset,
            )
        } else {
            self.cfg
                .energy
                .write_energy_pj(report.lines_written, report.bits_programmed)
        };
        report.latency_ns = self.cfg.latency.write_ns(report.lines_written);
        self.account(seg, (data.len() * 8) as u64, &report);

        // Endurance post-stage: the pulses above count against the
        // segment's lifetime budget. Crossing the limit wears the
        // segment out *now* — some freshly programmed cells latch the
        // wrong value and program-and-verify reports the write failed.
        if let Some(f) = &mut self.fault {
            if f.on_programmed(seg.0, report.bits_programmed) {
                let stuck_bits = {
                    let region = &mut self.data[base..base + seg_len];
                    // `fault` and `data` are disjoint fields; re-borrow
                    // immutably for the deterministic corruption pattern.
                    f.stuck_corruption(seg.0, region)
                };
                self.telemetry.worn_out_segments.inc();
                return Err(SimError::SegmentWornOut {
                    segment: seg.0,
                    stuck_bits,
                });
            }
        }
        if transient_failed_bits > 0 {
            self.telemetry.write_failures.inc();
            return Err(SimError::WriteFailed {
                segment: seg.0,
                failed_bits: transient_failed_bits,
            });
        }
        Ok(report)
    }

    fn account(&mut self, seg: PhysicalSegment, bits_requested: u64, report: &WriteReport) {
        self.stats.writes += 1;
        self.stats.lines_written += report.lines_written;
        self.stats.lines_skipped += report.lines_skipped;
        self.stats.bits_flipped += report.bits_flipped;
        self.stats.bits_set += report.bits_set;
        self.stats.bits_reset += report.bits_reset;
        self.stats.bits_programmed += report.bits_programmed;
        self.stats.bits_requested += bits_requested;
        self.stats.energy_pj += report.energy_pj;
        self.stats.latency_ns += report.latency_ns;
        let t = &self.telemetry;
        t.writes.inc();
        t.lines_written.add(report.lines_written);
        t.lines_skipped.add(report.lines_skipped);
        t.bits_flipped.add(report.bits_flipped);
        t.bits_set.add(report.bits_set);
        t.bits_reset.add(report.bits_reset);
        t.bits_programmed.add(report.bits_programmed);
        t.bits_requested.add(bits_requested);
        t.flips_per_write.observe(report.bits_flipped);
        t.write_latency_ns.observe(report.latency_ns as u64);
        self.wear.record_segment_write(seg.0);
        if let Some(trace) = &mut self.trace {
            trace.record(TraceEvent {
                segment: seg.0,
                bits_flipped: report.bits_flipped,
                lines_written: report.lines_written,
            });
        }
    }

    /// Physically exchange the contents of two segments (a wear-leveling
    /// swap). Accounted as two reads plus two writes; the bit flips of
    /// rewriting both segments are charged — the paper notes wear
    /// leveling "may introduce more bit flips ... due to the swap
    /// operation".
    ///
    /// Transient program-and-verify failures are retried in place (a
    /// bounded number of times, each retry re-programming only the bits
    /// that failed), modeling the controller hardware's retry loop: a
    /// half-landed exchange must not escape, because the caller updates
    /// its remap table only on success.
    pub fn swap_segments(&mut self, a: PhysicalSegment, b: PhysicalSegment) -> Result<WriteReport> {
        self.check(a)?;
        self.check(b)?;
        if a == b {
            return Ok(WriteReport::default());
        }
        let a_content = self.peek(a).to_vec();
        let b_content = self.peek(b).to_vec();
        let lines = self.cfg.lines_per_segment() as u64;
        // Two media reads.
        self.stats.reads += 2;
        self.telemetry.reads.add(2);
        self.stats.energy_pj += 2.0 * self.cfg.energy.read_energy_pj(lines);
        self.stats.latency_ns += 2.0 * self.cfg.latency.read_ns(lines);
        let mut report = self.write_retrying_transients(a, &b_content)?;
        let r2 = self.write_retrying_transients(b, &a_content)?;
        report.merge(&r2);
        self.stats.swaps += 1;
        self.telemetry.swaps.inc();
        Ok(report)
    }

    /// Full-segment write that retries transient failures in place
    /// (relocation traffic only — user writes surface transients to the
    /// engine, which owns the retry budget). Each failed attempt
    /// partially programs the segment, so retries converge on the
    /// remaining diff; all issued pulses stay accounted.
    pub(crate) fn write_retrying_transients(
        &mut self,
        seg: PhysicalSegment,
        data: &[u8],
    ) -> Result<WriteReport> {
        const MAX_ATTEMPTS: u32 = 16;
        let mut merged = WriteReport::default();
        for _ in 0..MAX_ATTEMPTS - 1 {
            match self.write(seg, data) {
                Ok(r) => {
                    merged.merge(&r);
                    return Ok(merged);
                }
                Err(SimError::WriteFailed { .. }) => continue,
                Err(e) => return Err(e),
            }
        }
        let r = self.write(seg, data)?;
        merged.merge(&r);
        Ok(merged)
    }

    /// Programming pulses a full-segment [`NvmDevice::write`] of `data`
    /// to `seg` would issue, computed without performing it: the
    /// content diff under media DCW, or every bit of each changed line
    /// without. Used by the wear-leveling relocation pre-check.
    pub fn write_programmed_bits(&self, seg: PhysicalSegment, data: &[u8]) -> Result<u64> {
        let base = self.check(seg)?;
        if data.len() != self.cfg.segment_bytes {
            return Err(SimError::SizeMismatch {
                expected: self.cfg.segment_bytes,
                actual: data.len(),
            });
        }
        let line = self.cfg.cache_line_bytes;
        let seg_len = self.cfg.segment_bytes;
        let mut programmed = 0u64;
        let mut li = 0;
        while li * line < seg_len {
            let lstart = li * line;
            let lend = (lstart + line).min(seg_len);
            let old = &self.data[base + lstart..base + lend];
            let new = &data[lstart..lend];
            let flips = bitops::hamming(old, new);
            if flips > 0 {
                programmed += if self.cfg.media_dcw {
                    flips
                } else {
                    ((lend - lstart) * 8) as u64
                };
            }
            li += 1;
        }
        Ok(programmed)
    }

    /// Whether a full-segment write of `data` to `seg` could cross the
    /// segment's endurance limit (or `seg` is already worn out). Always
    /// `false` without fault injection.
    ///
    /// The check is exact when transient faults are off. With a nonzero
    /// transient rate a failed program-and-verify re-programs the
    /// remaining diff on retry, so a 4x headroom margin is required —
    /// conservative, never optimistic. The controller uses this to keep
    /// wear-leveling relocations from ever being the write that kills a
    /// segment: relocations that cannot prove headroom are skipped, so
    /// wear-out only happens on user writes, where the engine's
    /// retire-and-replace path guarantees no data is lost.
    pub fn write_would_wear_out(&self, seg: PhysicalSegment, data: &[u8]) -> Result<bool> {
        let Some(f) = &self.fault else {
            return Ok(false);
        };
        if f.is_worn(seg) {
            return Ok(true);
        }
        let programmed = self.write_programmed_bits(seg, data)?;
        let margin = if f.config().transient_rate > 0.0 {
            4
        } else {
            1
        };
        let headroom = f.limit(seg).saturating_sub(f.programmed_bits(seg));
        Ok(programmed.saturating_mul(margin) >= headroom)
    }

    /// Fill the whole pool with random bytes *without* accounting — used
    /// to model a pre-existing memory state before an experiment starts.
    pub fn fill_random<R: Rng>(&mut self, rng: &mut R) {
        rng.fill(&mut self.data[..]);
    }

    /// Overwrite a segment's content without accounting (seed state).
    pub fn seed_segment(&mut self, seg: PhysicalSegment, data: &[u8]) -> Result<()> {
        let base = self.check(seg)?;
        if data.len() != self.cfg.segment_bytes {
            return Err(SimError::SizeMismatch {
                expected: self.cfg.segment_bytes,
                actual: data.len(),
            });
        }
        self.data[base..base + self.cfg.segment_bytes].copy_from_slice(data);
        Ok(())
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &DeviceStats {
        &self.stats
    }

    /// Reset cumulative statistics (wear counters are kept — wear is
    /// physical and survives measurement epochs).
    pub fn reset_stats(&mut self) {
        self.stats = DeviceStats::default();
    }

    /// Wear counters.
    pub fn wear(&self) -> &WearCounters {
        &self.wear
    }

    /// The fault model, when fault injection is configured. Exposes
    /// per-segment endurance limits, programmed-bit totals and worn-out
    /// flags.
    pub fn fault_state(&self) -> Option<&FaultModel> {
        self.fault.as_ref()
    }

    /// Cumulative fault counters; all zero when fault injection is off.
    pub fn fault_stats(&self) -> FaultStats {
        self.fault.as_ref().map(|f| *f.stats()).unwrap_or_default()
    }

    /// Whether `seg` has worn out (always `false` without fault
    /// injection).
    pub fn is_worn_out(&self, seg: PhysicalSegment) -> bool {
        self.fault.as_ref().is_some_and(|f| f.is_worn(seg))
    }

    /// Number of worn-out segments (0 without fault injection).
    pub fn worn_out_count(&self) -> u64 {
        self.fault.as_ref().map_or(0, |f| f.worn_out_count())
    }

    /// Export the per-segment wear state as a JSON heatmap document:
    /// writes per segment plus (when per-bit tracking is on) flipped
    /// bits aggregated per segment. Arrays are `null` when the
    /// corresponding granularity is not tracked.
    ///
    /// Array indices are **physical** segment ids (the document says so
    /// in its `address_space` field): wear lives on the medium, so a
    /// heatmap taken under an active wear-leveling remap does *not*
    /// line up with the engine's logical ids. For a logical-indexed
    /// view translated through the live remap, use
    /// [`crate::MemoryController::wear_heatmap_json`].
    pub fn wear_heatmap_json(&self) -> String {
        fn array<T: std::fmt::Display>(values: Option<impl Iterator<Item = T>>) -> String {
            match values {
                None => "null".to_string(),
                Some(vals) => {
                    let items: Vec<String> = vals.map(|v| v.to_string()).collect();
                    format!("[{}]", items.join(","))
                }
            }
        }
        let writes = array(self.wear.per_segment_writes().map(|w| w.iter().copied()));
        let seg_bits = self.cfg.segment_bytes * 8;
        let flips = array(self.wear.per_bit_flips().map(|bits| {
            bits.chunks(seg_bits)
                .map(|seg| seg.iter().map(|&b| b as u64).sum::<u64>())
        }));
        format!(
            "{{\"address_space\":\"physical\",\"num_segments\":{},\"segment_bytes\":{},\
             \"per_segment_writes\":{},\
             \"per_segment_flips\":{},\"max_segment_writes\":{}}}",
            self.cfg.num_segments,
            self.cfg.segment_bytes,
            writes,
            flips,
            self.wear.max_segment_writes()
        )
    }

    /// Restore wear counters from a persisted device image.
    pub fn restore_wear(&mut self, per_segment: &[u32], per_bit: &[u8]) -> Result<()> {
        self.wear
            .restore(per_segment, per_bit)
            .map_err(SimError::InvalidConfig)
    }

    /// Restore fault-model state (lifetime programmed-bit totals, worn
    /// flags, transient-draw position) from a persisted device image.
    /// The device must have been built with the matching
    /// [`crate::FaultConfig`], so the re-drawn endurance limits equal
    /// the ones the persisted totals were accumulated against.
    pub fn restore_fault(&mut self, programmed: &[u64], worn: &[bool], draws: u64) -> Result<()> {
        match &mut self.fault {
            Some(f) => f.restore_state(programmed, worn, draws),
            None => Err(SimError::InvalidConfig(
                "cannot restore fault state: device has no fault model configured".into(),
            )),
        }
    }

    /// Enable write tracing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(WriteTrace::default());
    }

    /// Take the accumulated trace, leaving tracing enabled with an empty
    /// buffer.
    pub fn take_trace(&mut self) -> Option<WriteTrace> {
        self.trace.as_mut().map(std::mem::take)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WearTracking;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_device() -> NvmDevice {
        NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(8)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn write_read_roundtrip() {
        let mut dev = small_device();
        let seg = dev.segment(3);
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        dev.write(seg, &data).unwrap();
        assert_eq!(dev.read(seg).unwrap(), &data[..]);
    }

    #[test]
    fn identical_overwrite_skips_all_lines() {
        let mut dev = small_device();
        let seg = dev.segment(0);
        let data = vec![0xABu8; 256];
        dev.write(seg, &data).unwrap();
        let r = dev.write(seg, &data).unwrap();
        assert_eq!(r.lines_written, 0);
        assert_eq!(r.lines_skipped, 4);
        assert_eq!(r.bits_flipped, 0);
    }

    #[test]
    fn single_byte_change_writes_one_line() {
        let mut dev = small_device();
        let seg = dev.segment(0);
        let mut data = vec![0u8; 256];
        dev.write(seg, &data).unwrap();
        data[100] = 0xFF; // line 1 (bytes 64..128)
        let r = dev.write(seg, &data).unwrap();
        assert_eq!(r.lines_written, 1);
        assert_eq!(r.lines_skipped, 3);
        assert_eq!(r.bits_flipped, 8);
        assert_eq!(r.bits_programmed, 8); // media DCW on by default
    }

    #[test]
    fn without_media_dcw_all_line_bits_programmed() {
        let mut dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(2)
                .media_dcw(false)
                .build()
                .unwrap(),
        );
        let seg = dev.segment(0);
        let mut data = vec![0u8; 256];
        dev.write(seg, &data).unwrap();
        data[0] = 1;
        let r = dev.write(seg, &data).unwrap();
        assert_eq!(r.bits_flipped, 1);
        assert_eq!(r.bits_programmed, 64 * 8);
    }

    #[test]
    fn partial_write_rmw_within_line() {
        let mut dev = small_device();
        let seg = dev.segment(1);
        dev.write(seg, &vec![0xFFu8; 256]).unwrap();
        // Write 4 bytes of zeros at offset 10 (inside line 0).
        let r = dev.write_at(seg, 10, &[0u8; 4]).unwrap();
        assert_eq!(r.lines_written, 1);
        assert_eq!(r.bits_flipped, 32);
        let content = dev.peek(seg);
        assert_eq!(&content[10..14], &[0, 0, 0, 0]);
        assert_eq!(content[9], 0xFF);
        assert_eq!(content[14], 0xFF);
    }

    #[test]
    fn partial_write_spanning_lines() {
        let mut dev = small_device();
        let seg = dev.segment(0);
        // Write 10 bytes straddling the line 0/1 boundary at offset 60.
        let r = dev.write_at(seg, 60, &[0xFFu8; 10]).unwrap();
        assert_eq!(r.lines_written, 2);
        assert_eq!(r.bits_flipped, 80);
    }

    #[test]
    fn out_of_range_errors() {
        let mut dev = small_device();
        assert!(dev.try_segment(8).is_err());
        assert!(dev.write(PhysicalSegment(9), &vec![0u8; 256]).is_err());
        let seg = dev.segment(0);
        assert!(matches!(
            dev.write_at(seg, 250, &[0u8; 10]),
            Err(SimError::RangeOutOfBounds { .. })
        ));
        assert!(matches!(
            dev.write(seg, &[0u8; 10]),
            Err(SimError::SizeMismatch { .. })
        ));
    }

    #[test]
    fn stats_accumulate() {
        let mut dev = small_device();
        let seg = dev.segment(0);
        dev.write(seg, &vec![0xFFu8; 256]).unwrap();
        dev.write(seg, &vec![0x00u8; 256]).unwrap();
        let s = dev.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.bits_flipped, 2 * 256 * 8);
        assert_eq!(s.bits_requested, 2 * 256 * 8);
        assert!(s.energy_pj > 0.0);
        assert!(s.latency_ns > 0.0);
        dev.reset_stats();
        assert_eq!(dev.stats().writes, 0);
    }

    #[test]
    fn swap_exchanges_contents_and_counts_flips() {
        let mut dev = small_device();
        let a = dev.segment(0);
        let b = dev.segment(1);
        dev.write(a, &vec![0xAAu8; 256]).unwrap();
        dev.write(b, &vec![0x55u8; 256]).unwrap();
        let before = dev.stats().bits_flipped;
        let r = dev.swap_segments(a, b).unwrap();
        assert_eq!(dev.peek(a), &vec![0x55u8; 256][..]);
        assert_eq!(dev.peek(b), &vec![0xAAu8; 256][..]);
        // Every bit of both segments differs -> 2 * 2048 flips.
        assert_eq!(r.bits_flipped, 2 * 256 * 8);
        assert_eq!(dev.stats().bits_flipped, before + 2 * 256 * 8);
        assert_eq!(dev.stats().swaps, 1);
    }

    #[test]
    fn swap_with_self_is_noop() {
        let mut dev = small_device();
        let a = dev.segment(0);
        let r = dev.swap_segments(a, a).unwrap();
        assert_eq!(r.bits_flipped, 0);
        assert_eq!(dev.stats().swaps, 0);
    }

    #[test]
    fn seed_and_fill_do_not_account() {
        let mut dev = small_device();
        let mut rng = StdRng::seed_from_u64(7);
        dev.fill_random(&mut rng);
        dev.seed_segment(dev.segment(0), &vec![1u8; 256]).unwrap();
        assert_eq!(dev.stats().writes, 0);
        assert_eq!(dev.stats().bits_flipped, 0);
    }

    #[test]
    fn per_bit_wear_tracked() {
        let mut dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(64)
                .num_segments(2)
                .block_bytes(64)
                .wear_tracking(WearTracking::PerBit)
                .build()
                .unwrap(),
        );
        let seg = dev.segment(1);
        let mut data = vec![0u8; 64];
        data[0] = 0b1000_0000;
        dev.write(seg, &data).unwrap();
        let flips = dev.wear().per_bit_flips().unwrap();
        // Segment 1 starts at byte 64 -> bit 512.
        assert_eq!(flips[512], 1);
        assert_eq!(flips.iter().map(|&v| v as u32).sum::<u32>(), 1);
        assert_eq!(dev.wear().per_segment_writes().unwrap()[1], 1);
    }

    #[test]
    fn set_reset_decomposition_accounted() {
        let mut dev = small_device();
        let seg = dev.segment(0);
        dev.seed_segment(seg, &vec![0b1111_0000u8; 256]).unwrap();
        let r = dev.write(seg, &vec![0b0000_1111u8; 256]).unwrap();
        assert_eq!(r.bits_set, 256 * 4);
        assert_eq!(r.bits_reset, 256 * 4);
        assert_eq!(r.bits_set + r.bits_reset, r.bits_flipped);
        assert_eq!(dev.stats().bits_set, 256 * 4);
        assert_eq!(dev.stats().bits_reset, 256 * 4);
    }

    #[test]
    fn asymmetric_pcm_prices_reset_higher() {
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(2)
            .block_bytes(64)
            .energy(crate::energy::EnergyParams::asymmetric_pcm())
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let seg = dev.segment(0);
        // All-SET write (0x00 -> 0xFF).
        let set_heavy = dev.write(seg, &[0xFFu8; 64]).unwrap();
        // All-RESET write (0xFF -> 0x00).
        let reset_heavy = dev.write(seg, &[0x00u8; 64]).unwrap();
        assert_eq!(set_heavy.bits_flipped, reset_heavy.bits_flipped);
        assert!(
            reset_heavy.energy_pj > set_heavy.energy_pj * 1.5,
            "reset {} vs set {}",
            reset_heavy.energy_pj,
            set_heavy.energy_pj
        );
    }

    #[test]
    fn trace_records_writes() {
        let mut dev = small_device();
        dev.enable_trace();
        let seg = dev.segment(2);
        dev.write(seg, &vec![0xFFu8; 256]).unwrap();
        let trace = dev.take_trace().unwrap();
        assert_eq!(trace.events().len(), 1);
        assert_eq!(trace.events()[0].segment, 2);
        assert_eq!(trace.events()[0].bits_flipped, 2048);
        // Buffer drained but tracing still on.
        dev.write(seg, &vec![0x00u8; 256]).unwrap();
        assert_eq!(dev.take_trace().unwrap().events().len(), 1);
    }

    #[test]
    fn zero_length_write_counts_request_only() {
        let mut dev = small_device();
        let seg = dev.segment(0);
        let r = dev.write_at(seg, 0, &[]).unwrap();
        assert_eq!(r.lines_written, 0);
        assert_eq!(dev.stats().writes, 1);
        assert_eq!(dev.stats().bits_requested, 0);
    }

    fn faulty_device(endurance_bits: u64, transient_rate: f64) -> NvmDevice {
        NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(8)
                .fault(crate::fault::FaultConfig {
                    seed: 42,
                    endurance_bits,
                    endurance_shape: 3.0,
                    transient_rate,
                })
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn segment_wears_out_after_endurance_budget() {
        // ~2 full alternating rewrites (2048 programmed bits each).
        let mut dev = faulty_device(4096, 0.0);
        let seg = dev.segment(0);
        let mut writes = 0u64;
        let death = loop {
            let pattern = if writes % 2 == 0 { 0xFFu8 } else { 0x00u8 };
            match dev.write(seg, &vec![pattern; 256]) {
                Ok(_) => writes += 1,
                Err(e) => break e,
            }
            assert!(writes < 100, "segment never wore out");
        };
        let SimError::SegmentWornOut {
            segment,
            stuck_bits,
        } = death
        else {
            panic!("expected SegmentWornOut, got {death}");
        };
        assert_eq!(segment, 0);
        assert!(stuck_bits > 0, "dying write must corrupt verify");
        assert!(dev.is_worn_out(seg));
        assert_eq!(dev.worn_out_count(), 1);

        // Content is frozen: further writes are rejected with no pulses
        // and no mutation.
        let frozen = dev.peek(seg).to_vec();
        let stats_before = dev.stats().clone();
        let err = dev.write(seg, &vec![0xA5u8; 256]).unwrap_err();
        assert!(matches!(
            err,
            SimError::SegmentWornOut {
                segment: 0,
                stuck_bits: 0
            }
        ));
        assert_eq!(dev.peek(seg), &frozen[..]);
        assert_eq!(dev.stats(), &stats_before, "rejection accounts nothing");
        let fs = dev.fault_stats();
        assert_eq!(fs.worn_out_segments, 1);
        assert_eq!(fs.worn_out_rejections, 1);

        // Other segments still serve writes.
        dev.write(dev.segment(1), &vec![0x11u8; 256]).unwrap();
    }

    #[test]
    fn fewer_programmed_bits_extend_lifetime() {
        // Identical endurance seed; the heavy workload flips every bit
        // each write, the light one a single byte. Lifetime is budgeted
        // in programmed bits, so light writes survive far longer.
        let writes_to_death = |light: bool| -> u64 {
            let mut dev = faulty_device(1 << 16, 0.0);
            let seg = dev.segment(0);
            let mut n = 0u64;
            loop {
                let pattern = if light {
                    let mut d = vec![0u8; 256];
                    d[0] = (n % 2) as u8;
                    d
                } else if n % 2 == 0 {
                    vec![0xFFu8; 256]
                } else {
                    vec![0x00u8; 256]
                };
                if dev.write(seg, &pattern).is_err() {
                    return n;
                }
                n += 1;
                assert!(n < 1_000_000);
            }
        };
        let heavy = writes_to_death(false);
        let light = writes_to_death(true);
        assert!(
            light > heavy * 10,
            "light {light} writes vs heavy {heavy} writes"
        );
    }

    #[test]
    fn transient_failure_reports_bits_and_retry_converges() {
        let mut dev = faulty_device(u64::MAX >> 8, 0.9);
        let seg = dev.segment(2);
        let data: Vec<u8> = (0..256).map(|i| i as u8).collect();
        let mut failures = 0u64;
        let mut attempts = 0u64;
        loop {
            attempts += 1;
            match dev.write(seg, &data) {
                Ok(_) => break,
                Err(SimError::WriteFailed {
                    segment,
                    failed_bits,
                }) => {
                    assert_eq!(segment, 2);
                    assert!(failed_bits > 0);
                    failures += 1;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
            assert!(attempts < 1000, "retry never converged");
        }
        // At 90% failure rate some attempts must have failed, and each
        // retry programs only the remaining differing bits.
        assert!(failures > 0);
        assert_eq!(dev.peek(seg), &data[..], "content converges after retry");
        assert_eq!(dev.fault_stats().transient_failures, failures);
    }

    #[test]
    fn fault_free_config_is_bitwise_inert() {
        // A fault config that can never fire must leave stats and
        // content identical to a fault-free device on the same workload.
        let mut plain = small_device();
        let mut guarded = faulty_device(u64::MAX >> 8, 0.0);
        let mut rng = StdRng::seed_from_u64(99);
        for i in 0..200u64 {
            let seg = PhysicalSegment((i % 8) as usize);
            let mut data = vec![0u8; 256];
            rng.fill(&mut data[..]);
            let a = plain.write(seg, &data).unwrap();
            let b = guarded.write(seg, &data).unwrap();
            assert_eq!(a, b);
        }
        assert_eq!(plain.stats(), guarded.stats());
        assert_eq!(
            plain.peek(PhysicalSegment(3)),
            guarded.peek(PhysicalSegment(3))
        );
        assert_eq!(guarded.fault_stats(), crate::fault::FaultStats::default());
    }

    #[test]
    fn sub_line_segments_work() {
        let mut dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(16)
                .cache_line_bytes(64)
                .block_bytes(64)
                .num_segments(4)
                .build()
                .unwrap(),
        );
        let seg = dev.segment(0);
        let r = dev.write(seg, &[0xFFu8; 16]).unwrap();
        assert_eq!(r.lines_written, 1);
        assert_eq!(r.bits_flipped, 128);
    }
}
