//! Lightweight write traces for offline analysis (time-series figures).

use serde::{Deserialize, Serialize};

/// One recorded write.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Physical segment written.
    pub segment: usize,
    /// Bits flipped by the write.
    pub bits_flipped: u64,
    /// Cache lines transferred.
    pub lines_written: u64,
}

/// An append-only buffer of [`TraceEvent`]s.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WriteTrace {
    events: Vec<TraceEvent>,
}

impl WriteTrace {
    /// Append an event.
    pub fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    /// All recorded events in order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Moving average of `bits_flipped` with the given window — used to
    /// render the paper's Figure 17-style time series.
    pub fn flips_moving_avg(&self, window: usize) -> Vec<f64> {
        if window == 0 || self.events.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.events.len());
        let mut sum = 0u64;
        for (i, ev) in self.events.iter().enumerate() {
            sum += ev.bits_flipped;
            if i >= window {
                sum -= self.events[i - window].bits_flipped;
            }
            let n = (i + 1).min(window) as f64;
            out.push(sum as f64 / n);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(flips: u64) -> TraceEvent {
        TraceEvent {
            segment: 0,
            bits_flipped: flips,
            lines_written: 1,
        }
    }

    #[test]
    fn moving_average_smooths() {
        let mut t = WriteTrace::default();
        for f in [10, 20, 30, 40] {
            t.record(ev(f));
        }
        let avg = t.flips_moving_avg(2);
        assert_eq!(avg, vec![10.0, 15.0, 25.0, 35.0]);
    }

    #[test]
    fn zero_window_returns_empty() {
        let mut t = WriteTrace::default();
        t.record(ev(1));
        assert!(t.flips_moving_avg(0).is_empty());
    }

    #[test]
    fn window_larger_than_trace() {
        let mut t = WriteTrace::default();
        t.record(ev(4));
        t.record(ev(8));
        assert_eq!(t.flips_moving_avg(10), vec![4.0, 6.0]);
    }
}
