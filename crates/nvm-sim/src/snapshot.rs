//! Device image persistence: save and restore the simulated NVM's
//! contents, **wear state and fault state** across process restarts —
//! the property that makes persistent memory persistent. Examples and
//! long-running experiments use this to resume pools without replaying
//! history; the `e2nvm-persist` crate embeds these images in its
//! full-system snapshots.
//!
//! Format (little-endian): magic `E2DV`, version, geometry, flags,
//! energy/latency parameters, pool bytes, the optional wear counter
//! arrays, then (version ≥ 2) the optional fault-model section: its
//! config, the transient-draw position, and the per-segment lifetime
//! programmed-bit totals and worn flags. Endurance *limits* are not
//! stored — they are re-drawn deterministically from the persisted
//! config. Cumulative [`crate::DeviceStats`] are *not* stored either:
//! they are measurement state, not device state. Version-1 images
//! (no fault section) are still read.

use crate::addr::PhysicalSegment;
use crate::config::{DeviceConfig, WearTracking};
use crate::device::NvmDevice;
use crate::energy::EnergyParams;
use crate::error::{Result, SimError};
use crate::fault::FaultConfig;
use crate::latency::LatencyParams;
use std::io::{Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"E2DV";
const VERSION: u16 = 2;

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SimError::InvalidConfig("device image truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
}

/// Serialize a device (config + contents + wear) into a byte image.
pub fn to_image(device: &NvmDevice) -> Vec<u8> {
    let cfg = device.config();
    let mut buf = Vec::with_capacity(cfg.pool_bytes() + 256);
    buf.extend_from_slice(MAGIC);
    put_u16(&mut buf, VERSION);
    put_u64(&mut buf, cfg.segment_bytes as u64);
    put_u64(&mut buf, cfg.num_segments as u64);
    put_u64(&mut buf, cfg.cache_line_bytes as u64);
    put_u64(&mut buf, cfg.block_bytes as u64);
    buf.push(u8::from(cfg.media_dcw));
    buf.push(match cfg.wear_tracking {
        WearTracking::None => 0,
        WearTracking::PerSegment => 1,
        WearTracking::PerBit => 2,
    });
    for v in [
        cfg.energy.ctrl_pj,
        cfg.energy.line_pj,
        cfg.energy.bit_flip_pj,
        cfg.energy.set_pj,
        cfg.energy.reset_pj,
        cfg.energy.read_line_pj,
        cfg.energy.dram_pool_op_pj,
        cfg.energy.cpu_mac_pj,
        cfg.latency.write_base_ns,
        cfg.latency.write_line_ns,
        cfg.latency.read_base_ns,
        cfg.latency.read_line_ns,
    ] {
        put_f64(&mut buf, v);
    }
    // Pool contents.
    for seg in device.segments() {
        buf.extend_from_slice(device.peek(seg));
    }
    // Wear counters.
    match device.wear().per_segment_writes() {
        Some(w) => {
            put_u64(&mut buf, w.len() as u64);
            for &c in w {
                buf.extend_from_slice(&c.to_le_bytes());
            }
        }
        None => put_u64(&mut buf, 0),
    }
    match device.wear().per_bit_flips() {
        Some(b) => {
            put_u64(&mut buf, b.len() as u64);
            buf.extend_from_slice(b);
        }
        None => put_u64(&mut buf, 0),
    }
    // Fault-model section (version 2): config + mutable state. Limits
    // are re-drawn from the config on restore.
    match device.fault_state() {
        Some(f) => {
            buf.push(1);
            let fc = f.config();
            put_u64(&mut buf, fc.seed);
            put_u64(&mut buf, fc.endurance_bits);
            put_f64(&mut buf, fc.endurance_shape);
            put_f64(&mut buf, fc.transient_rate);
            put_u64(&mut buf, f.draw_count());
            put_u64(&mut buf, f.programmed_totals().len() as u64);
            for &p in f.programmed_totals() {
                put_u64(&mut buf, p);
            }
            for &w in f.worn_flags() {
                buf.push(u8::from(w));
            }
        }
        None => buf.push(0),
    }
    buf
}

/// Rebuild a device from an image produced by [`to_image`] (current or
/// version-1, fault-section-free).
pub fn from_image(image: &[u8]) -> Result<NvmDevice> {
    let mut c = Cursor { buf: image, pos: 0 };
    if c.take(4)? != MAGIC {
        return Err(SimError::InvalidConfig("not a device image".into()));
    }
    let version = c.u16()?;
    if !(1..=VERSION).contains(&version) {
        return Err(SimError::InvalidConfig(format!(
            "unknown device image version {version}"
        )));
    }
    let segment_bytes = c.u64()? as usize;
    let num_segments = c.u64()? as usize;
    let cache_line_bytes = c.u64()? as usize;
    let block_bytes = c.u64()? as usize;
    let media_dcw = c.take(1)?[0] != 0;
    let wear_tracking = match c.take(1)?[0] {
        0 => WearTracking::None,
        1 => WearTracking::PerSegment,
        2 => WearTracking::PerBit,
        t => {
            return Err(SimError::InvalidConfig(format!(
                "unknown wear tracking tag {t}"
            )))
        }
    };
    let mut f = [0f64; 12];
    for v in &mut f {
        *v = c.f64()?;
    }
    let pool_bytes = num_segments
        .checked_mul(segment_bytes)
        .ok_or_else(|| SimError::InvalidConfig("device image geometry overflows".into()))?;
    let contents = c.take(pool_bytes)?;
    // Wear counters.
    let n_seg_counters = c.u64()? as usize;
    let mut seg_counters = Vec::with_capacity(n_seg_counters.min(1 << 20));
    for _ in 0..n_seg_counters {
        seg_counters.push(u32::from_le_bytes(c.take(4)?.try_into().expect("4")));
    }
    let n_bit_counters = c.u64()? as usize;
    let bit_counters = c.take(n_bit_counters)?.to_vec();
    // Fault-model section (absent in version-1 images).
    let fault = if version >= 2 && c.take(1)?[0] != 0 {
        let cfg = FaultConfig {
            seed: c.u64()?,
            endurance_bits: c.u64()?,
            endurance_shape: c.f64()?,
            transient_rate: c.f64()?,
        };
        cfg.validate()?;
        let draws = c.u64()?;
        let n = c.u64()? as usize;
        if n != num_segments {
            return Err(SimError::InvalidConfig(format!(
                "fault state covers {n} segments but the device has {num_segments}"
            )));
        }
        let mut programmed = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            programmed.push(c.u64()?);
        }
        let worn: Vec<bool> = c.take(n)?.iter().map(|&b| b != 0).collect();
        Some((cfg, draws, programmed, worn))
    } else {
        None
    };
    if c.pos != image.len() {
        return Err(SimError::InvalidConfig(
            "trailing bytes after device image".into(),
        ));
    }
    let mut builder = DeviceConfig::builder()
        .segment_bytes(segment_bytes)
        .num_segments(num_segments)
        .cache_line_bytes(cache_line_bytes)
        .block_bytes(block_bytes)
        .media_dcw(media_dcw)
        .wear_tracking(wear_tracking)
        .energy(EnergyParams {
            ctrl_pj: f[0],
            line_pj: f[1],
            bit_flip_pj: f[2],
            set_pj: f[3],
            reset_pj: f[4],
            read_line_pj: f[5],
            dram_pool_op_pj: f[6],
            cpu_mac_pj: f[7],
        })
        .latency(LatencyParams {
            write_base_ns: f[8],
            write_line_ns: f[9],
            read_base_ns: f[10],
            read_line_ns: f[11],
        });
    if let Some((fc, _, _, _)) = &fault {
        builder = builder.fault(fc.clone());
    }
    let mut device = NvmDevice::new(builder.build()?);
    for i in 0..num_segments {
        device.seed_segment(
            PhysicalSegment(i),
            &contents[i * segment_bytes..(i + 1) * segment_bytes],
        )?;
    }
    device.restore_wear(&seg_counters, &bit_counters)?;
    if let Some((_, draws, programmed, worn)) = fault {
        device.restore_fault(&programmed, &worn, draws)?;
    }
    Ok(device)
}

/// Save a device image to a file.
#[deprecated(
    note = "use the unified persistence facade: `e2nvm_persist::save_device` \
            (re-exported as `e2nvm::persist::save_device`)"
)]
pub fn save(device: &NvmDevice, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut file = std::fs::File::create(path)?;
    file.write_all(&to_image(device))
}

/// Load a device image from a file.
#[deprecated(
    note = "use the unified persistence facade: `e2nvm_persist::load_device` \
            (re-exported as `e2nvm::persist::load_device`)"
)]
pub fn load(path: impl AsRef<Path>) -> std::io::Result<NvmDevice> {
    let mut buf = Vec::new();
    std::fs::File::open(path)?.read_to_end(&mut buf)?;
    from_image(&buf).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn worn_device() -> NvmDevice {
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(8)
            .block_bytes(64)
            .wear_tracking(WearTracking::PerBit)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        let mut rng = StdRng::seed_from_u64(1);
        dev.fill_random(&mut rng);
        for round in 0..5u8 {
            for i in 0..8 {
                dev.write(PhysicalSegment(i), &[round.wrapping_mul(37); 64])
                    .unwrap();
            }
        }
        dev
    }

    #[test]
    fn image_roundtrip_preserves_contents_and_wear() {
        let dev = worn_device();
        let image = to_image(&dev);
        let restored = from_image(&image).unwrap();
        for i in 0..8 {
            assert_eq!(
                restored.peek(PhysicalSegment(i)),
                dev.peek(PhysicalSegment(i))
            );
        }
        assert_eq!(
            restored.wear().per_segment_writes(),
            dev.wear().per_segment_writes()
        );
        assert_eq!(restored.wear().per_bit_flips(), dev.wear().per_bit_flips());
        assert_eq!(restored.config(), dev.config());
        // Stats are measurement state: reset on restore.
        assert_eq!(restored.stats().writes, 0);
    }

    #[test]
    #[allow(deprecated)]
    fn file_roundtrip() {
        let dev = worn_device();
        let path = std::env::temp_dir().join("e2nvm_device_image_test.bin");
        save(&dev, &path).unwrap();
        let restored = load(&path).unwrap();
        assert_eq!(
            restored.peek(PhysicalSegment(3)),
            dev.peek(PhysicalSegment(3))
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_state_roundtrips_through_image() {
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(4)
            .block_bytes(64)
            .fault(crate::fault::FaultConfig {
                seed: 7,
                endurance_bits: 2048,
                endurance_shape: 3.0,
                transient_rate: 0.0,
            })
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        // Wear segment 0 out; accumulate partial wear on segment 1.
        loop {
            let a = dev.write(PhysicalSegment(0), &[0xFFu8; 64]);
            let b = dev.write(PhysicalSegment(0), &[0x00u8; 64]);
            if a.is_err() || b.is_err() {
                break;
            }
        }
        dev.write(PhysicalSegment(1), &[0xA5u8; 64]).unwrap();
        let orig = dev.fault_state().unwrap();
        let restored = from_image(&to_image(&dev)).unwrap();
        let f = restored.fault_state().unwrap();
        assert_eq!(f.config(), orig.config());
        assert_eq!(f.programmed_totals(), orig.programmed_totals());
        assert_eq!(f.worn_flags(), orig.worn_flags());
        assert_eq!(f.draw_count(), orig.draw_count());
        assert!(restored.is_worn_out(PhysicalSegment(0)));
        assert_eq!(restored.worn_out_count(), 1);
        // Worn segments keep rejecting writes after restore.
        assert!(restored
            .clone()
            .write(PhysicalSegment(0), &[0x11u8; 64])
            .is_err());
    }

    #[test]
    fn v1_images_without_fault_section_still_load() {
        let dev = worn_device();
        let mut image = to_image(&dev);
        // Rewrite the version to 1 and drop the trailing fault tag.
        image[4..6].copy_from_slice(&1u16.to_le_bytes());
        assert_eq!(image.pop(), Some(0), "fault tag of a faultless device");
        let restored = from_image(&image).unwrap();
        assert_eq!(
            restored.peek(PhysicalSegment(3)),
            dev.peek(PhysicalSegment(3))
        );
        assert!(restored.fault_state().is_none());
    }

    #[test]
    fn corrupt_images_rejected() {
        let dev = worn_device();
        let image = to_image(&dev);
        // Bad magic.
        let mut bad = image.clone();
        bad[0] = b'X';
        assert!(from_image(&bad).is_err());
        // Truncated.
        assert!(from_image(&image[..image.len() / 2]).is_err());
        // Trailing garbage.
        let mut long = image.clone();
        long.push(7);
        assert!(from_image(&long).is_err());
    }

    #[test]
    fn no_wear_tracking_roundtrip() {
        let cfg = DeviceConfig::builder()
            .segment_bytes(32)
            .num_segments(4)
            .block_bytes(64)
            .cache_line_bytes(64)
            .build()
            .unwrap();
        let mut dev = NvmDevice::new(cfg);
        dev.seed_segment(PhysicalSegment(2), &[9u8; 32]).unwrap();
        let restored = from_image(&to_image(&dev)).unwrap();
        assert_eq!(restored.peek(PhysicalSegment(2)), &[9u8; 32]);
        assert!(restored.wear().per_segment_writes().is_none());
    }
}
