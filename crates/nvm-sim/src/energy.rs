//! Energy model.
//!
//! The per-write device energy is
//!
//! ```text
//! E_write = E_ctrl + N_lines_written * E_line + N_bits_programmed * E_bit
//! ```
//!
//! with `E_bit = 50 pJ` per the paper's §1 ("flipping an individual bit
//! in PCM ... requires around 50 pJ/b"). `E_ctrl` and `E_line` model the
//! fixed controller/protocol cost and the per-line DDR-T transfer cost.
//! The defaults are calibrated so that overwriting a 256 B block with
//! 100 %-different content costs ≈2.3× an identical-content overwrite —
//! i.e. writing similar content saves ≈56 %, the headline number of the
//! paper's Figure 1.
//!
//! Host-side (DRAM/CPU) energy for model training, prediction, and index
//! maintenance is modeled with per-operation constants, integrated by
//! [`crate::EnergyMeter`]. Absolute joules are not meaningful across
//! machines; only relative magnitudes matter for the reproduced figures.

use serde::{Deserialize, Serialize};

/// Labels for energy accounting categories, mirroring the component
/// breakdown reported by RAPL-style profilers in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// Programming pulses + line transfers + controller overhead on NVM.
    NvmWrite,
    /// NVM read path.
    NvmRead,
    /// DRAM traffic for the dynamic address pool and indexes.
    Dram,
    /// CPU cost of model training / retraining.
    CpuTrain,
    /// CPU cost of per-write model prediction.
    CpuPredict,
    /// Anything else (harness bookkeeping, wear-leveling swaps are
    /// accounted as NvmWrite + NvmRead).
    Other,
}

impl EnergyCategory {
    /// All categories, in display order.
    pub const ALL: [EnergyCategory; 6] = [
        EnergyCategory::NvmWrite,
        EnergyCategory::NvmRead,
        EnergyCategory::Dram,
        EnergyCategory::CpuTrain,
        EnergyCategory::CpuPredict,
        EnergyCategory::Other,
    ];

    /// Short human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            EnergyCategory::NvmWrite => "nvm_write",
            EnergyCategory::NvmRead => "nvm_read",
            EnergyCategory::Dram => "dram",
            EnergyCategory::CpuTrain => "cpu_train",
            EnergyCategory::CpuPredict => "cpu_predict",
            EnergyCategory::Other => "other",
        }
    }
}

/// Parameters of the energy model, all in picojoules.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// Fixed controller/protocol cost per write request.
    pub ctrl_pj: f64,
    /// Cost per cache line actually transferred and written to media.
    pub line_pj: f64,
    /// Cost per bit programming pulse (flip). PCM ≈ 50 pJ/b. Used for
    /// non-differential writes and as the flat price when the
    /// directional prices below are equal.
    pub bit_flip_pj: f64,
    /// Cost of a 0→1 (SET, crystallize) pulse. PCM SET pulses are long
    /// but low-current.
    pub set_pj: f64,
    /// Cost of a 1→0 (RESET, melt-quench) pulse. PCM RESET pulses are
    /// short but high-current — the expensive direction.
    pub reset_pj: f64,
    /// Cost per cache line read from media.
    pub read_line_pj: f64,
    /// DRAM cost per address-pool operation (push/pop on a free list).
    pub dram_pool_op_pj: f64,
    /// CPU cost per multiply-accumulate during training (used to convert
    /// model FLOP counts into energy for Figs 8, 16, 18).
    pub cpu_mac_pj: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        Self {
            ctrl_pj: 180.0,
            line_pj: 220.0,
            bit_flip_pj: 50.0,
            set_pj: 50.0,
            reset_pj: 50.0,
            read_line_pj: 55.0,
            dram_pool_op_pj: 30.0,
            cpu_mac_pj: 0.015,
        }
    }
}

impl EnergyParams {
    /// System-level calibration for reproducing the paper's Figure 1:
    /// on the real Optane testbed, even a zero-flip overwrite pays for
    /// the PMDK transaction (undo logging), DDR-T protocol, and
    /// controller DRAM — so the flip-dependent share of a full 256 B
    /// rewrite is bounded, yielding the paper's ≈56 % maximum saving.
    /// `ctrl_pj` carries that fixed cost here. The [`Default`] profile
    /// is media-level (used by the bit-flip comparisons, which the
    /// paper itself runs on an emulated device).
    pub fn system_level() -> Self {
        Self {
            ctrl_pj: 81_000.0,
            ..Self::default()
        }
    }

    /// Asymmetric-PCM calibration: RESET (1→0) pulses cost ≈2.3× SET
    /// pulses (melt-quench current), averaging to the same 50 pJ/b on
    /// balanced data. Use with content that skews one direction to see
    /// the asymmetry.
    pub fn asymmetric_pcm() -> Self {
        Self {
            set_pj: 30.0,
            reset_pj: 70.0,
            ..Self::default()
        }
    }

    /// Energy of one write given accounting numbers from the device.
    #[inline]
    pub fn write_energy_pj(&self, lines_written: u64, bits_programmed: u64) -> f64 {
        self.ctrl_pj
            + lines_written as f64 * self.line_pj
            + bits_programmed as f64 * self.bit_flip_pj
    }

    /// Directional variant: SET and RESET pulses priced separately
    /// (used by the device when media DCW isolates the flip
    /// directions).
    #[inline]
    pub fn write_energy_directional_pj(&self, lines_written: u64, set: u64, reset: u64) -> f64 {
        self.ctrl_pj
            + lines_written as f64 * self.line_pj
            + set as f64 * self.set_pj
            + reset as f64 * self.reset_pj
    }

    /// Energy of reading `lines` cache lines.
    #[inline]
    pub fn read_energy_pj(&self, lines: u64) -> f64 {
        self.ctrl_pj * 0.25 + lines as f64 * self.read_line_pj
    }

    /// CPU energy of `macs` multiply-accumulates.
    #[inline]
    pub fn cpu_energy_pj(&self, macs: u64) -> f64 {
        macs as f64 * self.cpu_mac_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_overwrite_much_cheaper_than_full_rewrite() {
        // Figure 1 calibration: a 256 B block is 4 lines of 64 B. A
        // random overwrite flips ~half the bits (1024 of 2048); an
        // identical overwrite writes nothing.
        let p = EnergyParams::default();
        let full = p.write_energy_pj(4, 1024);
        let same = p.write_energy_pj(0, 0);
        let saving = 1.0 - same / full;
        assert!(
            (0.95..1.0).contains(&saving),
            "identical overwrite should be nearly free, saving={saving}"
        );
    }

    #[test]
    fn fig1_56_percent_saving_shape() {
        // The real-device Figure 1 measures energy per *round* where each
        // round re-initializes and then overwrites with x%-different
        // content; the overwrite includes the fixed cost of issuing the
        // writes. Compare a 0%-different overwrite (all lines skipped,
        // just controller cost) against 100% different.
        let p = EnergyParams::default();
        // With 0% difference all 4 lines are identical and skipped.
        let e0 = p.write_energy_pj(0, 0);
        let e100 = p.write_energy_pj(4, 1024);
        assert!(e0 < e100 * 0.5, "similar content must save >50% energy");
    }

    #[test]
    fn write_energy_monotone_in_flips_and_lines() {
        let p = EnergyParams::default();
        assert!(p.write_energy_pj(4, 100) < p.write_energy_pj(4, 200));
        assert!(p.write_energy_pj(2, 100) < p.write_energy_pj(4, 100));
    }

    #[test]
    fn category_names_unique() {
        let names: std::collections::HashSet<_> =
            EnergyCategory::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), EnergyCategory::ALL.len());
    }
}
