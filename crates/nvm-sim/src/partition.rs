//! Partitioning a device's segment space into disjoint shards.
//!
//! The sharded serving layer in `e2nvm-core` gives every shard its own
//! placement state (model, address pool, index) over a *disjoint* slice
//! of the global segment space. This module provides the slicing: a
//! [`SegmentRange`] names a shard's contiguous run of global segment
//! ids, and [`partition_device`] materialises one independent
//! [`NvmDevice`] per shard so that device accounting (flips, energy,
//! latency, wear) stays per-shard and can be re-aggregated with
//! [`DeviceStats::merge`](crate::DeviceStats::merge).
//!
//! Partition math is **logical-space only**: a [`SegmentRange`]
//! translates between global and shard-local [`LogicalSegment`]s, and
//! each shard's controller owns its own logical→physical remap below
//! that. The two layers must not be conflated — a shard's *physical*
//! slot count always equals its range length, but its *logical*
//! capacity can be smaller (start-gap reserves one slot), so sizing
//! software structures off `range.len` instead of
//! [`MemoryController::num_segments`] is exactly the logical/physical
//! mixing bug the typed ids exist to prevent.

use crate::addr::LogicalSegment;
use crate::config::DeviceConfig;
use crate::controller::MemoryController;
use crate::device::NvmDevice;
use crate::error::{Result, SimError};

/// A contiguous run of global segment ids owned by one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentRange {
    /// First global segment id in the range.
    pub start: usize,
    /// Number of segments in the range.
    pub len: usize,
}

impl SegmentRange {
    /// Whether a global logical segment id falls in this range.
    #[inline]
    pub fn contains(&self, global: LogicalSegment) -> bool {
        let i = global.index();
        i >= self.start && i < self.start + self.len
    }

    /// Translate a shard-local logical segment id to its global id.
    ///
    /// # Panics
    /// Panics if `local` is out of range.
    #[inline]
    pub fn to_global(&self, local: LogicalSegment) -> LogicalSegment {
        assert!(local.index() < self.len, "local segment out of range");
        LogicalSegment(self.start + local.index())
    }

    /// Translate a global logical segment id to a shard-local one, if
    /// owned.
    #[inline]
    pub fn to_local(&self, global: LogicalSegment) -> Option<LogicalSegment> {
        self.contains(global)
            .then(|| LogicalSegment(global.index() - self.start))
    }

    /// One-past-the-end global segment id.
    #[inline]
    pub fn end(&self) -> usize {
        self.start + self.len
    }
}

/// Split `total` segments into `shards` contiguous disjoint ranges that
/// cover the whole space. The remainder is spread over the first
/// `total % shards` ranges, so range sizes differ by at most one.
pub fn partition_segments(total: usize, shards: usize) -> Result<Vec<SegmentRange>> {
    if shards == 0 {
        return Err(SimError::InvalidConfig("shards must be >= 1".into()));
    }
    if total < shards {
        return Err(SimError::InvalidConfig(format!(
            "cannot split {total} segments into {shards} shards"
        )));
    }
    let base = total / shards;
    let extra = total % shards;
    let mut out = Vec::with_capacity(shards);
    let mut start = 0;
    for i in 0..shards {
        let len = base + usize::from(i < extra);
        out.push(SegmentRange { start, len });
        start += len;
    }
    debug_assert_eq!(start, total);
    Ok(out)
}

/// Build one independent device per shard, each sized to its range of
/// the global segment space described by `cfg`. Geometry, write
/// semantics, and the energy/latency/wear parameters are inherited from
/// `cfg`; only `num_segments` differs.
pub fn partition_device(
    cfg: &DeviceConfig,
    shards: usize,
) -> Result<Vec<(SegmentRange, NvmDevice)>> {
    let ranges = partition_segments(cfg.num_segments, shards)?;
    ranges
        .into_iter()
        .map(|range| {
            let mut shard_cfg = cfg.clone();
            shard_cfg.num_segments = range.len;
            shard_cfg.validate()?;
            Ok((range, NvmDevice::new(shard_cfg)))
        })
        .collect()
}

/// Like [`partition_device`], but wraps each shard device in a
/// pass-through [`MemoryController`] (no wear leveling) — the common
/// case for the sharded serving engine, where interference experiments
/// construct their own controllers.
pub fn partition_controllers(
    cfg: &DeviceConfig,
    shards: usize,
) -> Result<Vec<(SegmentRange, MemoryController)>> {
    partition_controllers_with(cfg, shards, MemoryController::without_wear_leveling)
}

/// Like [`partition_controllers`], but each shard device is wrapped by
/// `make` — e.g. `|dev| MemoryController::with_start_gap(dev, 64)` for
/// a wear-leveled sharded stack. Note a wear-leveling controller may
/// expose *fewer* logical segments than the shard's physical range
/// (start-gap reserves one slot); size software structures off
/// [`MemoryController::num_segments`], never off `range.len`.
pub fn partition_controllers_with(
    cfg: &DeviceConfig,
    shards: usize,
    make: impl Fn(NvmDevice) -> MemoryController,
) -> Result<Vec<(SegmentRange, MemoryController)>> {
    Ok(partition_device(cfg, shards)?
        .into_iter()
        .map(|(range, dev)| (range, make(dev)))
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::PhysicalSegment;
    use crate::stats::DeviceStats;

    #[test]
    fn ranges_are_disjoint_and_cover() {
        for (total, shards) in [(16, 1), (16, 4), (17, 4), (19, 8), (8, 8)] {
            let ranges = partition_segments(total, shards).unwrap();
            assert_eq!(ranges.len(), shards);
            assert_eq!(ranges[0].start, 0);
            for pair in ranges.windows(2) {
                assert_eq!(pair[0].end(), pair[1].start, "gap or overlap");
            }
            assert_eq!(ranges.last().unwrap().end(), total);
            let (min, max) = ranges.iter().fold((usize::MAX, 0), |(lo, hi), r| {
                (lo.min(r.len), hi.max(r.len))
            });
            assert!(max - min <= 1, "uneven split: {min}..{max}");
        }
    }

    #[test]
    fn degenerate_partitions_rejected() {
        assert!(partition_segments(4, 0).is_err());
        assert!(partition_segments(3, 4).is_err());
    }

    #[test]
    fn local_global_translation_roundtrips() {
        let ranges = partition_segments(10, 3).unwrap();
        let r = ranges[1];
        for i in 0..r.len {
            let global = r.to_global(LogicalSegment(i));
            assert!(r.contains(global));
            assert_eq!(r.to_local(global), Some(LogicalSegment(i)));
        }
        assert!(!r.contains(LogicalSegment(0)));
        assert_eq!(r.to_local(LogicalSegment(0)), None);
    }

    #[test]
    fn shard_devices_are_independent_and_stats_merge() {
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(10)
            .build()
            .unwrap();
        let mut shards = partition_device(&cfg, 3).unwrap();
        assert_eq!(
            shards.iter().map(|(r, _)| r.len).sum::<usize>(),
            cfg.num_segments
        );
        // Write to shard 0 only; shard 1 sees no traffic.
        let (_, dev0) = &mut shards[0];
        dev0.write(PhysicalSegment(0), &[0xFF; 64]).unwrap();
        assert_eq!(shards[0].1.stats().writes, 1);
        assert_eq!(shards[1].1.stats().writes, 0);
        // Merged stats equal the sum over shards.
        let mut merged = DeviceStats::default();
        for (_, dev) in &shards {
            merged.merge(dev.stats());
        }
        assert_eq!(merged.writes, 1);
        assert_eq!(merged.bits_flipped, 64 * 8);
    }

    #[test]
    fn partition_controllers_expose_full_capacity() {
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(12)
            .build()
            .unwrap();
        let shards = partition_controllers(&cfg, 4).unwrap();
        for (range, mc) in &shards {
            assert_eq!(mc.num_segments(), range.len);
        }
    }

    #[test]
    fn wear_leveled_shards_reserve_gap_capacity() {
        // Regression pin for the logical/physical mixing bug: under
        // start-gap a shard's logical capacity is one less than its
        // physical range, and shard-local logical ids stay valid across
        // relocations.
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(12)
            .build()
            .unwrap();
        let mut shards =
            partition_controllers_with(&cfg, 3, |dev| MemoryController::with_start_gap(dev, 1))
                .unwrap();
        for (range, mc) in &mut shards {
            assert_eq!(range.len, 4, "physical slots per shard");
            assert_eq!(mc.num_segments(), 3, "logical capacity excludes the gap");
            for round in 0..10usize {
                for l in 0..mc.num_segments() {
                    mc.write(LogicalSegment(l), &[round as u8; 64]).unwrap();
                }
            }
            assert!(!mc.remap().is_identity(), "psi=1 must have rotated");
            assert!(mc.remap_is_consistent());
            // Every shard-local logical id still resolves; range-sized
            // ids (the old bug) do not.
            for l in 0..mc.num_segments() {
                assert!(mc.peek(LogicalSegment(l)).is_ok());
            }
            assert!(mc.peek(LogicalSegment(range.len - 1)).is_err());
        }
    }
}
