//! Deterministic fault injection: finite endurance and transient write
//! failures.
//!
//! Real PCM cells survive a finite number of programming pulses; the
//! paper's endurance argument is that reducing bit flips stretches that
//! budget. This module makes the budget finite so the claim becomes
//! measurable. A [`FaultModel`] attached to the device (via
//! [`crate::DeviceConfig`]'s `fault` field) tracks the cumulative
//! *programmed bits* of every segment against a per-segment limit drawn
//! from a Weibull distribution — so schemes that program fewer bits per
//! write genuinely live longer — and optionally fails a configurable
//! fraction of writes transiently, modeling cells that need a second
//! pulse.
//!
//! Everything is seeded and counter-based (a SplitMix64 stream, no
//! external RNG): the same configuration and write sequence always
//! produces the same failures, which keeps experiments and regression
//! tests reproducible.
//!
//! Semantics, enforced by [`crate::NvmDevice::write_at`]:
//!
//! * A write whose accounting pushes a segment past its endurance limit
//!   completes its programming pulses, then the segment **wears out**:
//!   a deterministic subset of the just-programmed bits sticks at the
//!   wrong value and the write returns
//!   [`crate::SimError::SegmentWornOut`] with the stuck-bit count — the
//!   program-and-verify step caught the corruption.
//! * Every later write to a worn-out segment is rejected up front with
//!   the same error (`failed_bits == 0`): the content is frozen
//!   (stuck-at faults), reads still succeed.
//! * A transient failure leaves a deterministic subset of the differing
//!   bytes unprogrammed and returns [`crate::SimError::WriteFailed`]
//!   with the count of bits that failed verification. Retrying the same
//!   write programs only the remaining bits and usually succeeds.

use crate::addr::PhysicalSegment;
use crate::error::{Result, SimError};
use serde::{Deserialize, Serialize};

/// Multiplier used to decorrelate the SplitMix64 streams.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mix.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map a 64-bit hash to a uniform f64 in [0, 1).
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Configuration of the deterministic fault model.
///
/// Attach to a device via [`crate::DeviceConfigBuilder::fault`]. With no
/// fault config (the default) the device behaves exactly as before:
/// segments never die and writes never fail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed for every random draw the model makes (endurance limits,
    /// transient failures, stuck-bit selection). Same seed, same
    /// configuration, same write sequence ⇒ identical failures.
    pub seed: u64,
    /// Weibull *scale* (η) of the per-segment endurance limit, in
    /// cumulative **programmed bits**. A segment's limit is drawn once
    /// from `Weibull(shape, endurance_bits)`; the segment wears out when
    /// its lifetime `bits_programmed` total crosses that limit. Counting
    /// programmed bits (not writes) is what lets flip-reducing schemes
    /// earn longer lifetimes.
    pub endurance_bits: u64,
    /// Weibull *shape* (k) of the endurance distribution. Larger values
    /// concentrate limits around `endurance_bits`; the default 3.0 gives
    /// the mild process variation real arrays show.
    pub endurance_shape: f64,
    /// Probability in `[0, 1)` that any single write fails transiently
    /// (some of its differing bits left unprogrammed, reported via
    /// [`crate::SimError::WriteFailed`]). 0 disables transient faults.
    pub transient_rate: f64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0xE2_FA17,
            endurance_bits: 1 << 22, // ~4 Mbit per segment: small enough to die in a bench run
            endurance_shape: 3.0,
            transient_rate: 0.0,
        }
    }
}

impl FaultConfig {
    /// Validate the configuration, returning a descriptive error on the
    /// first violated constraint.
    pub fn validate(&self) -> Result<()> {
        if self.endurance_bits == 0 {
            return Err(SimError::InvalidConfig(
                "fault.endurance_bits must be > 0".into(),
            ));
        }
        if !(self.endurance_shape.is_finite() && self.endurance_shape > 0.0) {
            return Err(SimError::InvalidConfig(format!(
                "fault.endurance_shape must be a positive finite number, got {}",
                self.endurance_shape
            )));
        }
        if !(self.transient_rate.is_finite() && (0.0..1.0).contains(&self.transient_rate)) {
            return Err(SimError::InvalidConfig(format!(
                "fault.transient_rate must be in [0, 1), got {}",
                self.transient_rate
            )));
        }
        Ok(())
    }
}

/// Cumulative fault counters, kept separate from [`crate::DeviceStats`]
/// so that stats stay bit-identical when faults are disabled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultStats {
    /// Writes that failed transiently (some bits left unprogrammed).
    pub transient_failures: u64,
    /// Writes rejected because their target segment was already worn out.
    pub worn_out_rejections: u64,
    /// Segments that have crossed their endurance limit.
    pub worn_out_segments: u64,
}

/// Per-segment endurance state plus the transient-failure stream.
///
/// Owned by [`crate::NvmDevice`] when a [`FaultConfig`] is present;
/// inspect it through [`crate::NvmDevice::fault_state`].
#[derive(Debug, Clone)]
pub struct FaultModel {
    cfg: FaultConfig,
    /// Per-segment endurance limit in cumulative programmed bits.
    limits: Vec<u64>,
    /// Per-segment lifetime programmed-bit totals.
    programmed: Vec<u64>,
    /// Per-segment worn-out flags (stuck-at: content frozen).
    worn: Vec<bool>,
    /// Monotonic draw counter feeding the transient-failure stream.
    draws: u64,
    stats: FaultStats,
}

impl FaultModel {
    /// Build the model for a pool of `num_segments` segments, drawing
    /// each segment's endurance limit from the configured Weibull
    /// distribution. `cfg` must already be validated.
    pub fn new(cfg: FaultConfig, num_segments: usize) -> Self {
        let limits = (0..num_segments)
            .map(|seg| {
                // Inverse-CDF sample: limit = η · (-ln(1-u))^(1/k).
                let u = unit_f64(splitmix64(cfg.seed ^ (seg as u64).wrapping_mul(GOLDEN)))
                    .clamp(1e-12, 1.0 - 1e-12);
                let w = (-(1.0 - u).ln()).powf(1.0 / cfg.endurance_shape);
                ((cfg.endurance_bits as f64) * w).ceil().max(1.0) as u64
            })
            .collect();
        FaultModel {
            limits,
            programmed: vec![0; num_segments],
            worn: vec![false; num_segments],
            draws: 0,
            stats: FaultStats::default(),
            cfg,
        }
    }

    /// The configuration this model was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Whether `segment` has worn out (writes rejected, content frozen).
    #[inline]
    pub fn is_worn(&self, segment: PhysicalSegment) -> bool {
        self.worn.get(segment.index()).copied().unwrap_or(false)
    }

    /// Number of worn-out segments.
    pub fn worn_out_count(&self) -> u64 {
        self.stats.worn_out_segments
    }

    /// All worn-out physical segments, ascending.
    pub fn worn_segments(&self) -> Vec<PhysicalSegment> {
        (0..self.worn.len())
            .filter(|&s| self.worn[s])
            .map(PhysicalSegment)
            .collect()
    }

    /// This segment's endurance limit in programmed bits.
    pub fn limit(&self, segment: PhysicalSegment) -> u64 {
        self.limits
            .get(segment.index())
            .copied()
            .unwrap_or(u64::MAX)
    }

    /// Lifetime programmed-bit total of `segment`.
    pub fn programmed_bits(&self, segment: PhysicalSegment) -> u64 {
        self.programmed.get(segment.index()).copied().unwrap_or(0)
    }

    /// Cumulative fault counters.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Per-segment lifetime programmed-bit totals, for persistence.
    /// Endurance limits are *not* part of the mutable state: they are
    /// re-derived deterministically from the config on restore.
    pub fn programmed_totals(&self) -> &[u64] {
        &self.programmed
    }

    /// Per-segment worn-out flags, for persistence.
    pub fn worn_flags(&self) -> &[bool] {
        &self.worn
    }

    /// Position in the transient-failure draw stream, for persistence.
    pub fn draw_count(&self) -> u64 {
        self.draws
    }

    /// Restore the mutable fault state from a persisted image. The
    /// endurance limits stay as drawn from this model's config (same
    /// seed ⇒ same limits), so only the lifetime totals, worn flags and
    /// the draw-stream position move. [`FaultStats`] are measurement
    /// state and reset, except `worn_out_segments`, which must stay
    /// consistent with the restored flags.
    pub fn restore_state(&mut self, programmed: &[u64], worn: &[bool], draws: u64) -> Result<()> {
        if programmed.len() != self.programmed.len() || worn.len() != self.worn.len() {
            return Err(SimError::InvalidConfig(format!(
                "fault state for {} segments does not fit a {}-segment model",
                programmed.len(),
                self.programmed.len()
            )));
        }
        self.programmed.copy_from_slice(programmed);
        self.worn.copy_from_slice(worn);
        self.draws = draws;
        self.stats = FaultStats {
            worn_out_segments: worn.iter().filter(|&&w| w).count() as u64,
            ..FaultStats::default()
        };
        Ok(())
    }

    /// Account a rejected write to an already worn-out segment.
    pub(crate) fn record_rejection(&mut self) {
        self.stats.worn_out_rejections += 1;
    }

    /// Draw from the transient-failure stream: does the next write fail?
    pub(crate) fn transient_fires(&mut self) -> bool {
        if self.cfg.transient_rate <= 0.0 {
            return false;
        }
        self.draws += 1;
        unit_f64(splitmix64(
            self.cfg.seed ^ 0xDEAD_BEEF ^ self.draws.wrapping_mul(GOLDEN),
        )) < self.cfg.transient_rate
    }

    /// Build the *effective* buffer of a transiently failing write:
    /// roughly half of the differing bytes (chosen deterministically
    /// from the current draw) keep their old value. Returns the
    /// effective data plus the number of bits that failed to program,
    /// or `None` when the buffers do not differ (nothing can fail).
    pub(crate) fn corrupt_transient(&mut self, old: &[u8], new: &[u8]) -> Option<(Vec<u8>, u64)> {
        debug_assert_eq!(old.len(), new.len());
        let mut effective = new.to_vec();
        let mut failed_bits = 0u64;
        let mut kept_any = false;
        for (i, (&o, &n)) in old.iter().zip(new.iter()).enumerate() {
            if o == n {
                continue;
            }
            let h = splitmix64(
                self.cfg
                    .seed
                    .wrapping_mul(GOLDEN)
                    .wrapping_add(self.draws)
                    .wrapping_add((i as u64) << 32),
            );
            if h & 1 == 0 {
                effective[i] = o;
                failed_bits += (o ^ n).count_ones() as u64;
                kept_any = true;
            }
        }
        if !kept_any {
            // Force at least one failed byte: find the first difference.
            let i = old.iter().zip(new.iter()).position(|(o, n)| o != n)?;
            effective[i] = old[i];
            failed_bits = (old[i] ^ new[i]).count_ones() as u64;
        }
        self.stats.transient_failures += 1;
        Some((effective, failed_bits))
    }

    /// Account `bits` freshly programmed pulses on `segment`; returns
    /// `true` when this crossing wears the segment out (the caller then
    /// applies stuck-bit corruption and fails the write).
    pub(crate) fn on_programmed(&mut self, segment: usize, bits: u64) -> bool {
        let Some(total) = self.programmed.get_mut(segment) else {
            return false;
        };
        *total += bits;
        if !self.worn[segment] && *total >= self.limits[segment] {
            self.worn[segment] = true;
            self.stats.worn_out_segments += 1;
            return true;
        }
        false
    }

    /// Flip a deterministic sparse set of bits in a dying segment's
    /// content (cells latching the wrong value at the moment of
    /// wear-out) and return how many stuck. At least one bit is always
    /// corrupted so a verify-after-write genuinely fails.
    pub(crate) fn stuck_corruption(&self, segment: usize, data: &mut [u8]) -> u64 {
        let mut stuck = 0u64;
        for (i, byte) in data.iter_mut().enumerate() {
            let h = splitmix64(
                self.cfg
                    .seed
                    .wrapping_add(0x57_0C_B1_75)
                    .wrapping_add((segment as u64) << 32)
                    .wrapping_add(i as u64),
            );
            // ~1/32 of bytes get one stuck bit.
            if h & 0x1F == 0 {
                *byte ^= 1 << ((h >> 8) & 7);
                stuck += 1;
            }
        }
        if stuck == 0 && !data.is_empty() {
            data[0] ^= 1;
            stuck = 1;
        }
        stuck
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_validates() {
        FaultConfig::default().validate().unwrap();
    }

    #[test]
    fn bad_configs_rejected() {
        let d = FaultConfig::default;
        assert!(FaultConfig {
            endurance_bits: 0,
            ..d()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            endurance_shape: 0.0,
            ..d()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            endurance_shape: f64::NAN,
            ..d()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            transient_rate: 1.0,
            ..d()
        }
        .validate()
        .is_err());
        assert!(FaultConfig {
            transient_rate: -0.1,
            ..d()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn limits_are_deterministic_and_vary() {
        let a = FaultModel::new(FaultConfig::default(), 64);
        let b = FaultModel::new(FaultConfig::default(), 64);
        assert_eq!(a.limits, b.limits);
        // Weibull variation: not all limits identical.
        assert!(a.limits.iter().any(|&l| l != a.limits[0]));
        // Scale: limits cluster within an order of magnitude of η.
        let eta = FaultConfig::default().endurance_bits as f64;
        for &l in &a.limits {
            assert!((l as f64) > eta / 100.0 && (l as f64) < eta * 10.0, "{l}");
        }
    }

    #[test]
    fn different_seeds_give_different_limits() {
        let a = FaultModel::new(FaultConfig::default(), 16);
        let cfg = FaultConfig {
            seed: FaultConfig::default().seed ^ 1,
            ..FaultConfig::default()
        };
        let b = FaultModel::new(cfg, 16);
        assert_ne!(a.limits, b.limits);
    }

    #[test]
    fn wear_out_crossing_fires_once() {
        let mut m = FaultModel::new(
            FaultConfig {
                endurance_bits: 1000,
                ..FaultConfig::default()
            },
            4,
        );
        let limit = m.limit(PhysicalSegment(2));
        assert!(!m.on_programmed(2, limit - 1));
        assert!(!m.is_worn(PhysicalSegment(2)));
        assert!(m.on_programmed(2, 1)); // crossing
        assert!(m.is_worn(PhysicalSegment(2)));
        assert!(!m.on_programmed(2, 1000)); // already worn: no second event
        assert_eq!(m.stats().worn_out_segments, 1);
        assert_eq!(m.worn_segments(), vec![PhysicalSegment(2)]);
    }

    #[test]
    fn transient_stream_matches_configured_rate() {
        let mut m = FaultModel::new(
            FaultConfig {
                transient_rate: 0.25,
                ..FaultConfig::default()
            },
            1,
        );
        let fired = (0..10_000).filter(|_| m.transient_fires()).count();
        assert!((2000..3000).contains(&fired), "{fired}");
    }

    #[test]
    fn zero_rate_never_fires_and_makes_no_draws() {
        let mut m = FaultModel::new(FaultConfig::default(), 1);
        assert!((0..1000).all(|_| !m.transient_fires()));
        assert_eq!(m.draws, 0);
    }

    #[test]
    fn corrupt_transient_keeps_some_old_bytes() {
        let mut m = FaultModel::new(
            FaultConfig {
                transient_rate: 0.5,
                ..FaultConfig::default()
            },
            1,
        );
        let old = vec![0u8; 64];
        let new = vec![0xFFu8; 64];
        let (eff, failed_bits) = m.corrupt_transient(&old, &new).unwrap();
        assert!(failed_bits > 0);
        assert!(eff.contains(&0), "some bytes kept old value");
        assert!(eff.contains(&0xFF), "some bytes programmed");
        let kept = eff.iter().filter(|&&b| b == 0).count() as u64;
        assert_eq!(failed_bits, kept * 8);
        // Identical buffers cannot fail.
        assert!(m.corrupt_transient(&new, &new).is_none());
    }

    #[test]
    fn stuck_corruption_always_corrupts() {
        let m = FaultModel::new(FaultConfig::default(), 4);
        let mut data = vec![0xA5u8; 256];
        let before = data.clone();
        let stuck = m.stuck_corruption(1, &mut data);
        assert!(stuck >= 1);
        let diff: u64 = before
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones() as u64)
            .sum();
        assert_eq!(diff, stuck);
    }
}
