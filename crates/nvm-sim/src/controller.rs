//! The memory controller: logical→physical segment indirection plus a
//! pluggable wear-leveling policy.
//!
//! Software (the E2-NVM layer, the baselines, the KV stores) addresses
//! *logical* segments. The controller translates to physical segments,
//! forwards the access to the device, and — every ψ writes, per the
//! configured [`WearLeveler`] — physically relocates segments, updating
//! its remap table. Relocations are charged to the device like any other
//! traffic, so their extra bit flips and energy show up in the stats,
//! exactly the interference the paper's Figure 2 studies.

use crate::device::{NvmDevice, SegmentId, WriteReport};
use crate::error::{Result, SimError};
use crate::stats::DeviceStats;
use crate::wear_leveling::{NoWearLeveling, RandomSwap, StartGap, SwapAction, WearLeveler};
use e2nvm_telemetry::{Event, TelemetryRegistry};

const GAP: usize = usize::MAX;

/// A device behind a remapping, wear-leveling controller.
pub struct MemoryController {
    device: NvmDevice,
    /// logical segment -> physical segment
    remap: Vec<usize>,
    /// physical segment -> logical segment (GAP for the gap slot)
    inverse: Vec<usize>,
    leveler: Box<dyn WearLeveler>,
    logical_segments: usize,
    /// Journal sink for wear-leveling events; a capacity-0 disconnected
    /// registry until [`MemoryController::attach_telemetry`] is called.
    telemetry: TelemetryRegistry,
}

impl MemoryController {
    fn build(device: NvmDevice, leveler: Box<dyn WearLeveler>, reserve_gap: bool) -> Self {
        let physical = device.num_segments();
        let logical = if reserve_gap { physical - 1 } else { physical };
        let remap: Vec<usize> = (0..logical).collect();
        let mut inverse: Vec<usize> = (0..logical).collect();
        if reserve_gap {
            inverse.push(GAP);
        }
        Self {
            device,
            remap,
            inverse,
            leveler,
            logical_segments: logical,
            telemetry: TelemetryRegistry::with_journal_capacity(0),
        }
    }

    /// Register the underlying device's metrics on `registry` and route
    /// wear-leveling events to its journal. `labels` distinguish this
    /// controller's series (e.g. `[("shard", "2")]`).
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry, labels: &[(&str, &str)]) {
        self.device.attach_telemetry(registry, labels);
        self.telemetry = registry.clone();
    }

    /// A pass-through controller with no wear leveling.
    pub fn without_wear_leveling(device: NvmDevice) -> Self {
        Self::build(device, Box::new(NoWearLeveling), false)
    }

    /// Start-gap wear leveling acting every `psi` writes. One physical
    /// segment is reserved as the gap, so the logical capacity is
    /// `device.num_segments() - 1`.
    pub fn with_start_gap(device: NvmDevice, psi: u64) -> Self {
        let n = device.num_segments();
        Self::build(device, Box::new(StartGap::new(n, psi)), true)
    }

    /// Random-swap wear leveling acting every `psi` writes (the paper's
    /// model of proprietary controllers).
    pub fn with_random_swap(device: NvmDevice, psi: u64, seed: u64) -> Self {
        let n = device.num_segments();
        Self::build(device, Box::new(RandomSwap::new(n, psi, seed)), false)
    }

    /// Number of logical segments addressable by software.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.logical_segments
    }

    /// Name of the active wear-leveling policy.
    pub fn wear_leveling_name(&self) -> &'static str {
        self.leveler.name()
    }

    /// Whether the active policy can remap logical→physical segments.
    /// `false` only for the pass-through controller, whose mapping is
    /// the identity forever — the property persistence relies on when
    /// it snapshots logical retirement state (DESIGN.md §10 caveat).
    pub fn wear_leveling_active(&self) -> bool {
        self.leveler.period().is_some()
    }

    fn physical(&self, logical: SegmentId) -> Result<SegmentId> {
        self.remap
            .get(logical.index())
            .map(|&p| SegmentId(p))
            .ok_or(SimError::SegmentOutOfRange {
                segment: logical.index(),
                num_segments: self.logical_segments,
            })
    }

    /// Record a journal event for a fault-model write error before
    /// propagating it (worn-out segments are rare, journal-worthy
    /// occurrences; transient failures are high-volume and only
    /// counted).
    fn journal_write_error(&self, err: &SimError) {
        if let SimError::SegmentWornOut { segment, .. } = err {
            self.telemetry
                .journal()
                .record(Event::SegmentWornOut { segment: *segment });
        }
    }

    /// Write a full logical segment.
    pub fn write(&mut self, logical: SegmentId, data: &[u8]) -> Result<WriteReport> {
        let phys = self.physical(logical)?;
        let mut report = self.device.write(phys, data).map_err(|e| {
            self.journal_write_error(&e);
            e
        })?;
        self.run_wear_leveling(phys, &mut report)?;
        Ok(report)
    }

    /// Write at an offset within a logical segment.
    pub fn write_at(
        &mut self,
        logical: SegmentId,
        offset: usize,
        data: &[u8],
    ) -> Result<WriteReport> {
        let phys = self.physical(logical)?;
        let mut report = self.device.write_at(phys, offset, data).map_err(|e| {
            self.journal_write_error(&e);
            e
        })?;
        self.run_wear_leveling(phys, &mut report)?;
        Ok(report)
    }

    fn run_wear_leveling(&mut self, phys: SegmentId, report: &mut WriteReport) -> Result<()> {
        let Some(action) = self.leveler.on_write(phys.index()) else {
            return Ok(());
        };
        match action {
            SwapAction::Swap(a, b) => {
                let r = self.device.swap_segments(SegmentId(a), SegmentId(b))?;
                report.merge(&r);
                self.telemetry
                    .journal()
                    .record(Event::WearLevelSwap { a, b });
                let (la, lb) = (self.inverse[a], self.inverse[b]);
                if la != GAP {
                    self.remap[la] = b;
                }
                if lb != GAP {
                    self.remap[lb] = a;
                }
                self.inverse.swap(a, b);
            }
            SwapAction::MoveToGap { src, gap } => {
                let content = self.device.peek(SegmentId(src)).to_vec();
                let r = self.device.write(SegmentId(gap), &content)?;
                report.merge(&r);
                self.telemetry
                    .journal()
                    .record(Event::WearLevelSwap { a: src, b: gap });
                let l = self.inverse[src];
                debug_assert_ne!(l, GAP, "start-gap moved the gap itself");
                self.remap[l] = gap;
                self.inverse[gap] = l;
                self.inverse[src] = GAP;
            }
        }
        Ok(())
    }

    /// Read a logical segment (with device read accounting).
    pub fn read(&mut self, logical: SegmentId) -> Result<Vec<u8>> {
        let phys = self.physical(logical)?;
        Ok(self.device.read(phys)?.to_vec())
    }

    /// Inspect a logical segment's content without accounting.
    pub fn peek(&self, logical: SegmentId) -> Result<&[u8]> {
        let phys = self.physical(logical)?;
        Ok(self.device.peek(phys))
    }

    /// Seed a logical segment's content without accounting.
    pub fn seed(&mut self, logical: SegmentId, data: &[u8]) -> Result<()> {
        let phys = self.physical(logical)?;
        self.device.seed_segment(phys, data)
    }

    /// Cumulative device statistics (includes wear-leveling traffic).
    pub fn stats(&self) -> &DeviceStats {
        self.device.stats()
    }

    /// Reset the device statistics.
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &NvmDevice {
        &self.device
    }

    /// Mutably borrow the underlying device (seeding, traces, wear).
    pub fn device_mut(&mut self) -> &mut NvmDevice {
        &mut self.device
    }

    /// Check the remap table is a bijection from logical segments onto a
    /// subset of physical segments (test/diagnostic helper).
    pub fn remap_is_consistent(&self) -> bool {
        let mut seen = vec![false; self.device.num_segments()];
        for (l, &p) in self.remap.iter().enumerate() {
            if p >= seen.len() || seen[p] || self.inverse[p] != l {
                return false;
            }
            seen[p] = true;
        }
        self.inverse.iter().filter(|&&l| l == GAP).count()
            == self.device.num_segments() - self.logical_segments
    }
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("logical_segments", &self.logical_segments)
            .field("wear_leveling", &self.leveler.name())
            .field("stats", self.device.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DeviceConfig;

    fn device(n: usize) -> NvmDevice {
        NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(n)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn passthrough_controller_preserves_contents() {
        let mut mc = MemoryController::without_wear_leveling(device(4));
        let seg = SegmentId(2);
        mc.write(seg, &vec![7u8; 256]).unwrap();
        assert_eq!(mc.read(seg).unwrap(), vec![7u8; 256]);
        assert_eq!(mc.num_segments(), 4);
        assert!(mc.remap_is_consistent());
    }

    #[test]
    fn start_gap_reserves_one_segment() {
        let mc = MemoryController::with_start_gap(device(8), 10);
        assert_eq!(mc.num_segments(), 7);
    }

    #[test]
    fn start_gap_relocation_preserves_logical_view() {
        let mut mc = MemoryController::with_start_gap(device(4), 1);
        // Write distinct content to each logical segment; with psi=1 a
        // relocation happens on every write.
        for i in 0..3 {
            mc.write(SegmentId(i), &vec![i as u8 + 1; 256]).unwrap();
        }
        for _ in 0..20 {
            mc.write(SegmentId(0), &vec![0xEEu8; 256]).unwrap();
        }
        assert_eq!(mc.read(SegmentId(1)).unwrap(), vec![2u8; 256]);
        assert_eq!(mc.read(SegmentId(2)).unwrap(), vec![3u8; 256]);
        assert_eq!(mc.read(SegmentId(0)).unwrap(), vec![0xEEu8; 256]);
        assert!(mc.remap_is_consistent());
    }

    #[test]
    fn random_swap_preserves_logical_view() {
        let mut mc = MemoryController::with_random_swap(device(6), 2, 99);
        for i in 0..6 {
            mc.seed(SegmentId(i), &vec![i as u8; 256]).unwrap();
        }
        for round in 0..50u8 {
            mc.write(SegmentId((round % 6) as usize), &vec![round; 256])
                .unwrap();
            // After each write the most recent content must read back.
            assert_eq!(
                mc.read(SegmentId((round % 6) as usize)).unwrap(),
                vec![round; 256]
            );
            assert!(mc.remap_is_consistent());
        }
        assert!(mc.stats().swaps > 0);
    }

    #[test]
    fn wear_leveling_adds_flips() {
        // Identical writes to one segment: without wear leveling zero
        // flips after the first; with psi=1 random swap, relocations keep
        // flipping bits.
        let run = |mut mc: MemoryController| -> u64 {
            for i in 0..6 {
                mc.seed(SegmentId(i), &vec![(i as u8).wrapping_mul(37); 256])
                    .unwrap();
            }
            mc.reset_stats();
            for _ in 0..100 {
                mc.write(SegmentId(0), &vec![0u8.wrapping_mul(37); 256])
                    .unwrap();
            }
            mc.stats().bits_flipped
        };
        let without = run(MemoryController::without_wear_leveling(device(6)));
        let with = run(MemoryController::with_random_swap(device(6), 1, 5));
        assert!(without < with, "without={without} with={with}");
    }

    #[test]
    fn out_of_range_logical_rejected() {
        let mut mc = MemoryController::with_start_gap(device(4), 10);
        // Logical capacity is 3; index 3 is invalid.
        assert!(mc.write(SegmentId(3), &vec![0u8; 256]).is_err());
    }

    #[test]
    fn swap_traffic_included_in_write_report() {
        let mut mc = MemoryController::with_random_swap(device(4), 1, 3);
        for i in 0..4 {
            mc.seed(SegmentId(i), &vec![0xA5u8.wrapping_add(i as u8); 256])
                .unwrap();
        }
        let r = mc.write(SegmentId(0), &vec![0xA5u8; 256]).unwrap();
        // The report includes the swap's flips, which are nonzero because
        // the partner segment has different content.
        assert!(r.bits_flipped > 0);
    }
}
