//! The memory controller: the owner of the logical→physical segment
//! translation, plus a pluggable wear-leveling policy.
//!
//! Software (the E2-NVM layer, the baselines, the KV stores) addresses
//! [`LogicalSegment`]s. The controller translates each access through
//! its [`SegmentRemap`] to the [`PhysicalSegment`] backing it, forwards
//! the access to the device, and — every ψ writes, per the configured
//! [`WearLeveler`] — physically relocates segments, updating the remap.
//! Relocations are charged to the device like any other traffic, so
//! their extra bit flips and energy show up in the stats, exactly the
//! interference the paper's Figure 2 studies.
//!
//! The translation is *queryable* ([`MemoryController::remap`]), which
//! is what lets wear-keyed subsystems compose with wear leveling:
//! retirement quarantines the physical slot a dying write actually hit
//! ([`MemoryController::retire`]), heatmaps can be read in either
//! address space, and snapshots persist the whole mapping
//! ([`MemoryController::export_state`]) instead of refusing to run.
//!
//! Relocation safety: before applying a proposed [`SwapAction`] the
//! controller pre-checks endurance headroom on every destination
//! ([`NvmDevice::write_would_wear_out`]) and skips actions that touch a
//! retired slot or cannot prove headroom (counted in
//! [`MemoryController::skipped_relocations`]). Wear-out therefore only
//! ever fires on *user* writes, where the engine's retire-and-replace
//! path guarantees zero data loss.

use crate::addr::{LogicalSegment, PhysicalSegment, SegmentRemap};
use crate::device::{NvmDevice, WriteReport};
use crate::error::{Result, SimError};
use crate::stats::DeviceStats;
use crate::wear_leveling::{
    NoWearLeveling, RandomSwap, RetiredSet, StartGap, SwapAction, WearLeveler, WearPolicyState,
};
use e2nvm_telemetry::{Event, TelemetryRegistry};
use serde::{Deserialize, Serialize};

/// Serializable controller state: everything needed to rebuild the
/// translation layer after a restart — the wear-leveling policy's
/// position, the logical→physical forward table, and the per-physical
/// retired flags. Persisted as its own section of the E2SS snapshot
/// format (v2), which is what lifted the old "snapshots refused under
/// active wear leveling" restriction.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ControllerState {
    /// Wear-leveling policy state ([`WearLeveler::export`]).
    pub policy: WearPolicyState,
    /// Forward table: `remap[l]` = physical slot backing logical `l`.
    pub remap: Vec<usize>,
    /// Per-physical-segment retired (quarantined) flags.
    pub retired: Vec<bool>,
}

/// A device behind a remapping, wear-leveling controller.
pub struct MemoryController {
    device: NvmDevice,
    remap: SegmentRemap,
    leveler: Box<dyn WearLeveler>,
    /// Physical segments quarantined by [`MemoryController::retire`].
    retired: Vec<bool>,
    /// Wear-leveling proposals skipped because they touched a retired
    /// slot or could not prove endurance headroom.
    skipped_relocations: u64,
    /// Journal sink for wear-leveling events; a capacity-0 disconnected
    /// registry until [`MemoryController::attach_telemetry`] is called.
    telemetry: TelemetryRegistry,
}

impl MemoryController {
    fn build(device: NvmDevice, leveler: Box<dyn WearLeveler>, reserve_gap: bool) -> Self {
        let physical = device.num_segments();
        let logical = if reserve_gap { physical - 1 } else { physical };
        let remap = SegmentRemap::from_forward((0..logical).collect(), physical)
            .expect("identity prefix is always consistent");
        Self {
            device,
            remap,
            leveler,
            retired: vec![false; physical],
            skipped_relocations: 0,
            telemetry: TelemetryRegistry::with_journal_capacity(0),
        }
    }

    /// Register the underlying device's metrics on `registry` and route
    /// wear-leveling events to its journal. `labels` distinguish this
    /// controller's series (e.g. `[("shard", "2")]`).
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry, labels: &[(&str, &str)]) {
        self.device.attach_telemetry(registry, labels);
        self.telemetry = registry.clone();
    }

    /// A pass-through controller with no wear leveling.
    pub fn without_wear_leveling(device: NvmDevice) -> Self {
        Self::build(device, Box::new(NoWearLeveling), false)
    }

    /// Start-gap wear leveling acting every `psi` writes. One physical
    /// segment is reserved as the gap, so the logical capacity is
    /// `device.num_segments() - 1`.
    pub fn with_start_gap(device: NvmDevice, psi: u64) -> Self {
        let n = device.num_segments();
        Self::build(device, Box::new(StartGap::new(n, psi)), true)
    }

    /// Random-swap wear leveling acting every `psi` writes (the paper's
    /// model of proprietary controllers).
    pub fn with_random_swap(device: NvmDevice, psi: u64, seed: u64) -> Self {
        let n = device.num_segments();
        Self::build(device, Box::new(RandomSwap::new(n, psi, seed)), false)
    }

    /// Rebuild a controller from persisted [`ControllerState`] — the
    /// recovery path. The device must already carry its restored image
    /// (wear counters, fault state, contents); this reattaches the
    /// translation layer exactly where it left off.
    pub fn from_state(device: NvmDevice, state: &ControllerState) -> Result<Self> {
        let physical = device.num_segments();
        if state.retired.len() != physical {
            return Err(SimError::InvalidConfig(format!(
                "controller state has {} retired flags for a {}-segment device",
                state.retired.len(),
                physical
            )));
        }
        let remap = SegmentRemap::from_forward(state.remap.clone(), physical).ok_or_else(|| {
            SimError::InvalidConfig(
                "controller remap table is not a bijection onto the device".into(),
            )
        })?;
        let leveler: Box<dyn WearLeveler> = match state.policy {
            WearPolicyState::None => Box::new(NoWearLeveling),
            WearPolicyState::StartGap { psi, writes, gap } => {
                if remap.logical(gap).is_some() {
                    return Err(SimError::InvalidConfig(format!(
                        "start-gap state names {gap} as the gap but the remap table maps it"
                    )));
                }
                Box::new(StartGap::restore(physical, psi, writes, gap))
            }
            WearPolicyState::RandomSwap {
                psi,
                seed,
                writes,
                draws,
            } => Box::new(RandomSwap::restore(physical, psi, seed, writes, draws)),
        };
        Ok(Self {
            device,
            remap,
            leveler,
            retired: state.retired.clone(),
            skipped_relocations: 0,
            telemetry: TelemetryRegistry::with_journal_capacity(0),
        })
    }

    /// Export the translation layer for persistence; the inverse of
    /// [`MemoryController::from_state`].
    pub fn export_state(&self) -> ControllerState {
        ControllerState {
            policy: self.leveler.export(),
            remap: self.remap.forward_table().to_vec(),
            retired: self.retired.clone(),
        }
    }

    /// Number of logical segments addressable by software.
    #[inline]
    pub fn num_segments(&self) -> usize {
        self.remap.logical_len()
    }

    /// Name of the active wear-leveling policy.
    pub fn wear_leveling_name(&self) -> &'static str {
        self.leveler.name()
    }

    /// Whether the active policy can remap logical→physical segments
    /// (`false` only for the pass-through controller, whose mapping
    /// stays the identity forever).
    pub fn wear_leveling_active(&self) -> bool {
        self.leveler.period().is_some()
    }

    /// The live logical→physical translation table and its inverse.
    /// This is the API seam that makes wear-keyed subsystems compose:
    /// anything that must cross address spaces (retirement, heatmaps,
    /// snapshots, diagnostics) queries it instead of assuming identity.
    pub fn remap(&self) -> &SegmentRemap {
        &self.remap
    }

    fn physical(&self, logical: LogicalSegment) -> Result<PhysicalSegment> {
        self.remap
            .physical(logical)
            .ok_or(SimError::SegmentOutOfRange {
                segment: logical.index(),
                num_segments: self.remap.logical_len(),
            })
    }

    /// Quarantine the physical segment currently backing `logical`.
    ///
    /// Called by the engine when a write to `logical` dies with a
    /// wear-out: the *slot the write actually hit* is what wore out, so
    /// that is what must never be handed out again — even after later
    /// relocations reassign the logical name. Returns the quarantined
    /// physical id. Safe to call straight from the write's error path:
    /// the remap only mutates after *successful* writes, so the failed
    /// write's translation is still live.
    pub fn retire(&mut self, logical: LogicalSegment) -> Result<PhysicalSegment> {
        let phys = self.physical(logical)?;
        self.retired[phys.index()] = true;
        Ok(phys)
    }

    /// Whether a physical segment is quarantined.
    pub fn is_retired(&self, phys: PhysicalSegment) -> bool {
        self.retired.get(phys.index()).copied().unwrap_or(false)
    }

    /// Number of quarantined physical segments — the figure health
    /// probes and the HEALTH wire summary report.
    pub fn retired_physical_count(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// The quarantined physical segments, ascending.
    pub fn retired_physical(&self) -> Vec<PhysicalSegment> {
        self.retired
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| r.then_some(PhysicalSegment(i)))
            .collect()
    }

    /// Wear-leveling proposals skipped for safety (retired slot
    /// involved, or endurance headroom could not be proven).
    pub fn skipped_relocations(&self) -> u64 {
        self.skipped_relocations
    }

    /// Record a journal event for a fault-model write error before
    /// propagating it (worn-out segments are rare, journal-worthy
    /// occurrences; transient failures are high-volume and only
    /// counted).
    fn journal_write_error(&self, err: &SimError) {
        if let SimError::SegmentWornOut { segment, .. } = err {
            self.telemetry
                .journal()
                .record(Event::SegmentWornOut { segment: *segment });
        }
    }

    /// Write a full logical segment.
    pub fn write(&mut self, logical: LogicalSegment, data: &[u8]) -> Result<WriteReport> {
        let phys = self.physical(logical)?;
        let mut report = self.device.write(phys, data).map_err(|e| {
            self.journal_write_error(&e);
            e
        })?;
        self.run_wear_leveling(phys, &mut report);
        Ok(report)
    }

    /// Write at an offset within a logical segment.
    pub fn write_at(
        &mut self,
        logical: LogicalSegment,
        offset: usize,
        data: &[u8],
    ) -> Result<WriteReport> {
        let phys = self.physical(logical)?;
        let mut report = self.device.write_at(phys, offset, data).map_err(|e| {
            self.journal_write_error(&e);
            e
        })?;
        self.run_wear_leveling(phys, &mut report);
        Ok(report)
    }

    /// Give the wear-leveling policy its per-write tick and apply (or
    /// safely skip) whatever it proposes. Infallible by design: a
    /// relocation problem must never surface as an error on the user
    /// write that triggered it — that write already succeeded.
    fn run_wear_leveling(&mut self, phys: PhysicalSegment, report: &mut WriteReport) {
        let action = {
            let retired = RetiredSet::new(&self.retired);
            self.leveler.on_write(phys, &retired)
        };
        let Some(action) = action else {
            return;
        };
        match self.try_apply(&action) {
            Ok(Some(r)) => {
                report.merge(&r);
                self.leveler.on_applied(&action);
                let (a, b) = match action {
                    SwapAction::Swap(a, b) => (a, b),
                    SwapAction::MoveToGap { src, gap } => (src, gap),
                };
                self.telemetry
                    .journal()
                    .record(Event::WearLevelSwap { a: a.0, b: b.0 });
            }
            Ok(None) | Err(_) => {
                self.skipped_relocations += 1;
            }
        }
    }

    /// Apply a proposed action if every destination is live and has
    /// provable endurance headroom; `Ok(None)` means safely skipped.
    /// The remap mutates only after the device operation succeeds, and
    /// a partially applied swap rolls the contents back (unaccounted —
    /// unreachable in practice given the pre-check, but the remap must
    /// never disagree with the medium).
    fn try_apply(&mut self, action: &SwapAction) -> Result<Option<WriteReport>> {
        match *action {
            SwapAction::Swap(a, b) => {
                if self.is_retired(a) || self.is_retired(b) {
                    return Ok(None);
                }
                let ca = self.device.peek(a).to_vec();
                let cb = self.device.peek(b).to_vec();
                if self.device.write_would_wear_out(a, &cb)?
                    || self.device.write_would_wear_out(b, &ca)?
                {
                    return Ok(None);
                }
                match self.device.swap_segments(a, b) {
                    Ok(r) => {
                        self.remap.swap_physical(a, b);
                        Ok(Some(r))
                    }
                    Err(_) => {
                        self.device.seed_segment(a, &ca)?;
                        self.device.seed_segment(b, &cb)?;
                        Ok(None)
                    }
                }
            }
            SwapAction::MoveToGap { src, gap } => {
                if self.is_retired(src) || self.is_retired(gap) {
                    return Ok(None);
                }
                let content = self.device.peek(src).to_vec();
                if self.device.write_would_wear_out(gap, &content)? {
                    return Ok(None);
                }
                match self.device.write_retrying_transients(gap, &content) {
                    Ok(r) => {
                        self.remap.move_to_gap(src, gap);
                        Ok(Some(r))
                    }
                    // A half-programmed gap is harmless: it has no
                    // logical preimage until the remap commits.
                    Err(_) => Ok(None),
                }
            }
        }
    }

    /// Read a logical segment (with device read accounting).
    pub fn read(&mut self, logical: LogicalSegment) -> Result<Vec<u8>> {
        let phys = self.physical(logical)?;
        Ok(self.device.read(phys)?.to_vec())
    }

    /// Inspect a logical segment's content without accounting.
    pub fn peek(&self, logical: LogicalSegment) -> Result<&[u8]> {
        let phys = self.physical(logical)?;
        Ok(self.device.peek(phys))
    }

    /// Seed a logical segment's content without accounting.
    pub fn seed(&mut self, logical: LogicalSegment, data: &[u8]) -> Result<()> {
        let phys = self.physical(logical)?;
        self.device.seed_segment(phys, data)
    }

    /// Cumulative device statistics (includes wear-leveling traffic).
    pub fn stats(&self) -> &DeviceStats {
        self.device.stats()
    }

    /// Reset the device statistics.
    pub fn reset_stats(&mut self) {
        self.device.reset_stats();
    }

    /// Borrow the underlying device.
    pub fn device(&self) -> &NvmDevice {
        &self.device
    }

    /// Mutably borrow the underlying device (seeding, traces, wear).
    pub fn device_mut(&mut self) -> &mut NvmDevice {
        &mut self.device
    }

    /// Export the wear heatmap in the **logical** address space: each
    /// entry is the wear of the physical slot *currently* backing that
    /// logical segment, translated through the live remap. Use
    /// [`NvmDevice::wear_heatmap_json`] for the physical (medium) view;
    /// the two only coincide under the identity mapping. Both documents
    /// carry an `address_space` field so a consumer can tell which it
    /// was given.
    pub fn wear_heatmap_json(&self) -> String {
        let wear = self.device.wear();
        let per_logical = |physical_values: Option<Vec<u64>>| -> String {
            match physical_values {
                None => "null".to_string(),
                Some(vals) => {
                    let items: Vec<String> = self
                        .remap
                        .iter()
                        .map(|(_, p)| vals[p.index()].to_string())
                        .collect();
                    format!("[{}]", items.join(","))
                }
            }
        };
        let writes = per_logical(
            wear.per_segment_writes()
                .map(|w| w.iter().map(|&x| x as u64).collect()),
        );
        let seg_bits = self.device.config().segment_bytes * 8;
        let flips = per_logical(wear.per_bit_flips().map(|bits| {
            bits.chunks(seg_bits)
                .map(|seg| seg.iter().map(|&b| b as u64).sum::<u64>())
                .collect()
        }));
        format!(
            "{{\"address_space\":\"logical\",\"policy\":\"{}\",\"num_segments\":{},\
             \"segment_bytes\":{},\"per_segment_writes\":{},\"per_segment_flips\":{},\
             \"retired_physical\":{}}}",
            self.leveler.name(),
            self.remap.logical_len(),
            self.device.config().segment_bytes,
            writes,
            flips,
            self.retired_physical_count(),
        )
    }

    /// Check the remap table is a bijection from logical segments onto a
    /// subset of physical segments (test/diagnostic helper).
    pub fn remap_is_consistent(&self) -> bool {
        self.remap.is_consistent() && self.remap.physical_len() == self.device.num_segments()
    }
}

impl std::fmt::Debug for MemoryController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoryController")
            .field("logical_segments", &self.remap.logical_len())
            .field("wear_leveling", &self.leveler.name())
            .field("retired_physical", &self.retired_physical_count())
            .field("stats", self.device.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DeviceConfig, WearTracking};
    use crate::fault::FaultConfig;

    fn device(n: usize) -> NvmDevice {
        NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(n)
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn passthrough_controller_preserves_contents() {
        let mut mc = MemoryController::without_wear_leveling(device(4));
        let seg = LogicalSegment(2);
        mc.write(seg, &vec![7u8; 256]).unwrap();
        assert_eq!(mc.read(seg).unwrap(), vec![7u8; 256]);
        assert_eq!(mc.num_segments(), 4);
        assert!(mc.remap_is_consistent());
    }

    #[test]
    fn start_gap_reserves_one_segment() {
        let mc = MemoryController::with_start_gap(device(8), 10);
        assert_eq!(mc.num_segments(), 7);
    }

    #[test]
    fn start_gap_relocation_preserves_logical_view() {
        let mut mc = MemoryController::with_start_gap(device(4), 1);
        // Write distinct content to each logical segment; with psi=1 a
        // relocation happens on every write.
        for i in 0..3 {
            mc.write(LogicalSegment(i), &vec![i as u8 + 1; 256])
                .unwrap();
        }
        for _ in 0..20 {
            mc.write(LogicalSegment(0), &vec![0xEEu8; 256]).unwrap();
        }
        assert_eq!(mc.read(LogicalSegment(1)).unwrap(), vec![2u8; 256]);
        assert_eq!(mc.read(LogicalSegment(2)).unwrap(), vec![3u8; 256]);
        assert_eq!(mc.read(LogicalSegment(0)).unwrap(), vec![0xEEu8; 256]);
        assert!(mc.remap_is_consistent());
    }

    #[test]
    fn random_swap_preserves_logical_view() {
        let mut mc = MemoryController::with_random_swap(device(6), 2, 99);
        for i in 0..6 {
            mc.seed(LogicalSegment(i), &vec![i as u8; 256]).unwrap();
        }
        for round in 0..50u8 {
            mc.write(LogicalSegment((round % 6) as usize), &vec![round; 256])
                .unwrap();
            // After each write the most recent content must read back.
            assert_eq!(
                mc.read(LogicalSegment((round % 6) as usize)).unwrap(),
                vec![round; 256]
            );
            assert!(mc.remap_is_consistent());
        }
        assert!(mc.stats().swaps > 0);
    }

    #[test]
    fn wear_leveling_adds_flips() {
        // Identical writes to one segment: without wear leveling zero
        // flips after the first; with psi=1 random swap, relocations keep
        // flipping bits.
        let run = |mut mc: MemoryController| -> u64 {
            for i in 0..6 {
                mc.seed(LogicalSegment(i), &vec![(i as u8).wrapping_mul(37); 256])
                    .unwrap();
            }
            mc.reset_stats();
            for _ in 0..100 {
                mc.write(LogicalSegment(0), &vec![0u8.wrapping_mul(37); 256])
                    .unwrap();
            }
            mc.stats().bits_flipped
        };
        let without = run(MemoryController::without_wear_leveling(device(6)));
        let with = run(MemoryController::with_random_swap(device(6), 1, 5));
        assert!(without < with, "without={without} with={with}");
    }

    #[test]
    fn out_of_range_logical_rejected() {
        let mut mc = MemoryController::with_start_gap(device(4), 10);
        // Logical capacity is 3; index 3 is invalid.
        assert!(mc.write(LogicalSegment(3), &vec![0u8; 256]).is_err());
    }

    #[test]
    fn swap_traffic_included_in_write_report() {
        let mut mc = MemoryController::with_random_swap(device(4), 1, 3);
        for i in 0..4 {
            mc.seed(LogicalSegment(i), &vec![0xA5u8.wrapping_add(i as u8); 256])
                .unwrap();
        }
        let r = mc.write(LogicalSegment(0), &vec![0xA5u8; 256]).unwrap();
        // The report includes the swap's flips, which are nonzero because
        // the partner segment has different content.
        assert!(r.bits_flipped > 0);
    }

    #[test]
    fn retire_quarantines_the_backing_physical_slot() {
        let mut mc = MemoryController::with_start_gap(device(4), 1);
        // Drive relocations until logical 0 is no longer backed by
        // physical 0.
        for _ in 0..3 {
            mc.write(LogicalSegment(0), &vec![1u8; 256]).unwrap();
        }
        let backing = mc.remap().physical(LogicalSegment(0)).unwrap();
        assert_ne!(
            backing,
            PhysicalSegment(0),
            "relocation should have moved it"
        );
        let retired = mc.retire(LogicalSegment(0)).unwrap();
        assert_eq!(retired, backing, "retirement must hit the live translation");
        assert!(mc.is_retired(backing));
        assert!(!mc.is_retired(PhysicalSegment(0)));
        assert_eq!(mc.retired_physical_count(), 1);
        assert_eq!(mc.retired_physical(), vec![backing]);
    }

    #[test]
    fn relocations_route_around_retired_slots() {
        let mut mc = MemoryController::with_start_gap(device(5), 1);
        mc.retire(LogicalSegment(1)).unwrap();
        let dead = mc.remap().physical(LogicalSegment(1)).unwrap();
        for i in 0..40usize {
            mc.write(LogicalSegment(i % 4), &vec![i as u8; 256])
                .unwrap();
            assert!(mc.remap_is_consistent());
            // The retired slot keeps its preimage forever: nothing moves
            // in (it can't be the gap) and its content never relocates
            // out via wear leveling.
            assert_eq!(
                mc.remap().logical(dead),
                Some(LogicalSegment(1)),
                "retired slot must not participate in rotation"
            );
        }
        // The policy routed *around* the dead slot rather than proposing
        // actions the controller would then have to veto.
        assert_eq!(mc.skipped_relocations(), 0);
    }

    #[test]
    fn relocation_never_wears_out_a_segment() {
        // Tiny endurance budget + psi=1 start-gap: every write proposes a
        // relocation, and without the headroom pre-check a relocation
        // write would be the one that crosses the limit.
        let cfg = DeviceConfig::builder()
            .segment_bytes(64)
            .num_segments(4)
            .fault(FaultConfig {
                seed: 7,
                endurance_bits: 40_000,
                endurance_shape: 3.0,
                transient_rate: 0.0,
            })
            .build()
            .unwrap();
        let mut mc = MemoryController::with_start_gap(NvmDevice::new(cfg), 1);
        let mut user_wearouts = 0;
        for i in 0..20_000usize {
            let pattern = vec![(i % 251) as u8; 64];
            match mc.write(LogicalSegment(i % 3), &pattern) {
                Ok(_) => {}
                Err(SimError::SegmentWornOut { .. }) => user_wearouts += 1,
                Err(e) => panic!("unexpected error: {e}"),
            }
            assert!(mc.remap_is_consistent());
        }
        // Wear-outs happened (the budget is tiny) but every one of them
        // surfaced on a user write, never inside a relocation.
        assert!(user_wearouts > 0, "budget was supposed to be exceeded");
        assert!(mc.skipped_relocations() > 0, "pre-check never engaged");
    }

    #[test]
    fn export_restore_roundtrips_mid_rotation() {
        let mut mc = MemoryController::with_start_gap(device(5), 2);
        for i in 0..17usize {
            mc.write(LogicalSegment(i % 4), &vec![i as u8; 256])
                .unwrap();
        }
        mc.retire(LogicalSegment(2)).unwrap();
        let state = mc.export_state();
        assert!(!mc.remap().is_identity());

        // Clone the device image the cheap way: replay contents into a
        // fresh device (wear state is irrelevant to this test).
        let mut dev2 = device(5);
        for p in 0..5 {
            let content = mc.device().peek(PhysicalSegment(p)).to_vec();
            dev2.seed_segment(PhysicalSegment(p), &content).unwrap();
        }
        let mut mc2 = MemoryController::from_state(dev2, &state).unwrap();

        assert_eq!(mc2.export_state(), state);
        assert_eq!(mc2.num_segments(), mc.num_segments());
        assert_eq!(mc2.retired_physical(), mc.retired_physical());
        for l in 0..4 {
            assert_eq!(
                mc.peek(LogicalSegment(l)).unwrap(),
                mc2.peek(LogicalSegment(l)).unwrap(),
                "logical {l} must read identically after restore"
            );
        }
        // Both controllers keep proposing identical relocations.
        for i in 0..12usize {
            let ra = mc.write(LogicalSegment(i % 4), &vec![0x5Au8; 256]).unwrap();
            let rb = mc2
                .write(LogicalSegment(i % 4), &vec![0x5Au8; 256])
                .unwrap();
            assert_eq!(ra.lines_written, rb.lines_written);
            assert_eq!(
                mc.remap().forward_table(),
                mc2.remap().forward_table(),
                "restored rotation diverged at write {i}"
            );
        }
    }

    #[test]
    fn from_state_rejects_inconsistent_tables() {
        let state = ControllerState {
            policy: WearPolicyState::None,
            remap: vec![0, 0, 1, 2],
            retired: vec![false; 4],
        };
        assert!(MemoryController::from_state(device(4), &state).is_err());
        let state = ControllerState {
            policy: WearPolicyState::None,
            remap: (0..4).collect(),
            retired: vec![false; 3],
        };
        assert!(MemoryController::from_state(device(4), &state).is_err());
    }

    #[test]
    fn heatmap_views_agree_only_modulo_the_remap() {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(256)
                .num_segments(4)
                .wear_tracking(WearTracking::PerSegment)
                .build()
                .unwrap(),
        );
        let mut mc = MemoryController::with_start_gap(dev, 1);
        for i in 0..9usize {
            mc.write(LogicalSegment(i % 3), &vec![i as u8; 256])
                .unwrap();
        }
        let logical = mc.wear_heatmap_json();
        let physical = mc.device().wear_heatmap_json();
        assert!(logical.contains("\"address_space\":\"logical\""));
        assert!(physical.contains("\"address_space\":\"physical\""));
        assert!(!mc.remap().is_identity(), "psi=1 must have rotated by now");

        // Pull the per-segment write arrays back out and check the
        // logical view is exactly the physical view pulled through the
        // live remap.
        fn writes_array(doc: &str) -> Vec<u64> {
            let start =
                doc.find("\"per_segment_writes\":[").unwrap() + "\"per_segment_writes\":[".len();
            let end = start + doc[start..].find(']').unwrap();
            doc[start..end]
                .split(',')
                .map(|s| s.parse().unwrap())
                .collect()
        }
        let lw = writes_array(&logical);
        let pw = writes_array(&physical);
        assert_eq!(lw.len(), 3);
        assert_eq!(pw.len(), 4);
        for (l, p) in mc.remap().iter() {
            assert_eq!(lw[l.index()], pw[p.index()], "mismatch at {l}->{p}");
        }
    }
}
