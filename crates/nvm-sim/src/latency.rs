//! Latency model.
//!
//! Optane write latency is dominated by the number of cache lines that
//! actually reach the media: the controller skips lines whose content is
//! unchanged, which the paper identifies as the source of the latency
//! improvement in its Figure 1 ("the ability to write fewer cache lines
//! when the cache line to be written is identical to the one in the
//! memory segment").

use serde::{Deserialize, Serialize};

/// Parameters of the latency model, in nanoseconds.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyParams {
    /// Fixed cost of issuing a write request (XPLine fill, protocol).
    pub write_base_ns: f64,
    /// Cost per cache line written to media.
    pub write_line_ns: f64,
    /// Fixed cost of a read request.
    pub read_base_ns: f64,
    /// Cost per cache line read.
    pub read_line_ns: f64,
}

impl Default for LatencyParams {
    fn default() -> Self {
        // Shapes taken from published Optane characterization studies:
        // ~100 ns sequential write issue cost, ~60 ns per additional
        // line, ~170 ns random read. Absolute values only matter
        // relative to each other here.
        Self {
            write_base_ns: 95.0,
            write_line_ns: 62.0,
            read_base_ns: 170.0,
            read_line_ns: 12.0,
        }
    }
}

impl LatencyParams {
    /// System-level calibration matching Figure 1's latency curve: the
    /// fixed request cost (PMDK transaction, XPBuffer admission)
    /// dominates, so skipping lines saves a moderate fraction.
    pub fn system_level() -> Self {
        Self {
            write_base_ns: 300.0,
            ..Self::default()
        }
    }

    /// Latency of a write that transferred `lines_written` lines.
    #[inline]
    pub fn write_ns(&self, lines_written: u64) -> f64 {
        self.write_base_ns + lines_written as f64 * self.write_line_ns
    }

    /// Latency of reading `lines` cache lines.
    #[inline]
    pub fn read_ns(&self, lines: u64) -> f64 {
        self.read_base_ns + lines as f64 * self.read_line_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skipped_lines_reduce_latency() {
        let p = LatencyParams::default();
        assert!(p.write_ns(0) < p.write_ns(4));
        let saving = 1.0 - p.write_ns(0) / p.write_ns(4);
        // All-identical 256B block overwrite should be meaningfully
        // faster, in line with Figure 1's latency curve.
        assert!(saving > 0.5, "saving={saving}");
    }

    #[test]
    fn read_scales_with_lines() {
        let p = LatencyParams::default();
        assert_eq!(p.read_ns(0), p.read_base_ns);
        assert!(p.read_ns(8) > p.read_ns(1));
    }
}
