//! Wear-leveling policies for the memory controller.
//!
//! Real Optane controllers run proprietary wear leveling; prior work (and
//! the paper's §2.1) characterizes it as a segment swap every ψ writes,
//! with ψ on the order of tens of writes. Two standard policies are
//! modeled: start-gap rotation (Qureshi et al., MICRO '09) and a random
//! swap. Policies operate purely on [`PhysicalSegment`] ids — relocation
//! is a *device-space* concern; logical names never move. The controller
//! applies each proposed [`SwapAction`] to the device and its
//! [`crate::SegmentRemap`], then confirms it via
//! [`WearLeveler::on_applied`].
//!
//! The propose/confirm split matters because an action can be *skipped*:
//! the controller refuses relocations that would touch a retired segment
//! or push a segment over its endurance limit (relocation traffic must
//! never be the thing that kills a segment). A policy only advances its
//! own bookkeeping — e.g. the start-gap position — when the controller
//! confirms the action actually happened.

use crate::addr::PhysicalSegment;
use serde::{Deserialize, Serialize};

/// A physical relocation the controller must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapAction {
    /// Exchange the contents of two physical segments.
    Swap(PhysicalSegment, PhysicalSegment),
    /// Move the contents of `src` into the unmapped gap segment,
    /// making `src` the new gap. Used by start-gap.
    MoveToGap {
        /// Segment whose content moves.
        src: PhysicalSegment,
        /// Current gap segment receiving the content.
        gap: PhysicalSegment,
    },
}

/// Read-only view of the controller's retired-segment set, handed to
/// policies so they can route relocations around quarantined slots.
#[derive(Debug, Clone, Copy)]
pub struct RetiredSet<'a>(&'a [bool]);

impl<'a> RetiredSet<'a> {
    /// Wrap a per-physical-segment retired flag slice.
    pub fn new(flags: &'a [bool]) -> Self {
        Self(flags)
    }

    /// Whether physical segment `p` is retired (quarantined).
    pub fn is_retired(&self, p: PhysicalSegment) -> bool {
        self.0.get(p.0).copied().unwrap_or(false)
    }

    /// Number of retired segments.
    pub fn count(&self) -> usize {
        self.0.iter().filter(|&&r| r).count()
    }
}

/// Serializable snapshot of a wear-leveling policy's internal state,
/// exported for persistence ([`WearLeveler::export`]) and restored by
/// the controller on recovery. Deterministic policies resume exactly
/// where they left off — including the random-swap RNG, which is a
/// counter-based stream precisely so this snapshot stays small.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WearPolicyState {
    /// No wear leveling.
    None,
    /// Start-gap rotation state.
    StartGap {
        /// Swap period ψ.
        psi: u64,
        /// Writes observed so far.
        writes: u64,
        /// Current gap slot.
        gap: PhysicalSegment,
    },
    /// Random-swap state.
    RandomSwap {
        /// Swap period ψ.
        psi: u64,
        /// RNG stream seed.
        seed: u64,
        /// Writes observed so far.
        writes: u64,
        /// RNG draws consumed so far.
        draws: u64,
    },
}

/// A wear-leveling policy. Called once per successful write; returns a
/// relocation proposal when the policy's period elapses. The controller
/// confirms applied proposals via [`WearLeveler::on_applied`]; a
/// proposal that is never confirmed was skipped and must not advance
/// the policy's position.
pub trait WearLeveler: Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;

    /// Notify the policy of one write to physical segment `segment`;
    /// returns a proposed action when a relocation is due. `retired`
    /// lets the policy route around quarantined slots. Proposing must
    /// not assume the action will be applied — position bookkeeping
    /// belongs in [`WearLeveler::on_applied`].
    fn on_write(
        &mut self,
        segment: PhysicalSegment,
        retired: &RetiredSet<'_>,
    ) -> Option<SwapAction>;

    /// The controller applied `action` to the device and remap table;
    /// commit any position bookkeeping tied to it.
    fn on_applied(&mut self, action: &SwapAction) {
        let _ = action;
    }

    /// Swap period ψ (writes between relocations), if periodic.
    fn period(&self) -> Option<u64>;

    /// Export the policy's internal state for persistence.
    fn export(&self) -> WearPolicyState;
}

/// No wear leveling at all.
#[derive(Debug, Default, Clone)]
pub struct NoWearLeveling;

impl WearLeveler for NoWearLeveling {
    fn name(&self) -> &'static str {
        "none"
    }
    fn on_write(
        &mut self,
        _segment: PhysicalSegment,
        _retired: &RetiredSet<'_>,
    ) -> Option<SwapAction> {
        None
    }
    fn period(&self) -> Option<u64> {
        None
    }
    fn export(&self) -> WearPolicyState {
        WearPolicyState::None
    }
}

/// Start-gap wear leveling: one physical segment is kept as a *gap*
/// (no logical preimage); every ψ writes the segment preceding the gap
/// moves into it, rotating the whole address space over time.
///
/// Retired-aware: the rotation walks backward past quarantined
/// predecessors rather than proposing a move out of a dead slot. If
/// every candidate is retired the rotation halts — the device is
/// nearly dead at that point and retirement reporting takes over.
#[derive(Debug, Clone)]
pub struct StartGap {
    psi: u64,
    writes: u64,
    gap: PhysicalSegment,
    num_segments: usize,
}

impl StartGap {
    /// Create a start-gap leveler over `num_segments` physical segments
    /// (the last one starts as the gap) acting every `psi` writes.
    ///
    /// # Panics
    /// Panics if `psi == 0` or `num_segments < 2`.
    pub fn new(num_segments: usize, psi: u64) -> Self {
        assert!(psi > 0, "StartGap: psi must be >= 1");
        assert!(num_segments >= 2, "StartGap: need at least 2 segments");
        Self {
            psi,
            writes: 0,
            gap: PhysicalSegment(num_segments - 1),
            num_segments,
        }
    }

    /// Rebuild a leveler from persisted [`WearPolicyState::StartGap`]
    /// fields, resuming exactly where it left off.
    ///
    /// # Panics
    /// Panics if `psi == 0`, `num_segments < 2`, or the gap is out of
    /// range.
    pub fn restore(num_segments: usize, psi: u64, writes: u64, gap: PhysicalSegment) -> Self {
        assert!(psi > 0, "StartGap: psi must be >= 1");
        assert!(num_segments >= 2, "StartGap: need at least 2 segments");
        assert!(gap.0 < num_segments, "StartGap: gap out of range");
        Self {
            psi,
            writes,
            gap,
            num_segments,
        }
    }

    /// The current gap segment (the one physical slot with no logical
    /// preimage).
    pub fn gap(&self) -> PhysicalSegment {
        self.gap
    }
}

impl WearLeveler for StartGap {
    fn name(&self) -> &'static str {
        "start-gap"
    }

    fn on_write(
        &mut self,
        _segment: PhysicalSegment,
        retired: &RetiredSet<'_>,
    ) -> Option<SwapAction> {
        self.writes += 1;
        if self.writes % self.psi != 0 {
            return None;
        }
        // Walk backward from the gap, skipping retired slots; give up
        // after a full lap (everything else retired).
        let mut src = (self.gap.0 + self.num_segments - 1) % self.num_segments;
        for _ in 0..self.num_segments - 1 {
            if !retired.is_retired(PhysicalSegment(src)) {
                return Some(SwapAction::MoveToGap {
                    src: PhysicalSegment(src),
                    gap: self.gap,
                });
            }
            src = (src + self.num_segments - 1) % self.num_segments;
        }
        None
    }

    fn on_applied(&mut self, action: &SwapAction) {
        if let SwapAction::MoveToGap { src, .. } = action {
            self.gap = *src;
        }
    }

    fn period(&self) -> Option<u64> {
        Some(self.psi)
    }

    fn export(&self) -> WearPolicyState {
        WearPolicyState::StartGap {
            psi: self.psi,
            writes: self.writes,
            gap: self.gap,
        }
    }
}

/// SplitMix64 — the same tiny deterministic generator the fault model
/// uses; counter-based here so the RNG state serializes as two u64s.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Random-swap wear leveling: every ψ writes, the most recently written
/// segment is swapped with a uniformly random other segment — the model
/// of proprietary controllers used by the paper's Figure 2.
///
/// Retired-aware: partners are redrawn until a live one comes up (with
/// a bounded number of attempts), and no proposal is made at all when
/// the written segment itself is quarantined mid-flight.
#[derive(Debug, Clone)]
pub struct RandomSwap {
    psi: u64,
    writes: u64,
    num_segments: usize,
    seed: u64,
    draws: u64,
}

impl RandomSwap {
    /// Create a random-swap leveler acting every `psi` writes.
    ///
    /// # Panics
    /// Panics if `psi == 0` or `num_segments < 2`.
    pub fn new(num_segments: usize, psi: u64, seed: u64) -> Self {
        assert!(psi > 0, "RandomSwap: psi must be >= 1");
        assert!(num_segments >= 2, "RandomSwap: need at least 2 segments");
        Self {
            psi,
            writes: 0,
            num_segments,
            seed,
            draws: 0,
        }
    }

    /// Rebuild a leveler from persisted [`WearPolicyState::RandomSwap`]
    /// fields; the counter-based RNG resumes its stream exactly.
    ///
    /// # Panics
    /// Panics if `psi == 0` or `num_segments < 2`.
    pub fn restore(num_segments: usize, psi: u64, seed: u64, writes: u64, draws: u64) -> Self {
        assert!(psi > 0, "RandomSwap: psi must be >= 1");
        assert!(num_segments >= 2, "RandomSwap: need at least 2 segments");
        Self {
            psi,
            writes,
            num_segments,
            seed,
            draws,
        }
    }

    fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        splitmix64(
            self.seed
                .wrapping_add(self.draws.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        )
    }
}

impl WearLeveler for RandomSwap {
    fn name(&self) -> &'static str {
        "random-swap"
    }

    fn on_write(
        &mut self,
        segment: PhysicalSegment,
        retired: &RetiredSet<'_>,
    ) -> Option<SwapAction> {
        self.writes += 1;
        if self.writes % self.psi != 0 {
            return None;
        }
        if retired.is_retired(segment) {
            return None;
        }
        // Pick a live partner different from the written segment;
        // bounded redraws so a mostly-retired device can't spin.
        for _ in 0..4 * self.num_segments {
            let mut other = (self.next_u64() % (self.num_segments as u64 - 1)) as usize;
            if other >= segment.0 {
                other += 1;
            }
            let other = PhysicalSegment(other);
            if !retired.is_retired(other) {
                return Some(SwapAction::Swap(segment, other));
            }
        }
        None
    }

    fn period(&self) -> Option<u64> {
        Some(self.psi)
    }

    fn export(&self) -> WearPolicyState {
        WearPolicyState::RandomSwap {
            psi: self.psi,
            seed: self.seed,
            writes: self.writes,
            draws: self.draws,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NONE: [bool; 0] = [];

    fn live() -> RetiredSet<'static> {
        RetiredSet::new(&NONE)
    }

    #[test]
    fn no_wear_leveling_never_acts() {
        let mut wl = NoWearLeveling;
        for i in 0..1000 {
            assert!(wl.on_write(PhysicalSegment(i % 7), &live()).is_none());
        }
        assert_eq!(wl.period(), None);
        assert_eq!(wl.export(), WearPolicyState::None);
    }

    #[test]
    fn start_gap_rotates_every_psi() {
        let mut wl = StartGap::new(4, 3);
        let s0 = PhysicalSegment(0);
        assert!(wl.on_write(s0, &live()).is_none());
        assert!(wl.on_write(s0, &live()).is_none());
        // Third write proposes: segment 2 moves into gap 3. The gap
        // only advances once the controller confirms the move.
        let action = wl.on_write(s0, &live()).expect("psi elapsed");
        assert_eq!(
            action,
            SwapAction::MoveToGap {
                src: PhysicalSegment(2),
                gap: PhysicalSegment(3)
            }
        );
        assert_eq!(wl.gap(), PhysicalSegment(3), "gap unchanged until applied");
        wl.on_applied(&action);
        assert_eq!(wl.gap(), PhysicalSegment(2));
        // Next confirmed trigger moves segment 1 into gap 2.
        wl.on_write(s0, &live());
        wl.on_write(s0, &live());
        let action = wl.on_write(s0, &live()).expect("psi elapsed");
        assert_eq!(
            action,
            SwapAction::MoveToGap {
                src: PhysicalSegment(1),
                gap: PhysicalSegment(2)
            }
        );
    }

    #[test]
    fn start_gap_skipped_proposal_does_not_move_gap() {
        let mut wl = StartGap::new(4, 1);
        let first = wl.on_write(PhysicalSegment(0), &live()).unwrap();
        // Controller skipped it (e.g. unsafe relocation): no on_applied.
        let second = wl.on_write(PhysicalSegment(0), &live()).unwrap();
        assert_eq!(first, second, "unconfirmed proposal must be re-proposed");
    }

    #[test]
    fn start_gap_gap_wraps_around() {
        let mut wl = StartGap::new(3, 1);
        let mut gaps = vec![wl.gap().0];
        for _ in 0..6 {
            if let Some(a) = wl.on_write(PhysicalSegment(0), &live()) {
                wl.on_applied(&a);
            }
            gaps.push(wl.gap().0);
        }
        // Gap cycles 2 -> 1 -> 0 -> 2 -> ...
        assert_eq!(gaps, vec![2, 1, 0, 2, 1, 0, 2]);
    }

    #[test]
    fn start_gap_walks_past_retired_predecessor() {
        let mut wl = StartGap::new(4, 1);
        // Slot 2 (the gap's predecessor) is quarantined.
        let flags = [false, false, true, false];
        let retired = RetiredSet::new(&flags);
        let action = wl.on_write(PhysicalSegment(0), &retired).unwrap();
        assert_eq!(
            action,
            SwapAction::MoveToGap {
                src: PhysicalSegment(1),
                gap: PhysicalSegment(3)
            }
        );
    }

    #[test]
    fn start_gap_halts_when_all_candidates_retired() {
        let mut wl = StartGap::new(3, 1);
        let flags = [true, true, false];
        let retired = RetiredSet::new(&flags);
        assert!(wl.on_write(PhysicalSegment(2), &retired).is_none());
    }

    #[test]
    fn start_gap_restore_resumes_exactly() {
        let mut a = StartGap::new(5, 3);
        for _ in 0..7 {
            if let Some(act) = a.on_write(PhysicalSegment(0), &live()) {
                a.on_applied(&act);
            }
        }
        let WearPolicyState::StartGap { psi, writes, gap } = a.export() else {
            panic!("wrong state kind");
        };
        let mut b = StartGap::restore(5, psi, writes, gap);
        for _ in 0..10 {
            let x = a.on_write(PhysicalSegment(1), &live());
            let y = b.on_write(PhysicalSegment(1), &live());
            assert_eq!(x, y);
            if let Some(act) = x {
                a.on_applied(&act);
                b.on_applied(&act);
            }
        }
    }

    #[test]
    fn random_swap_partner_differs() {
        let mut wl = RandomSwap::new(8, 1, 42);
        for i in 0..200 {
            let seg = PhysicalSegment(i % 8);
            match wl.on_write(seg, &live()) {
                Some(SwapAction::Swap(a, b)) => {
                    assert_ne!(a, b);
                    assert!(b.0 < 8);
                    assert_eq!(a, seg);
                }
                other => panic!("expected swap every write, got {other:?}"),
            }
        }
    }

    #[test]
    fn random_swap_respects_period() {
        let mut wl = RandomSwap::new(4, 5, 1);
        let actions: Vec<bool> = (0..20)
            .map(|i| wl.on_write(PhysicalSegment(i % 4), &live()).is_some())
            .collect();
        let count = actions.iter().filter(|&&x| x).count();
        assert_eq!(count, 4);
        assert!(actions[4] && actions[9] && actions[14] && actions[19]);
    }

    #[test]
    fn random_swap_avoids_retired_partner() {
        let mut wl = RandomSwap::new(4, 1, 7);
        // Only slot 3 is a legal partner for writes to slot 0.
        let flags = [false, true, true, false];
        let retired = RetiredSet::new(&flags);
        for _ in 0..50 {
            match wl.on_write(PhysicalSegment(0), &retired) {
                Some(SwapAction::Swap(_, b)) => assert_eq!(b, PhysicalSegment(3)),
                other => panic!("expected swap, got {other:?}"),
            }
        }
    }

    #[test]
    fn random_swap_restore_resumes_stream() {
        let mut a = RandomSwap::new(8, 2, 99);
        for i in 0..11 {
            a.on_write(PhysicalSegment(i % 8), &live());
        }
        let WearPolicyState::RandomSwap {
            psi,
            seed,
            writes,
            draws,
        } = a.export()
        else {
            panic!("wrong state kind");
        };
        let mut b = RandomSwap::restore(8, psi, seed, writes, draws);
        for i in 0..20 {
            let seg = PhysicalSegment((i * 3) % 8);
            assert_eq!(a.on_write(seg, &live()), b.on_write(seg, &live()));
        }
    }

    #[test]
    #[should_panic(expected = "psi must be >= 1")]
    fn zero_psi_rejected() {
        StartGap::new(4, 0);
    }
}
