//! Wear-leveling policies for the memory controller.
//!
//! Real Optane controllers run proprietary wear leveling; prior work (and
//! the paper's §2.1) characterizes it as a segment swap every ψ writes,
//! with ψ on the order of tens of writes. Two standard policies are
//! modeled: start-gap rotation (Qureshi et al., MICRO '09) and a random
//! swap. Both operate purely on segment indices; the controller applies
//! the resulting [`SwapAction`]s to the device and its remap table.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A physical relocation the controller must perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwapAction {
    /// Exchange the contents of two physical segments.
    Swap(usize, usize),
    /// Move the contents of `.0` into the (gap) segment `.1`, making
    /// `.0` the new gap. Used by start-gap.
    MoveToGap {
        /// Segment whose content moves.
        src: usize,
        /// Current gap segment receiving the content.
        gap: usize,
    },
}

/// A wear-leveling policy. Called once per logical write; returns a
/// relocation when the policy's period elapses.
pub trait WearLeveler: Send {
    /// Human-readable policy name.
    fn name(&self) -> &'static str;
    /// Notify the policy of one write to physical segment `segment`;
    /// returns an action when a relocation is due.
    fn on_write(&mut self, segment: usize) -> Option<SwapAction>;
    /// Swap period ψ (writes between relocations), if periodic.
    fn period(&self) -> Option<u64>;
}

/// No wear leveling at all.
#[derive(Debug, Default, Clone)]
pub struct NoWearLeveling;

impl WearLeveler for NoWearLeveling {
    fn name(&self) -> &'static str {
        "none"
    }
    fn on_write(&mut self, _segment: usize) -> Option<SwapAction> {
        None
    }
    fn period(&self) -> Option<u64> {
        None
    }
}

/// Start-gap wear leveling: one segment is kept as a *gap*; every ψ
/// writes the segment preceding the gap moves into it, rotating the
/// whole address space over time.
#[derive(Debug, Clone)]
pub struct StartGap {
    psi: u64,
    writes: u64,
    gap: usize,
    num_segments: usize,
}

impl StartGap {
    /// Create a start-gap leveler over `num_segments` physical segments
    /// (the last one starts as the gap) acting every `psi` writes.
    ///
    /// # Panics
    /// Panics if `psi == 0` or `num_segments < 2`.
    pub fn new(num_segments: usize, psi: u64) -> Self {
        assert!(psi > 0, "StartGap: psi must be >= 1");
        assert!(num_segments >= 2, "StartGap: need at least 2 segments");
        Self {
            psi,
            writes: 0,
            gap: num_segments - 1,
            num_segments,
        }
    }

    /// The current gap segment.
    pub fn gap(&self) -> usize {
        self.gap
    }
}

impl WearLeveler for StartGap {
    fn name(&self) -> &'static str {
        "start-gap"
    }

    fn on_write(&mut self, _segment: usize) -> Option<SwapAction> {
        self.writes += 1;
        if self.writes % self.psi != 0 {
            return None;
        }
        let src = (self.gap + self.num_segments - 1) % self.num_segments;
        let action = SwapAction::MoveToGap { src, gap: self.gap };
        self.gap = src;
        Some(action)
    }

    fn period(&self) -> Option<u64> {
        Some(self.psi)
    }
}

/// Random-swap wear leveling: every ψ writes, the most recently written
/// segment is swapped with a uniformly random other segment — the model
/// of proprietary controllers used by the paper's Figure 2.
#[derive(Debug)]
pub struct RandomSwap {
    psi: u64,
    writes: u64,
    num_segments: usize,
    rng: StdRng,
}

impl RandomSwap {
    /// Create a random-swap leveler acting every `psi` writes.
    ///
    /// # Panics
    /// Panics if `psi == 0` or `num_segments < 2`.
    pub fn new(num_segments: usize, psi: u64, seed: u64) -> Self {
        assert!(psi > 0, "RandomSwap: psi must be >= 1");
        assert!(num_segments >= 2, "RandomSwap: need at least 2 segments");
        Self {
            psi,
            writes: 0,
            num_segments,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl WearLeveler for RandomSwap {
    fn name(&self) -> &'static str {
        "random-swap"
    }

    fn on_write(&mut self, segment: usize) -> Option<SwapAction> {
        self.writes += 1;
        if self.writes % self.psi != 0 {
            return None;
        }
        // Pick a partner different from the written segment.
        let mut other = self.rng.gen_range(0..self.num_segments - 1);
        if other >= segment {
            other += 1;
        }
        Some(SwapAction::Swap(segment, other))
    }

    fn period(&self) -> Option<u64> {
        Some(self.psi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_wear_leveling_never_acts() {
        let mut wl = NoWearLeveling;
        for i in 0..1000 {
            assert!(wl.on_write(i % 7).is_none());
        }
        assert_eq!(wl.period(), None);
    }

    #[test]
    fn start_gap_rotates_every_psi() {
        let mut wl = StartGap::new(4, 3);
        assert!(wl.on_write(0).is_none());
        assert!(wl.on_write(0).is_none());
        // Third write triggers: segment 2 moves into gap 3.
        assert_eq!(
            wl.on_write(0),
            Some(SwapAction::MoveToGap { src: 2, gap: 3 })
        );
        assert_eq!(wl.gap(), 2);
        // Next trigger moves segment 1 into gap 2.
        wl.on_write(0);
        wl.on_write(0);
        assert_eq!(
            wl.on_write(0),
            Some(SwapAction::MoveToGap { src: 1, gap: 2 })
        );
    }

    #[test]
    fn start_gap_gap_wraps_around() {
        let mut wl = StartGap::new(3, 1);
        let mut gaps = vec![wl.gap()];
        for _ in 0..6 {
            wl.on_write(0);
            gaps.push(wl.gap());
        }
        // Gap cycles 2 -> 1 -> 0 -> 2 -> ...
        assert_eq!(gaps, vec![2, 1, 0, 2, 1, 0, 2]);
    }

    #[test]
    fn random_swap_partner_differs() {
        let mut wl = RandomSwap::new(8, 1, 42);
        for i in 0..200 {
            match wl.on_write(i % 8) {
                Some(SwapAction::Swap(a, b)) => {
                    assert_ne!(a, b);
                    assert!(b < 8);
                    assert_eq!(a, i % 8);
                }
                other => panic!("expected swap every write, got {other:?}"),
            }
        }
    }

    #[test]
    fn random_swap_respects_period() {
        let mut wl = RandomSwap::new(4, 5, 1);
        let actions: Vec<bool> = (0..20).map(|i| wl.on_write(i % 4).is_some()).collect();
        let count = actions.iter().filter(|&&x| x).count();
        assert_eq!(count, 4);
        assert!(actions[4] && actions[9] && actions[14] && actions[19]);
    }

    #[test]
    #[should_panic(expected = "psi must be >= 1")]
    fn zero_psi_rejected() {
        StartGap::new(4, 0);
    }
}
