//! DATACON (Song et al., ISMM '20): data-content-aware redirection.
//!
//! The controller keeps pools of free segments whose cells were reset to
//! all-zeros or all-ones. An incoming write is redirected to the pool
//! matching its majority bit value, so only the minority bits need
//! programming. Freed segments are re-reset in the background; those
//! reset flips are charged to the scheme when enabled (they happen off
//! the critical path but still wear the cells).

use crate::scheme::PlacementScheme;
use e2nvm_sim::bitops::popcount;
use e2nvm_sim::LogicalSegment;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// The DATACON placement scheme.
#[derive(Debug, Clone)]
pub struct Datacon {
    zeros: VecDeque<LogicalSegment>,
    ones: VecDeque<LogicalSegment>,
    /// Flips spent re-resetting recycled segments (background wear).
    pub reset_flips: u64,
    /// When true, recycled segments are counted as reset to the polarity
    /// of their majority content (fewest reset flips).
    charge_resets: bool,
}

impl Datacon {
    /// Create an empty scheme. `charge_resets` controls whether the
    /// background reset flips are accumulated in
    /// [`Datacon::reset_flips`].
    pub fn new(charge_resets: bool) -> Self {
        Self {
            zeros: VecDeque::new(),
            ones: VecDeque::new(),
            reset_flips: 0,
            charge_resets,
        }
    }

    /// Pool sizes `(zeros, ones)` (diagnostics).
    pub fn pool_sizes(&self) -> (usize, usize) {
        (self.zeros.len(), self.ones.len())
    }

    fn classify(content: &[u8]) -> bool {
        // true = majority ones.
        let bits = (content.len() * 8) as u64;
        popcount(content) * 2 >= bits
    }
}

impl Default for Datacon {
    fn default() -> Self {
        Self::new(true)
    }
}

impl PlacementScheme for Datacon {
    fn name(&self) -> &'static str {
        "DATACON"
    }

    fn initialize(&mut self, free: &[(LogicalSegment, Vec<u8>)], _rng: &mut StdRng) {
        self.zeros.clear();
        self.ones.clear();
        for (seg, content) in free {
            // Initialization models the maintenance pass: every free
            // segment is reset toward its majority polarity.
            if Self::classify(content) {
                if self.charge_resets {
                    let bits = (content.len() * 8) as u64;
                    self.reset_flips += bits - popcount(content);
                }
                self.ones.push_back(*seg);
            } else {
                if self.charge_resets {
                    self.reset_flips += popcount(content);
                }
                self.zeros.push_back(*seg);
            }
        }
    }

    fn choose(&mut self, data: &[u8]) -> Option<LogicalSegment> {
        let want_ones = Self::classify(data);
        let (primary, fallback) = if want_ones {
            (&mut self.ones, &mut self.zeros)
        } else {
            (&mut self.zeros, &mut self.ones)
        };
        primary.pop_front().or_else(|| fallback.pop_front())
    }

    fn recycle(&mut self, seg: LogicalSegment, content: &[u8]) {
        // Background reset to the cheaper polarity.
        let bits = (content.len() * 8) as u64;
        let ones = popcount(content);
        if ones * 2 >= bits {
            if self.charge_resets {
                self.reset_flips += bits - ones;
            }
            self.ones.push_back(seg);
        } else {
            if self.charge_resets {
                self.reset_flips += ones;
            }
            self.zeros.push_back(seg);
        }
    }

    fn free_count(&self) -> usize {
        self.zeros.len() + self.ones.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_ml::rng::seeded;

    fn seg(i: usize) -> LogicalSegment {
        LogicalSegment(i)
    }

    #[test]
    fn routes_by_majority() {
        let mut d = Datacon::new(false);
        let mut rng = seeded(1);
        d.initialize(
            &[
                (seg(0), vec![0x00; 8]), // zeros pool
                (seg(1), vec![0xFF; 8]), // ones pool
            ],
            &mut rng,
        );
        assert_eq!(d.pool_sizes(), (1, 1));
        // Mostly-ones data -> segment 1.
        assert_eq!(d.choose(&[0xFF, 0xFF, 0xFF, 0x0F]), Some(seg(1)));
        // Mostly-zeros data -> segment 0.
        assert_eq!(d.choose(&[0x01, 0x00, 0x00, 0x00]), Some(seg(0)));
        assert_eq!(d.choose(&[0x00; 4]), None);
    }

    #[test]
    fn falls_back_to_other_pool() {
        let mut d = Datacon::new(false);
        let mut rng = seeded(2);
        d.initialize(&[(seg(3), vec![0x00; 4])], &mut rng);
        // Wants ones pool but only zeros available.
        assert_eq!(d.choose(&[0xFF; 4]), Some(seg(3)));
    }

    #[test]
    fn recycle_counts_reset_flips() {
        let mut d = Datacon::new(true);
        // 3 ones out of 16 bits -> reset to zeros costs 3 flips.
        d.recycle(seg(0), &[0b0000_0111, 0x00]);
        assert_eq!(d.reset_flips, 3);
        assert_eq!(d.pool_sizes(), (1, 0));
        // 13 ones -> reset to ones costs 3 flips.
        d.recycle(seg(1), &[0xFF, 0b1111_1000]);
        assert_eq!(d.reset_flips, 6);
        assert_eq!(d.pool_sizes(), (1, 1));
    }

    #[test]
    fn free_count_tracks_pools() {
        let mut d = Datacon::new(false);
        let mut rng = seeded(3);
        d.initialize(
            &[(seg(0), vec![0u8; 2]), (seg(1), vec![0xFFu8; 2])],
            &mut rng,
        );
        assert_eq!(d.free_count(), 2);
        d.choose(&[0u8; 2]);
        assert_eq!(d.free_count(), 1);
        d.recycle(seg(0), &[0u8; 2]);
        assert_eq!(d.free_count(), 2);
    }
}
