//! Hamming-Tree (Kargar & Nawab, CIDR '21 / SIGMOD '23): organize free
//! memory segments in a metric tree over hamming distance and serve each
//! write from the *nearest* free segment.
//!
//! Implemented as a BK-tree (Burkhard–Keller), the standard structure
//! for discrete-metric nearest-neighbour search. Exact nearest search
//! makes Hamming-Tree the quality upper bound among the placement
//! baselines — at a per-write search cost that grows with pool size,
//! which is exactly the trade-off E2-NVM's clustering avoids.

use crate::scheme::PlacementScheme;
use e2nvm_sim::bitops::hamming;
use e2nvm_sim::LogicalSegment;
use rand::rngs::StdRng;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Node {
    seg: LogicalSegment,
    content: Vec<u8>,
    /// True once the segment was taken; tombstones are skipped in
    /// search and purged on rebuild.
    dead: bool,
    children: HashMap<u64, usize>,
}

/// BK-tree based exact-nearest placement.
#[derive(Debug, Clone, Default)]
pub struct HammingTree {
    nodes: Vec<Node>,
    root: Option<usize>,
    live: usize,
    /// Distance computations performed (cost diagnostics).
    pub distance_evals: u64,
}

impl HammingTree {
    /// An empty tree.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a free segment.
    pub fn insert(&mut self, seg: LogicalSegment, content: Vec<u8>) {
        let new_idx = self.nodes.len();
        let node = Node {
            seg,
            content,
            dead: false,
            children: HashMap::new(),
        };
        self.live += 1;
        let Some(mut cur) = self.root else {
            self.nodes.push(node);
            self.root = Some(new_idx);
            return;
        };
        loop {
            let d = hamming(&self.nodes[cur].content, &node.content);
            self.distance_evals += 1;
            if d == 0 && self.nodes[cur].dead {
                // Revive the tombstone in place (same content).
                self.nodes[cur].dead = false;
                self.nodes[cur].seg = node.seg;
                return;
            }
            match self.nodes[cur].children.get(&d) {
                Some(&child) => cur = child,
                None => {
                    self.nodes[cur].children.insert(d, new_idx);
                    self.nodes.push(node);
                    return;
                }
            }
        }
    }

    /// Exact nearest live node; marks it dead and returns it.
    fn take_nearest(&mut self, query: &[u8]) -> Option<(LogicalSegment, u64)> {
        let root = self.root?;
        if self.live == 0 {
            return None;
        }
        let mut best: Option<(usize, u64)> = None;
        let mut stack = vec![root];
        while let Some(idx) = stack.pop() {
            let d = hamming(&self.nodes[idx].content, query);
            self.distance_evals += 1;
            if !self.nodes[idx].dead && best.map_or(true, |(_, bd)| d < bd) {
                best = Some((idx, d));
            }
            let radius = best.map_or(u64::MAX, |(_, bd)| bd);
            for (&edge, &child) in &self.nodes[idx].children {
                // Triangle inequality pruning: only children whose edge
                // distance is within `radius` of `d` can contain a
                // closer node.
                if edge.abs_diff(d) <= radius {
                    stack.push(child);
                }
            }
        }
        let (idx, d) = best?;
        self.nodes[idx].dead = true;
        self.live -= 1;
        Some((self.nodes[idx].seg, d))
    }

    /// Live (available) segment count.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no live segments remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Rebuild the tree, dropping tombstones (amortized maintenance).
    pub fn rebuild(&mut self) {
        let live: Vec<(LogicalSegment, Vec<u8>)> = self
            .nodes
            .iter()
            .filter(|n| !n.dead)
            .map(|n| (n.seg, n.content.clone()))
            .collect();
        self.nodes.clear();
        self.root = None;
        self.live = 0;
        for (seg, content) in live {
            self.insert(seg, content);
        }
    }
}

impl PlacementScheme for HammingTree {
    fn name(&self) -> &'static str {
        "Hamming-Tree"
    }

    fn initialize(&mut self, free: &[(LogicalSegment, Vec<u8>)], _rng: &mut StdRng) {
        self.nodes.clear();
        self.root = None;
        self.live = 0;
        self.distance_evals = 0;
        for (seg, content) in free {
            self.insert(*seg, content.clone());
        }
    }

    fn choose(&mut self, data: &[u8]) -> Option<LogicalSegment> {
        // Periodically purge tombstones to keep searches cheap.
        if self.nodes.len() > 64 && self.live * 4 < self.nodes.len() {
            self.rebuild();
        }
        self.take_nearest(data).map(|(seg, _)| seg)
    }

    fn recycle(&mut self, seg: LogicalSegment, content: &[u8]) {
        self.insert(seg, content.to_vec());
    }

    fn free_count(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_ml::rng::seeded;
    use rand::Rng;

    fn seg(i: usize) -> LogicalSegment {
        LogicalSegment(i)
    }

    #[test]
    fn nearest_is_exact() {
        let mut rng = seeded(1);
        let mut tree = HammingTree::new();
        let contents: Vec<Vec<u8>> = (0..64)
            .map(|_| (0..16).map(|_| rng.gen()).collect())
            .collect();
        for (i, c) in contents.iter().enumerate() {
            tree.insert(seg(i), c.clone());
        }
        for _ in 0..32 {
            let query: Vec<u8> = (0..16).map(|_| rng.gen()).collect();
            let mut t = tree.clone();
            let (chosen, d) = t.take_nearest(&query).unwrap();
            let brute = contents.iter().map(|c| hamming(c, &query)).min().unwrap();
            assert_eq!(d, brute, "tree nearest {d} != brute {brute}");
            assert_eq!(d, hamming(&contents[chosen.index()], &query));
        }
    }

    #[test]
    fn take_removes_and_pool_drains() {
        let mut tree = HammingTree::new();
        tree.insert(seg(0), vec![0x00]);
        tree.insert(seg(1), vec![0xFF]);
        assert_eq!(tree.len(), 2);
        assert_eq!(tree.take_nearest(&[0x01]).unwrap().0, seg(0));
        assert_eq!(tree.len(), 1);
        // Only the far one remains.
        assert_eq!(tree.take_nearest(&[0x01]).unwrap().0, seg(1));
        assert!(tree.take_nearest(&[0x01]).is_none());
    }

    #[test]
    fn recycle_makes_segment_available_again() {
        let mut tree = HammingTree::new();
        let mut rng = seeded(2);
        tree.initialize(&[(seg(0), vec![0u8; 4])], &mut rng);
        assert_eq!(tree.choose(&[0u8; 4]), Some(seg(0)));
        assert_eq!(tree.choose(&[0u8; 4]), None);
        tree.recycle(seg(0), &[1u8; 4]);
        assert_eq!(tree.choose(&[1u8; 4]), Some(seg(0)));
    }

    #[test]
    fn rebuild_preserves_live_set() {
        let mut rng = seeded(3);
        let mut tree = HammingTree::new();
        for i in 0..40 {
            tree.insert(seg(i), (0..8).map(|_| rng.gen()).collect());
        }
        for _ in 0..30 {
            let q: Vec<u8> = (0..8).map(|_| rng.gen()).collect();
            tree.take_nearest(&q);
        }
        let before = tree.len();
        tree.rebuild();
        assert_eq!(tree.len(), before);
        assert_eq!(before, 10);
    }

    #[test]
    fn placement_trait_workflow() {
        let mut rng = seeded(4);
        let mut tree = HammingTree::new();
        let free: Vec<(LogicalSegment, Vec<u8>)> =
            (0..10).map(|i| (seg(i), vec![i as u8 * 25; 8])).collect();
        tree.initialize(&free, &mut rng);
        assert_eq!(tree.free_count(), 10);
        // Query exactly matching segment 4's content.
        assert_eq!(tree.choose(&[100u8; 8]), Some(seg(4)));
    }
}
