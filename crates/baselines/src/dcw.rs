//! DCW — data-comparison write (Yang et al., ISCAS '07).
//!
//! The original hardware technique: read the old content, write only the
//! differing bits. In this workspace the simulated media already performs
//! the comparison, so DCW's encoding is the identity — it is the
//! *baseline* every other scheme is measured against (the paper's k=1
//! anchor in Figure 10, where "E2-NVM, PNW, and DCW are the same").

use crate::scheme::{InPlaceScheme, InPlaceWrite};

/// The identity RBW scheme.
#[derive(Debug, Default, Clone)]
pub struct Dcw;

impl InPlaceScheme for Dcw {
    fn name(&self) -> &'static str {
        "DCW"
    }

    fn encode(&mut self, _addr: usize, _old_stored: &[u8], new: &[u8]) -> InPlaceWrite {
        InPlaceWrite {
            stored: new.to_vec(),
            aux_bits_flipped: 0,
        }
    }

    fn decode(&self, _addr: usize, stored: &[u8]) -> Vec<u8> {
        stored.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_sim::bitops::hamming;

    #[test]
    fn identity_roundtrip() {
        let mut s = Dcw;
        let old = vec![0xAAu8; 16];
        let new = vec![0x5Bu8; 16];
        let w = s.encode(0, &old, &new);
        assert_eq!(w.stored, new);
        assert_eq!(w.aux_bits_flipped, 0);
        assert_eq!(s.decode(0, &w.stored), new);
    }

    #[test]
    fn flips_equal_raw_hamming() {
        let mut s = Dcw;
        let old = [0b1111_0000u8];
        let new = [0b0000_1111u8];
        let w = s.encode(3, &old, &new);
        assert_eq!(hamming(&old, &w.stored), 8);
    }
}
