//! Captopril (Jalili & Sarbazi-Azad, DATE '16): "reducing the pressure
//! of bit flips on hot locations in non-volatile main memories".
//!
//! Captopril tracks which cells of a row are *hot* (flip frequently) and
//! biases its per-word flip/no-flip decision so hot cells are spared:
//! instead of minimizing the raw flip count (FNW), it minimizes a
//! hotness-weighted flip cost. The result is fewer writes landing on the
//! already-worn cells, extending lifetime at a small total-flip cost.
//!
//! Reproduction note: the original paper partitions words and keeps
//! small saturating counters in the controller; this implementation
//! keeps an 8-bit saturating flip counter per bit per address and uses
//! weight `1 + hotness · α`, which preserves the scheme's behaviour
//! (hot-bit avoidance via selective inversion with one flag bit per
//! word).

use crate::scheme::{InPlaceScheme, InPlaceWrite};
use std::collections::HashMap;

/// Captopril per-address state.
#[derive(Debug, Clone, Default)]
struct AddrState {
    /// Saturating flip counter per bit.
    heat: Vec<u8>,
    /// Per-word inversion flags.
    flags: Vec<bool>,
    /// Writes since the last heat decay.
    writes: u32,
}

/// The Captopril scheme.
#[derive(Debug, Clone)]
pub struct Captopril {
    word_bytes: usize,
    /// Hotness weight α: cost of flipping a bit = 1 + α·heat/255.
    alpha: f32,
    /// Writes per address between heat halvings. Captopril's counters
    /// are windowed; decay keeps stale heat from freezing the policy.
    decay_window: u32,
    state: HashMap<usize, AddrState>,
}

impl Captopril {
    /// Create with the given word size (bytes) and hotness weight.
    ///
    /// # Panics
    /// Panics if `word_bytes == 0` or `alpha < 0`.
    pub fn new(word_bytes: usize, alpha: f32) -> Self {
        assert!(word_bytes > 0, "Captopril: word_bytes must be > 0");
        assert!(alpha >= 0.0, "Captopril: alpha must be >= 0");
        Self {
            word_bytes,
            alpha,
            decay_window: 32,
            state: HashMap::new(),
        }
    }

    /// Maximum observed heat across the tracked bits of one address
    /// (diagnostics: lifetime is bounded by the hottest cell).
    pub fn max_heat(&self, addr: usize) -> u8 {
        self.state
            .get(&addr)
            .map(|s| s.heat.iter().copied().max().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Default for Captopril {
    fn default() -> Self {
        Self::new(4, 4.0)
    }
}

fn bit_of(bytes: &[u8], i: usize) -> u8 {
    (bytes[i / 8] >> (7 - i % 8)) & 1
}

impl InPlaceScheme for Captopril {
    fn name(&self) -> &'static str {
        "Captopril"
    }

    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> InPlaceWrite {
        assert_eq!(old_stored.len(), new.len(), "Captopril: length mismatch");
        let n_words = new.len().div_ceil(self.word_bytes);
        let st = self.state.entry(addr).or_default();
        st.writes += 1;
        if st.writes >= self.decay_window {
            st.writes = 0;
            for h in &mut st.heat {
                *h /= 2;
            }
        }
        if st.heat.len() < new.len() * 8 {
            st.heat.resize(new.len() * 8, 0);
        }
        if st.flags.len() < n_words {
            st.flags.resize(n_words, false);
        }
        let mut stored = Vec::with_capacity(new.len());
        let mut aux = 0u64;
        for (w, chunk) in new.chunks(self.word_bytes).enumerate() {
            let lo_byte = w * self.word_bytes;
            let old_word = &old_stored[lo_byte..lo_byte + chunk.len()];
            // Weighted costs of the plain vs inverted variants.
            let mut cost_plain = 0.0f32;
            let mut cost_inv = 0.0f32;
            // A bit whose recent flip count reached the cap is treated
            // as (nearly) unwritable — the "capping" that gives the
            // scheme its name. Below the cap the cost grows linearly
            // with recent heat.
            let cap = (self.decay_window / 2).max(1) as f32;
            for b in 0..chunk.len() * 8 {
                let heat = st.heat[lo_byte * 8 + b] as f32;
                let weight = if heat >= cap {
                    1000.0
                } else {
                    1.0 + self.alpha * heat / cap
                };
                let oldb = bit_of(old_word, b);
                let newb = bit_of(chunk, b);
                if oldb != newb {
                    cost_plain += weight;
                } else {
                    cost_inv += weight;
                }
            }
            let use_flip = cost_inv < cost_plain;
            if use_flip != st.flags[w] {
                aux += 1;
                st.flags[w] = use_flip;
            }
            let word: Vec<u8> = if use_flip {
                chunk.iter().map(|&b| !b).collect()
            } else {
                chunk.to_vec()
            };
            // Update heat with the actual flips of this write.
            for b in 0..word.len() * 8 {
                if bit_of(old_word, b) != bit_of(&word, b) {
                    let h = &mut st.heat[lo_byte * 8 + b];
                    *h = h.saturating_add(1);
                }
            }
            stored.extend_from_slice(&word);
        }
        InPlaceWrite {
            stored,
            aux_bits_flipped: aux,
        }
    }

    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8> {
        let Some(st) = self.state.get(&addr) else {
            return stored.to_vec();
        };
        let mut out = Vec::with_capacity(stored.len());
        for (w, chunk) in stored.chunks(self.word_bytes).enumerate() {
            if st.flags.get(w).copied().unwrap_or(false) {
                out.extend(chunk.iter().map(|&b| !b));
            } else {
                out.extend_from_slice(chunk);
            }
        }
        out
    }

    fn aux_bits_per_word(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_sim::bitops::hamming;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_random_stream() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut s = Captopril::default();
        let mut stored = vec![0u8; 24];
        for _ in 0..100 {
            let new: Vec<u8> = (0..24).map(|_| rng.gen()).collect();
            let w = s.encode(4, &stored, &new);
            assert_eq!(s.decode(4, &w.stored), new);
            stored = w.stored;
        }
    }

    #[test]
    fn hot_bits_get_spared() {
        // Hammer bit 0 of word 0 (alternating value) while the rest of
        // the word stays constant: after the heat builds up, Captopril
        // should start inverting to move flips onto cold bits.
        let mut s = Captopril::new(1, 16.0);
        let mut stored = vec![0b0000_0000u8];
        let mut flips_on_bit0 = 0u64;
        for round in 0..600 {
            let target = if round % 2 == 0 { 0b1000_0000u8 } else { 0 };
            let w = s.encode(0, &stored, &[target]);
            if (w.stored[0] ^ stored[0]) & 0b1000_0000 != 0 {
                flips_on_bit0 += 1;
            }
            assert_eq!(s.decode(0, &w.stored), vec![target]);
            stored = w.stored;
        }
        // Without sparing it would be ~600 flips on bit 0; weighting must
        // divert a noticeable share elsewhere.
        assert!(
            flips_on_bit0 < 520,
            "hot bit not spared: {flips_on_bit0} flips"
        );
        assert!(s.max_heat(0) > 0);
    }

    #[test]
    fn zero_alpha_behaves_like_fnw() {
        // With alpha = 0 the weighted cost is the plain flip count, so
        // the decision reduces to FNW's majority rule.
        let mut s = Captopril::new(4, 0.0);
        let old = vec![0u8; 4];
        let new = vec![0xFF, 0xFF, 0xFF, 0x0F];
        let w = s.encode(0, &old, &new);
        assert_eq!(hamming(&old, &w.stored), 4); // inverted: 32-28
        assert_eq!(s.decode(0, &w.stored), new);
    }

    #[test]
    fn decode_without_state_is_identity() {
        let s = Captopril::default();
        assert_eq!(s.decode(99, &[1, 2, 3]), vec![1, 2, 3]);
    }
}
