//! The two families of write schemes the paper compares against.
//!
//! * **In-place (RBW) schemes** transform the data written to a *fixed*
//!   address so that fewer bits flip: DCW, Flip-N-Write, MinShift,
//!   Captopril. They may keep per-address auxiliary bits (flags, shift
//!   amounts); flips of those bits are charged too, since real hardware
//!   stores them in spare cells of the same row.
//! * **Placement schemes** choose *which free address* receives a write:
//!   DATACON, Hamming-Tree, PNW — and E2-NVM itself (adapted in the
//!   bench crate). They see the pool of free segments and their
//!   contents.

use e2nvm_sim::LogicalSegment;
use rand::rngs::StdRng;

/// Result of encoding one in-place write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InPlaceWrite {
    /// The bytes to store at the address (same length as the input).
    pub stored: Vec<u8>,
    /// Auxiliary metadata bits flipped by this write (flags, shift
    /// amounts), charged on top of the data-cell flips.
    pub aux_bits_flipped: u64,
}

/// A read-before-write scheme operating on a fixed address.
pub trait InPlaceScheme {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// Encode `new` for storage at `addr`, given the currently stored
    /// bytes `old_stored`. Updates internal per-address metadata.
    ///
    /// Implementations must guarantee `decode(addr, &w.stored) == new`.
    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> InPlaceWrite;

    /// Recover the logical value from the stored representation.
    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8>;

    /// Auxiliary metadata bits kept per word (for overhead reporting).
    fn aux_bits_per_word(&self) -> u32 {
        0
    }
}

/// A scheme that picks the destination address for each write from a
/// pool of free segments.
pub trait PlacementScheme {
    /// Scheme name for reports.
    fn name(&self) -> &'static str;

    /// (Re)build internal state from the current free pool: each entry
    /// is a free segment id and its current content.
    fn initialize(&mut self, free: &[(LogicalSegment, Vec<u8>)], rng: &mut StdRng);

    /// Pick and *remove* a free segment for `data`. `None` when the pool
    /// is exhausted.
    fn choose(&mut self, data: &[u8]) -> Option<LogicalSegment>;

    /// Return a segment (with its current content) to the free pool.
    fn recycle(&mut self, seg: LogicalSegment, content: &[u8]);

    /// Free segments currently available.
    fn free_count(&self) -> usize;

    /// Modeled multiply-accumulates per `choose` call (0 for non-ML
    /// schemes) — feeds prediction-latency/energy comparisons.
    fn prediction_macs(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The trait must be object-safe: the bench harness stores
    /// `Box<dyn PlacementScheme>`.
    #[test]
    fn traits_are_object_safe() {
        fn _take_inplace(_s: &mut dyn InPlaceScheme) {}
        fn _take_placement(_s: &mut dyn PlacementScheme) {}
    }
}
