//! MinShift — bit shifting + flipping (Luo et al., RTCSA '14: "Enhancing
//! lifetime of NVM-based main memory with bit shifting and flipping").
//!
//! Per 64-bit word, the encoder tries every rotation `s ∈ {0..S-1}`
//! (optionally combined with complementing the word) and stores the
//! variant with the fewest flips against the currently stored word. The
//! chosen `(shift, flip)` code is kept in per-word auxiliary cells whose
//! own flips are charged.

use crate::scheme::{InPlaceScheme, InPlaceWrite};
use std::collections::HashMap;

/// Per-word transform code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Code {
    shift: u8,
    flip: bool,
}

impl Code {
    /// Bits of the aux encoding that differ between two codes.
    fn aux_flips(&self, other: &Code, shift_bits: u32) -> u64 {
        let a = ((self.shift as u64) << 1) | self.flip as u64;
        let b = ((other.shift as u64) << 1) | other.flip as u64;
        ((a ^ b) & ((1u64 << (shift_bits + 1)) - 1)).count_ones() as u64
    }
}

/// The MinShift scheme over 64-bit words.
#[derive(Debug, Clone)]
pub struct MinShift {
    /// Number of candidate rotations (power of two; default 4).
    shifts: u8,
    codes: HashMap<usize, Vec<Code>>,
}

impl MinShift {
    /// Create with `shifts` candidate rotations (must be a power of two
    /// in `1..=64`).
    ///
    /// # Panics
    /// Panics on an invalid shift count.
    pub fn new(shifts: u8) -> Self {
        assert!(
            (1..=64).contains(&shifts) && shifts.is_power_of_two(),
            "MinShift: shifts must be a power of two in 1..=64"
        );
        Self {
            shifts,
            codes: HashMap::new(),
        }
    }

    fn shift_bits(&self) -> u32 {
        self.shifts.trailing_zeros()
    }
}

impl Default for MinShift {
    fn default() -> Self {
        Self::new(4)
    }
}

fn load_words(bytes: &[u8]) -> Vec<u64> {
    bytes
        .chunks(8)
        .map(|c| {
            let mut buf = [0u8; 8];
            buf[..c.len()].copy_from_slice(c);
            u64::from_le_bytes(buf)
        })
        .collect()
}

fn store_words(words: &[u64], len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.truncate(len);
    out
}

impl InPlaceScheme for MinShift {
    fn name(&self) -> &'static str {
        "MinShift"
    }

    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> InPlaceWrite {
        assert_eq!(old_stored.len(), new.len(), "MinShift: length mismatch");
        let old_words = load_words(old_stored);
        let new_words = load_words(new);
        let n_words = new_words.len();
        let shift_bits = self.shift_bits();
        let codes = self
            .codes
            .entry(addr)
            .or_insert_with(|| vec![Code::default(); n_words]);
        if codes.len() < n_words {
            codes.resize(n_words, Code::default());
        }
        let mut stored_words = Vec::with_capacity(n_words);
        let mut aux = 0u64;
        // A partial tail word must not be rotated: rotation would move
        // data bits into the truncated padding region and corrupt the
        // round-trip. Flipping is byte-local and stays safe.
        let partial_tail = new.len() % 8 != 0;
        for (w, (&old, &neww)) in old_words.iter().zip(&new_words).enumerate() {
            let mut best = (u64::MAX, Code::default(), 0u64);
            let max_shift = if partial_tail && w + 1 == n_words {
                1
            } else {
                self.shifts
            };
            for s in 0..max_shift {
                let rotated = neww.rotate_left(s as u32);
                for flip in [false, true] {
                    let cand = if flip { !rotated } else { rotated };
                    let code = Code { shift: s, flip };
                    let data_flips = (cand ^ old).count_ones() as u64;
                    let aux_flips = code.aux_flips(&codes[w], shift_bits);
                    let total = data_flips + aux_flips;
                    if total < best.0 {
                        best = (total, code, data_flips);
                    }
                }
            }
            aux += best.0 - best.2;
            codes[w] = best.1;
            let rotated = neww.rotate_left(best.1.shift as u32);
            stored_words.push(if best.1.flip { !rotated } else { rotated });
        }
        InPlaceWrite {
            stored: store_words(&stored_words, new.len()),
            aux_bits_flipped: aux,
        }
    }

    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8> {
        let words = load_words(stored);
        let empty = Vec::new();
        let codes = self.codes.get(&addr).unwrap_or(&empty);
        let decoded: Vec<u64> = words
            .iter()
            .enumerate()
            .map(|(w, &word)| {
                let code = codes.get(w).copied().unwrap_or_default();
                let unflipped = if code.flip { !word } else { word };
                unflipped.rotate_right(code.shift as u32)
            })
            .collect();
        store_words(&decoded, stored.len())
    }

    fn aux_bits_per_word(&self) -> u32 {
        self.shift_bits() + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcw::Dcw;
    use e2nvm_sim::bitops::hamming;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_multibyte() {
        let mut s = MinShift::default();
        let old = vec![0u8; 16];
        let new: Vec<u8> = (0..16).map(|i| i * 17).collect();
        let w = s.encode(0, &old, &new);
        assert_eq!(s.decode(0, &w.stored), new);
    }

    #[test]
    fn shift_exploited_for_shifted_content() {
        // Old word is a pattern; new word is the same pattern rotated by
        // one bit — MinShift should store it with ~0 data flips.
        let mut s = MinShift::new(4);
        let pattern: u64 = 0xDEAD_BEEF_CAFE_F00D;
        let old = pattern.to_le_bytes().to_vec();
        let new = pattern.rotate_right(1).to_le_bytes().to_vec();
        let w = s.encode(0, &old, &new);
        let data_flips = hamming(&old, &w.stored);
        assert_eq!(data_flips, 0, "rotation should cancel the difference");
        assert_eq!(s.decode(0, &w.stored), new);
    }

    #[test]
    fn never_worse_than_dcw_plus_aux() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut ms = MinShift::default();
        let mut dcw = Dcw;
        let mut ms_stored = vec![0u8; 32];
        let mut dcw_stored = vec![0u8; 32];
        let mut ms_total = 0u64;
        let mut dcw_total = 0u64;
        for _ in 0..200 {
            let new: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let wm = ms.encode(0, &ms_stored, &new);
            ms_total += hamming(&ms_stored, &wm.stored) + wm.aux_bits_flipped;
            assert_eq!(ms.decode(0, &wm.stored), new);
            ms_stored = wm.stored;
            let wd = dcw.encode(0, &dcw_stored, &new);
            dcw_total += hamming(&dcw_stored, &wd.stored);
            dcw_stored = wd.stored;
        }
        assert!(
            ms_total <= dcw_total,
            "MinShift {ms_total} should not exceed DCW {dcw_total}"
        );
    }

    #[test]
    fn aux_overhead_reported() {
        let s = MinShift::new(8);
        assert_eq!(s.aux_bits_per_word(), 4); // log2(8) + flip bit
    }

    #[test]
    fn tail_shorter_than_word() {
        let mut s = MinShift::default();
        let old = vec![0u8; 5];
        let new = vec![0xA5u8, 0x5A, 0xFF, 0x00, 0x77];
        let w = s.encode(2, &old, &new);
        assert_eq!(w.stored.len(), 5);
        assert_eq!(s.decode(2, &w.stored), new);
    }
}
