//! # e2nvm-baselines — the write schemes E2-NVM is compared against
//!
//! Two families, matching the paper's §5.2 taxonomy:
//!
//! * **RBW / bit-flip-optimized in-place schemes** ([`InPlaceScheme`]):
//!   [`Dcw`], [`FlipNWrite`], [`MinShift`], [`Captopril`]. They rewrite a
//!   fixed address, transforming data (inversion, rotation, hot-bit
//!   weighting) to minimize flips; auxiliary metadata flips are charged.
//! * **Placement schemes** ([`PlacementScheme`]): [`Datacon`],
//!   [`HammingTree`], [`Pnw`] (K-means or PCA+K-means). They choose the
//!   destination address by content similarity. The E2-NVM engine in
//!   `e2nvm-core` plugs into the same trait via an adapter in the bench
//!   crate, so every figure compares like with like.

pub mod captopril;
pub mod datacon;
pub mod dcw;
pub mod fnw;
pub mod hamming_tree;
pub mod minshift;
pub mod pnw;
pub mod scheme;

pub use captopril::Captopril;
pub use datacon::Datacon;
pub use dcw::Dcw;
pub use fnw::FlipNWrite;
pub use hamming_tree::HammingTree;
pub use minshift::MinShift;
pub use pnw::{Pnw, PnwMode};
pub use scheme::{InPlaceScheme, InPlaceWrite, PlacementScheme};
