//! PNW — Predict-aNd-Write (Kargar, Litz & Nawab, ICDE '21), the
//! clustering-based memory-aware baseline the paper improves on.
//!
//! PNW clusters free memory segments with **K-means directly in bit
//! space**, or — for large segments where raw K-means is too slow — with
//! **PCA followed by K-means**. Incoming writes are routed to a free
//! segment of the predicted cluster. The two modes are the two non-VAE
//! curves of the paper's Figure 4.

use crate::scheme::PlacementScheme;
use e2nvm_ml::data::bytes_to_features;
use e2nvm_ml::data::segments_to_matrix;
use e2nvm_ml::{KMeans, Matrix, Pca};
use e2nvm_sim::LogicalSegment;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// Dimensionality-reduction mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PnwMode {
    /// K-means on the raw bit features.
    RawKMeans,
    /// PCA to `p` components, then K-means (the mode PNW must use for
    /// kilobyte-plus items).
    PcaKMeans {
        /// Retained principal components.
        components: usize,
    },
}

/// The PNW placement scheme.
pub struct Pnw {
    mode: PnwMode,
    k: usize,
    kmeans_iters: usize,
    pca: Option<Pca>,
    model: Option<KMeans>,
    pools: Vec<VecDeque<LogicalSegment>>,
    /// Wall-clock spent in the last `initialize` (model training).
    pub last_train: std::time::Duration,
}

impl Pnw {
    /// Create with `k` clusters in the given mode.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize, mode: PnwMode) -> Self {
        assert!(k > 0, "Pnw: k must be >= 1");
        Self {
            mode,
            k,
            kmeans_iters: 30,
            pca: None,
            model: None,
            pools: Vec::new(),
            last_train: std::time::Duration::ZERO,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.k
    }

    fn features(&self, data: &[u8]) -> Vec<f32> {
        let raw = bytes_to_features(data);
        match &self.pca {
            Some(pca) => pca.transform_one(&raw),
            None => raw,
        }
    }

    fn predict(&self, data: &[u8]) -> Option<usize> {
        let model = self.model.as_ref()?;
        Some(model.predict(&self.features(data)))
    }
}

impl PlacementScheme for Pnw {
    fn name(&self) -> &'static str {
        match self.mode {
            PnwMode::RawKMeans => "PNW(K-means)",
            PnwMode::PcaKMeans { .. } => "PNW(PCA+K-means)",
        }
    }

    fn initialize(&mut self, free: &[(LogicalSegment, Vec<u8>)], rng: &mut StdRng) {
        let start = std::time::Instant::now();
        self.pools = (0..self.k).map(|_| VecDeque::new()).collect();
        if free.is_empty() {
            self.model = None;
            self.pca = None;
            self.last_train = start.elapsed();
            return;
        }
        let contents: Vec<&[u8]> = free.iter().map(|(_, c)| c.as_slice()).collect();
        let raw = segments_to_matrix(&contents);
        let (features, pca): (Matrix, Option<Pca>) = match self.mode {
            PnwMode::RawKMeans => (raw, None),
            PnwMode::PcaKMeans { components } => {
                let pca = Pca::fit(&raw, components, 10, rng);
                (pca.transform(&raw), Some(pca))
            }
        };
        self.pca = pca;
        let fit = KMeans::fit(&features, self.k, self.kmeans_iters, rng);
        for ((seg, _), &cluster) in free.iter().zip(&fit.assignments) {
            self.pools[cluster].push_back(*seg);
        }
        self.model = Some(fit.model);
        self.last_train = start.elapsed();
    }

    fn choose(&mut self, data: &[u8]) -> Option<LogicalSegment> {
        let model = self.model.as_ref()?;
        // One feature computation; nearest-first fallback when the
        // predicted pool is empty.
        let features = self.features(data);
        for c in model.clusters_by_distance(&features) {
            if let Some(seg) = self.pools[c].pop_front() {
                return Some(seg);
            }
        }
        None
    }

    fn recycle(&mut self, seg: LogicalSegment, content: &[u8]) {
        let Some(cluster) = self.predict(content) else {
            // No model yet: park in pool 0.
            if let Some(pool) = self.pools.first_mut() {
                pool.push_back(seg);
            } else {
                self.pools = vec![VecDeque::from([seg])];
            }
            return;
        };
        self.pools[cluster].push_back(seg);
    }

    fn free_count(&self) -> usize {
        self.pools.iter().map(VecDeque::len).sum()
    }

    fn prediction_macs(&self) -> u64 {
        let Some(model) = &self.model else { return 0 };
        let feat_dim = model.centroids().cols();
        let pca_macs = self
            .pca
            .as_ref()
            .map(|p| (p.components().rows() * p.p()) as u64)
            .unwrap_or(0);
        pca_macs + (self.k * feat_dim) as u64
    }
}

impl std::fmt::Debug for Pnw {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pnw")
            .field("mode", &self.mode)
            .field("k", &self.k)
            .field("free", &self.free_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_ml::rng::seeded;
    use rand::Rng;

    fn seg(i: usize) -> LogicalSegment {
        LogicalSegment(i)
    }

    /// Two obvious content families: low bytes and high bytes.
    fn two_family_pool(rng: &mut StdRng) -> Vec<(LogicalSegment, Vec<u8>)> {
        (0..40)
            .map(|i| {
                let base: u8 = if i % 2 == 0 { 0x00 } else { 0xFF };
                let content: Vec<u8> = (0..16)
                    .map(|_| if rng.gen::<f32>() < 0.1 { !base } else { base })
                    .collect();
                (seg(i), content)
            })
            .collect()
    }

    #[test]
    fn routes_to_matching_family() {
        let mut rng = seeded(1);
        let pool = two_family_pool(&mut rng);
        let mut pnw = Pnw::new(2, PnwMode::RawKMeans);
        pnw.initialize(&pool, &mut rng);
        // Queries from each family must pick a segment of that family.
        let chosen_zero = pnw.choose(&[0x00u8; 16]).unwrap();
        assert_eq!(chosen_zero.index() % 2, 0, "zero query got ones segment");
        let chosen_ones = pnw.choose(&[0xFFu8; 16]).unwrap();
        assert_eq!(chosen_ones.index() % 2, 1, "ones query got zeros segment");
    }

    #[test]
    fn pca_mode_matches_raw_on_easy_data() {
        let mut rng = seeded(2);
        let pool = two_family_pool(&mut rng);
        let mut pnw = Pnw::new(2, PnwMode::PcaKMeans { components: 4 });
        pnw.initialize(&pool, &mut rng);
        let chosen = pnw.choose(&[0xFFu8; 16]).unwrap();
        assert_eq!(chosen.index() % 2, 1);
        assert!(pnw.prediction_macs() > 0);
    }

    #[test]
    fn pool_drains_and_falls_back() {
        let mut rng = seeded(3);
        let pool: Vec<_> = (0..4).map(|i| (seg(i), vec![0u8; 8])).collect();
        let mut pnw = Pnw::new(2, PnwMode::RawKMeans);
        pnw.initialize(&pool, &mut rng);
        let mut taken = 0;
        while pnw.choose(&[0xFFu8; 8]).is_some() {
            taken += 1;
        }
        assert_eq!(taken, 4, "fallback must drain all pools");
        assert_eq!(pnw.free_count(), 0);
    }

    #[test]
    fn recycle_reclassifies() {
        let mut rng = seeded(4);
        let pool = two_family_pool(&mut rng);
        let mut pnw = Pnw::new(2, PnwMode::RawKMeans);
        pnw.initialize(&pool, &mut rng);
        let n = pnw.free_count();
        let s = pnw.choose(&[0x00u8; 16]).unwrap();
        assert_eq!(pnw.free_count(), n - 1);
        pnw.recycle(s, &[0xFFu8; 16]);
        assert_eq!(pnw.free_count(), n);
        // It should now be served for a ones query (it sits in the ones
        // cluster's pool; exact position depends on queue order, so just
        // check availability).
        assert!(pnw.choose(&[0xFFu8; 16]).is_some());
    }

    #[test]
    fn empty_initialize_is_safe() {
        let mut rng = seeded(5);
        let mut pnw = Pnw::new(3, PnwMode::RawKMeans);
        pnw.initialize(&[], &mut rng);
        assert_eq!(pnw.choose(&[0u8; 4]), None);
        pnw.recycle(seg(7), &[0u8; 4]);
        assert_eq!(pnw.free_count(), 1);
    }
}
