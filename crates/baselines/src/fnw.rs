//! FNW — Flip-N-Write (Cho & Lee, MICRO '09).
//!
//! Per W-bit word, compare the new word against the stored word; if more
//! than W/2 bits differ, store the *complement* and set a per-word flag
//! bit. Guarantees at most W/2 + 1 flips per word.

use crate::scheme::{InPlaceScheme, InPlaceWrite};
use e2nvm_sim::bitops::hamming;
use std::collections::HashMap;

/// Flip-N-Write with a configurable word size in bytes (default 4 =
/// 32-bit words, the granularity of the original paper).
#[derive(Debug, Clone)]
pub struct FlipNWrite {
    word_bytes: usize,
    /// Per-address flag vectors (one bool per word).
    flags: HashMap<usize, Vec<bool>>,
}

impl FlipNWrite {
    /// Create with the given word size in bytes.
    ///
    /// # Panics
    /// Panics if `word_bytes == 0`.
    pub fn new(word_bytes: usize) -> Self {
        assert!(word_bytes > 0, "FlipNWrite: word_bytes must be > 0");
        Self {
            word_bytes,
            flags: HashMap::new(),
        }
    }

    fn words(&self, len: usize) -> usize {
        len.div_ceil(self.word_bytes)
    }
}

impl Default for FlipNWrite {
    fn default() -> Self {
        Self::new(4)
    }
}

impl InPlaceScheme for FlipNWrite {
    fn name(&self) -> &'static str {
        "FNW"
    }

    fn encode(&mut self, addr: usize, old_stored: &[u8], new: &[u8]) -> InPlaceWrite {
        assert_eq!(old_stored.len(), new.len(), "FNW: length mismatch");
        let n_words = self.words(new.len());
        let flags = self
            .flags
            .entry(addr)
            .or_insert_with(|| vec![false; n_words]);
        if flags.len() < n_words {
            flags.resize(n_words, false);
        }
        let mut stored = Vec::with_capacity(new.len());
        let mut aux = 0u64;
        for (w, chunk) in new.chunks(self.word_bytes).enumerate() {
            let lo = w * self.word_bytes;
            let hi = lo + chunk.len();
            let old_word = &old_stored[lo..hi];
            let word_bits = (chunk.len() * 8) as u64;
            let plain = hamming(old_word, chunk);
            let flipped_candidate: Vec<u8> = chunk.iter().map(|&b| !b).collect();
            let inverted = hamming(old_word, &flipped_candidate);
            // Choosing inversion also costs the flag bit if it changes.
            let use_flip = inverted < plain;
            if use_flip != flags[w] {
                aux += 1;
                flags[w] = use_flip;
            }
            if use_flip {
                stored.extend_from_slice(&flipped_candidate);
            } else {
                stored.extend_from_slice(chunk);
            }
            debug_assert!(hamming(old_word, &stored[lo..hi]) <= word_bits / 2 + 1);
        }
        InPlaceWrite {
            stored,
            aux_bits_flipped: aux,
        }
    }

    fn decode(&self, addr: usize, stored: &[u8]) -> Vec<u8> {
        let empty = Vec::new();
        let flags = self.flags.get(&addr).unwrap_or(&empty);
        let mut out = Vec::with_capacity(stored.len());
        for (w, chunk) in stored.chunks(self.word_bytes).enumerate() {
            let flipped = flags.get(w).copied().unwrap_or(false);
            if flipped {
                out.extend(chunk.iter().map(|&b| !b));
            } else {
                out.extend_from_slice(chunk);
            }
        }
        out
    }

    fn aux_bits_per_word(&self) -> u32 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn roundtrip_with_inversion() {
        let mut s = FlipNWrite::new(4);
        let old = vec![0x00u8; 8];
        // First word nearly all ones -> inversion pays off.
        let new = vec![0xFF, 0xFF, 0xFF, 0x0F, 0x00, 0x00, 0x00, 0x01];
        let w = s.encode(0, &old, &new);
        assert_eq!(s.decode(0, &w.stored), new);
        // Word 0 stored inverted: 28 raw flips become 4.
        assert_eq!(hamming(&old[..4], &w.stored[..4]), 4);
        // Word 1 stored plain.
        assert_eq!(&w.stored[4..], &new[4..]);
        assert_eq!(w.aux_bits_flipped, 1);
    }

    #[test]
    fn never_worse_than_half_word_plus_flag() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut s = FlipNWrite::new(4);
        let mut stored = vec![0u8; 32];
        for round in 0..100 {
            let new: Vec<u8> = (0..32).map(|_| rng.gen()).collect();
            let w = s.encode(7, &stored, &new);
            let data_flips = hamming(&stored, &w.stored);
            let bound = 8 * (16 + 1); // 8 words * (W/2 data flips + flag)
            assert!(
                data_flips + w.aux_bits_flipped <= bound,
                "round {round}: {} flips",
                data_flips + w.aux_bits_flipped
            );
            assert_eq!(s.decode(7, &w.stored), new);
            stored = w.stored;
        }
    }

    #[test]
    fn sequence_of_writes_maintains_flags() {
        let mut s = FlipNWrite::new(2);
        let mut stored = vec![0u8; 4];
        for new in [
            vec![0xFFu8, 0xFF, 0x00, 0x00],
            vec![0x00u8, 0x00, 0xFF, 0xFF],
            vec![0xF0u8, 0x0F, 0xAA, 0x55],
        ] {
            let w = s.encode(1, &stored, &new);
            assert_eq!(s.decode(1, &w.stored), new);
            stored = w.stored;
        }
    }

    #[test]
    fn addresses_are_independent() {
        let mut s = FlipNWrite::new(4);
        let old = vec![0u8; 4];
        let w1 = s.encode(0, &old, &[0xFF, 0xFF, 0xFF, 0xFF]);
        let w2 = s.encode(1, &old, &[0x01, 0x00, 0x00, 0x00]);
        assert_eq!(s.decode(0, &w1.stored), vec![0xFF, 0xFF, 0xFF, 0xFF]);
        assert_eq!(s.decode(1, &w2.stored), vec![0x01, 0x00, 0x00, 0x00]);
    }

    #[test]
    fn tail_word_smaller_than_word_size() {
        let mut s = FlipNWrite::new(4);
        let old = vec![0u8; 6];
        let new = vec![0xFFu8; 6];
        let w = s.encode(0, &old, &new);
        assert_eq!(s.decode(0, &w.stored), new);
    }
}
