//! Property tests across every in-place write scheme: (1) decode is the
//! inverse of encode over arbitrary write histories, (2) FNW's per-word
//! flip bound holds, (3) MinShift never loses to DCW, and (4) placement
//! schemes never hand out an address twice.

use e2nvm_baselines::{
    Captopril, Datacon, Dcw, FlipNWrite, HammingTree, InPlaceScheme, MinShift, PlacementScheme,
    Pnw, PnwMode,
};
use e2nvm_ml::rng::seeded;
use e2nvm_sim::bitops::hamming;
use e2nvm_sim::LogicalSegment;
use proptest::prelude::*;
use std::collections::HashSet;

fn write_history(len: usize, writes: usize) -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), len), 1..writes)
}

fn check_roundtrip(scheme: &mut dyn InPlaceScheme, history: &[Vec<u8>]) -> Result<(), String> {
    let len = history[0].len();
    let mut stored = vec![0u8; len];
    for (i, new) in history.iter().enumerate() {
        let w = scheme.encode(42, &stored, new);
        if w.stored.len() != len {
            return Err(format!("{}: write {i} changed length", scheme.name()));
        }
        let decoded = scheme.decode(42, &w.stored);
        if &decoded != new {
            return Err(format!("{}: write {i} failed roundtrip", scheme.name()));
        }
        stored = w.stored;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_schemes_roundtrip(history in write_history(24, 12)) {
        check_roundtrip(&mut Dcw, &history).map_err(TestCaseError::fail)?;
        check_roundtrip(&mut FlipNWrite::default(), &history).map_err(TestCaseError::fail)?;
        check_roundtrip(&mut MinShift::default(), &history).map_err(TestCaseError::fail)?;
        check_roundtrip(&mut Captopril::default(), &history).map_err(TestCaseError::fail)?;
    }

    /// Odd lengths exercise the partial-tail paths.
    #[test]
    fn odd_length_roundtrip(history in write_history(13, 8)) {
        check_roundtrip(&mut FlipNWrite::new(4), &history).map_err(TestCaseError::fail)?;
        check_roundtrip(&mut MinShift::new(8), &history).map_err(TestCaseError::fail)?;
        check_roundtrip(&mut Captopril::new(3, 2.0), &history).map_err(TestCaseError::fail)?;
    }

    /// FNW guarantee: data flips per 32-bit word never exceed 17
    /// (W/2 + flag).
    #[test]
    fn fnw_flip_bound(history in write_history(16, 10)) {
        let mut s = FlipNWrite::new(4);
        let mut stored = vec![0u8; 16];
        for new in &history {
            let w = s.encode(0, &stored, new);
            for wd in 0..4 {
                let lo = wd * 4;
                let flips = hamming(&stored[lo..lo + 4], &w.stored[lo..lo + 4]);
                prop_assert!(flips <= 16, "word {wd}: {flips} data flips");
            }
            stored = w.stored;
        }
    }

    /// MinShift (data+aux) never flips more than DCW over a history.
    #[test]
    fn minshift_never_loses_to_dcw(history in write_history(32, 10)) {
        let mut ms = MinShift::default();
        let mut ms_stored = vec![0u8; 32];
        let mut dcw_stored = vec![0u8; 32];
        let mut ms_total = 0u64;
        let mut dcw_total = 0u64;
        for new in &history {
            let w = ms.encode(0, &ms_stored, new);
            ms_total += hamming(&ms_stored, &w.stored) + w.aux_bits_flipped;
            ms_stored = w.stored;
            dcw_total += hamming(&dcw_stored, new);
            dcw_stored = new.clone();
        }
        prop_assert!(ms_total <= dcw_total, "minshift {ms_total} > dcw {dcw_total}");
    }

    /// Placement schemes: no double allocation, and free_count is
    /// conserved across choose/recycle.
    #[test]
    fn placement_no_double_allocation(
        pool_contents in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 8), 4..24),
        queries in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 8), 1..40),
    ) {
        let free: Vec<(LogicalSegment, Vec<u8>)> = pool_contents
            .iter()
            .enumerate()
            .map(|(i, c)| (LogicalSegment(i), c.clone()))
            .collect();
        let mut rng = seeded(99);
        let schemes: Vec<Box<dyn PlacementScheme>> = vec![
            Box::new(Datacon::new(false)),
            Box::new(HammingTree::new()),
            Box::new(Pnw::new(3, PnwMode::RawKMeans)),
        ];
        for mut s in schemes {
            s.initialize(&free, &mut rng);
            prop_assert_eq!(s.free_count(), free.len());
            let mut handed_out: HashSet<usize> = HashSet::new();
            for q in &queries {
                match s.choose(q) {
                    Some(seg) => {
                        prop_assert!(
                            handed_out.insert(seg.index()),
                            "{} handed out {} twice", s.name(), seg.index()
                        );
                        prop_assert!(seg.index() < free.len());
                    }
                    None => {
                        prop_assert_eq!(s.free_count(), 0,
                            "{} returned None with free segments", s.name());
                        break;
                    }
                }
            }
            // Recycle everything; pool must be whole again.
            let taken: Vec<usize> = handed_out.iter().copied().collect();
            for idx in &taken {
                s.recycle(LogicalSegment(*idx), &pool_contents[*idx]);
            }
            prop_assert_eq!(s.free_count(), free.len());
        }
    }
}
