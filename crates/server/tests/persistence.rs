//! End-to-end persistence over the wire: FLUSH against live servers,
//! and a full stop/recover/re-serve cycle — a server backed by a
//! `--data-dir`-style persistent store is shut down, a second server
//! boots from the same directory via [`ShardedE2KvStore::recover`],
//! and every write acked by the first server is read back through the
//! second. The kill-path twin of this test (SIGKILL instead of a
//! graceful stop) lives in the bench crate's `loadgen --recovery`
//! mode, exercised by CI's kill-and-restart job.

use e2nvm_kvstore::ShardedE2KvStore;
use e2nvm_persist::{FlushPolicy, PersistenceConfig};
use e2nvm_server::demo::{demo_config, demo_store};
use e2nvm_server::{Client, Server, ServerConfig};
use std::path::PathBuf;

/// A unique temp dir per test (process + thread) so parallel test
/// runs never share WALs.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "e2nvm-server-persist-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn flush_is_a_documented_noop_without_persistence() {
    let store = demo_store(2, 64, 32, 11);
    let handle = Server::new(store, ServerConfig::default())
        .start()
        .expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    client.put(1, b"v").expect("put");
    assert_eq!(client.flush().expect("flush"), 0);
    client.shutdown_server().expect("shutdown");
    handle.join();
}

#[test]
fn acked_writes_survive_server_restart_via_recovery() {
    let dir = scratch_dir("restart");
    let pcfg = PersistenceConfig::builder()
        .data_dir(&dir)
        .flush_policy(FlushPolicy::OsOnly)
        .build()
        .unwrap();
    let e2cfg = demo_config(32, 11);

    // First incarnation: fresh store, persistence on, serve writes.
    let store = demo_store(2, 64, 32, 11)
        .with_persistence(pcfg.clone(), None)
        .expect("enable persistence");
    let handle = Server::new(store, ServerConfig::default())
        .start()
        .expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for key in 0..24u64 {
        client
            .put(key, format!("value-{key}").as_bytes())
            .expect("put acked");
    }
    assert!(client.delete(3).expect("delete"));
    // FLUSH over the wire snapshots the store: nonzero bytes written.
    assert!(client.flush().expect("flush") > 0);
    // More writes after the snapshot land only in the WAL.
    client.put(100, b"post-snapshot").expect("put");
    client.shutdown_server().expect("shutdown");
    handle.join();
    // No drain-time snapshot here, deliberately: recovery must replay
    // the post-snapshot WAL tail, same as after a crash.

    // Second incarnation: recover instead of retraining.
    let (store, report) = ShardedE2KvStore::recover(&pcfg, &e2cfg, None)
        .expect("recovery succeeds")
        .expect("snapshot exists");
    assert_eq!(report.shards, 2);
    assert!(report.replayed_ops >= 1, "WAL tail must replay");
    let handle = Server::new(store, ServerConfig::default())
        .start()
        .expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for key in 0..24u64 {
        let expect = (key != 3).then(|| format!("value-{key}").into_bytes());
        assert_eq!(client.get(key).expect("get"), expect, "key {key}");
    }
    assert_eq!(
        client.get(100).expect("get"),
        Some(b"post-snapshot".to_vec())
    );
    client.shutdown_server().expect("shutdown");
    handle.join();
    let _ = std::fs::remove_dir_all(&dir);
}
