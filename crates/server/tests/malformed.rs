//! Abuse a live server with malformed byte streams and prove it never
//! panics: framing-level violations are answered with a typed error
//! frame and a close, frame-level violations are answered and the
//! connection keeps serving, and the server remains healthy for fresh
//! connections throughout.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use e2nvm_server::frame::{
    encode_request, parse_response, FrameDecoder, Opcode, Request, Response, Status,
    DEFAULT_MAX_BODY, MAGIC, VERSION,
};
use e2nvm_server::{demo::demo_store, Client, Server, ServerConfig, ServerHandle};

fn start_server() -> ServerHandle {
    let store = demo_store(2, 64, 32, 11);
    Server::new(store, ServerConfig::default())
        .start()
        .expect("server binds an ephemeral port")
}

/// Read frames from `stream` until one whole response is decodable.
fn read_response(stream: &mut TcpStream) -> Response {
    let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame().expect("response frames are well-formed") {
            return parse_response(&frame).expect("response parses");
        }
        let n = stream.read(&mut chunk).expect("read from server");
        assert!(n > 0, "server closed before answering");
        dec.extend(&chunk[..n]);
    }
}

fn expect_closed(stream: &mut TcpStream) {
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut rest = Vec::new();
    // After a fatal violation the server closes; EOF (Ok with eventual
    // read of 0) is the expected terminal state.
    match stream.read_to_end(&mut rest) {
        Ok(_) => {}
        Err(e) => panic!("expected clean close, got {e}"),
    }
}

fn raw_frame(
    body_len_field: u32,
    magic: u8,
    version: u8,
    code: u8,
    aux: u8,
    body: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + body.len());
    out.extend_from_slice(&body_len_field.to_le_bytes());
    out.extend_from_slice(&[magic, version, code, aux]);
    out.extend_from_slice(body);
    out
}

#[test]
fn malformed_streams_get_error_frames_and_no_panic() {
    let handle = start_server();
    let addr = handle.local_addr();

    // 1. Arbitrary non-protocol bytes (an HTTP request): bad magic is a
    //    framing-level violation — one MALFORMED error frame, then close.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::Malformed),
            other => panic!("expected MALFORMED error frame, got {other:?}"),
        }
        expect_closed(&mut s);
    }

    // 2. Oversized body_len: FRAME_TOO_LARGE, then close.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&raw_frame(
            1 << 30,
            MAGIC,
            VERSION,
            Opcode::Put as u8,
            0,
            &[],
        ))
        .unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::FrameTooLarge),
            other => panic!("expected FRAME_TOO_LARGE error frame, got {other:?}"),
        }
        expect_closed(&mut s);
    }

    // 3. Unsupported version: UNSUPPORTED_VERSION, then close.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&raw_frame(0, MAGIC, 0x7E, Opcode::Ping as u8, 0, &[]))
            .unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::UnsupportedVersion),
            other => panic!("expected UNSUPPORTED_VERSION error frame, got {other:?}"),
        }
        expect_closed(&mut s);
    }

    // 4. Unknown opcode and bad body shape: frame-level violations — the
    //    connection gets an error frame and KEEPS SERVING.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&raw_frame(0, MAGIC, VERSION, 0x55, 0, &[]))
            .unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::UnknownOpcode),
            other => panic!("expected UNKNOWN_OPCODE error frame, got {other:?}"),
        }
        // GET with a truncated 4-byte key.
        s.write_all(&raw_frame(
            4,
            MAGIC,
            VERSION,
            Opcode::Get as u8,
            0,
            &[1, 2, 3, 4],
        ))
        .unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::Malformed),
            other => panic!("expected MALFORMED error frame, got {other:?}"),
        }
        // Same connection still answers a well-formed request.
        let mut ping = Vec::new();
        encode_request(&Request::Ping, &mut ping);
        s.write_all(&ping).unwrap();
        assert_eq!(read_response(&mut s), Response::Pong);
    }

    // 5. A truncated frame followed by a hangup: the server is left
    //    waiting for the rest of the body and must simply drop the
    //    connection when the peer disappears — no reply, no panic.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&raw_frame(
            20,
            MAGIC,
            VERSION,
            Opcode::Scan as u8,
            0,
            &[0xAB; 5],
        ))
        .unwrap();
        drop(s);
    }

    // 6. Nonzero reserved byte in a request header: survivable.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&raw_frame(0, MAGIC, VERSION, Opcode::Ping as u8, 0x99, &[]))
            .unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::Malformed),
            other => panic!("expected MALFORMED error frame, got {other:?}"),
        }
        let mut ping = Vec::new();
        encode_request(&Request::Ping, &mut ping);
        s.write_all(&ping).unwrap();
        assert_eq!(read_response(&mut s), Response::Pong);
    }

    // 7. SCAN_STREAM with a truncated 19-byte body: frame-level
    //    violation — error frame, connection keeps serving, and a
    //    well-formed stream on the same connection still terminates.
    {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(&raw_frame(
            19,
            MAGIC,
            VERSION,
            Opcode::ScanStream as u8,
            0,
            &[0; 19],
        ))
        .unwrap();
        match read_response(&mut s) {
            Response::Error { status, .. } => assert_eq!(status, Status::Malformed),
            other => panic!("expected MALFORMED error frame, got {other:?}"),
        }
        let mut scan = Vec::new();
        encode_request(
            &Request::ScanStream {
                lo: 0,
                hi: u64::MAX,
                limit: 4,
            },
            &mut scan,
        );
        s.write_all(&scan).unwrap();
        match read_response(&mut s) {
            Response::ScanChunk { more, .. } => assert!(!more, "short stream is one final chunk"),
            other => panic!("expected ScanChunk, got {other:?}"),
        }
    }

    // After all of the abuse above, a fresh client connection is served
    // normally: the process never panicked and the accept loop is alive.
    let mut client = Client::connect(addr).unwrap();
    client.put(1234, b"still alive").unwrap();
    assert_eq!(client.get(1234).unwrap(), Some(b"still alive".to_vec()));

    handle.shutdown();
    let served = handle.join();
    assert!(
        served >= 8,
        "expected >= 8 connections served, got {served}"
    );
}

/// A SCAN_STREAM chunk whose body stops mid-entry must parse as a
/// typed BadBody error on the receiving side, never a panic or a
/// silent short read — the client treats it as a poisoned stream.
#[test]
fn truncated_mid_chunk_is_rejected() {
    use e2nvm_server::frame::{encode_scan_chunk, FrameError, RawFrame};

    let entries = vec![(7u64, vec![0xAA; 24]), (9u64, vec![0xBB; 24])];
    let mut bytes = Vec::new();
    encode_scan_chunk(true, &entries, &mut bytes);
    let body = &bytes[8..];
    // Truncate at every point inside the body: through the
    // continuation byte, the count, and both entries. The count claims
    // more entries than the truncated body holds, so every cut must be
    // a survivable BadBody (or a count/size mismatch at the exact
    // entry boundary) — never Ok with fewer entries.
    for cut in 0..body.len() {
        let frame = RawFrame {
            code: Status::Ok as u8,
            aux: Opcode::ScanStream as u8,
            body: &body[..cut],
        };
        match parse_response(&frame) {
            Err(FrameError::BadBody(_)) => {}
            Ok(resp) => panic!("cut at {cut}/{} parsed as {resp:?}", body.len()),
            Err(other) => panic!("cut at {cut} gave unexpected error {other:?}"),
        }
    }
    // The untruncated body still parses whole.
    let frame = RawFrame {
        code: Status::Ok as u8,
        aux: Opcode::ScanStream as u8,
        body,
    };
    assert_eq!(
        parse_response(&frame).unwrap(),
        Response::ScanChunk {
            more: true,
            entries
        }
    );
}
