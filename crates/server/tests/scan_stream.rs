//! End-to-end streaming SCAN: a range whose values total more than
//! the 1 MiB frame cap completes over the wire as multiple chunk
//! frames — on both serving engines — while the legacy single-frame
//! SCAN refuses the same range with SCAN_TOO_LARGE instead of
//! emitting a frame the peer's decoder would fatally reject.

use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::net::TcpStream;

use e2nvm_server::frame::{
    encode_request, parse_response, FrameDecoder, Request, Response, DEFAULT_MAX_BODY,
    MAX_RESPONSE_BODY,
};
use e2nvm_server::{demo::demo_store, Client, Server, ServerConfig, ServerHandle, ThreadedServer};

const VALUE_LEN: usize = 3600;
const KEYS: u64 = 320;

/// Deterministic value for `key`, sized so [`KEYS`] of them total
/// ~1.15 MiB — past the legacy frame cap.
fn value_for(key: u64) -> Vec<u8> {
    let mut state = key.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..VALUE_LEN)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u8
        })
        .collect()
}

fn start(threaded: bool) -> ServerHandle {
    // 384 x 4 KiB segments across 2 shards: room for the 320 values
    // plus placement headroom.
    let store = demo_store(2, 384, 4096, 11);
    let config = ServerConfig::default();
    if threaded {
        ThreadedServer::new(store, config).start()
    } else {
        Server::new(store, config).start()
    }
    .expect("server binds an ephemeral port")
}

fn load(client: &mut Client) -> BTreeMap<u64, Vec<u8>> {
    let mut expected = BTreeMap::new();
    for chunk in (0..KEYS).collect::<Vec<_>>().chunks(32) {
        let pairs: Vec<(u64, Vec<u8>)> = chunk.iter().map(|&k| (k, value_for(k))).collect();
        client.put_many(&pairs).expect("load put_many");
        expected.extend(pairs);
    }
    let total: usize = expected.values().map(Vec::len).sum();
    assert!(
        total > DEFAULT_MAX_BODY,
        "test data ({total} B) must exceed the {DEFAULT_MAX_BODY} B frame cap"
    );
    expected
}

#[test]
fn streamed_scan_past_the_frame_cap_completes_on_both_engines() {
    for threaded in [false, true] {
        let handle = start(threaded);
        let addr = handle.local_addr();
        let mut client = Client::connect(addr).expect("connect");
        let expected = load(&mut client);

        // The legacy single-frame SCAN must refuse the range: its
        // encoded body would exceed the frame cap, and emitting it
        // would poison the peer's decoder. SCAN_TOO_LARGE is a
        // frame-level error — the connection survives.
        let err = client
            .scan(0, u64::MAX, 0)
            .expect_err("over-cap legacy SCAN must error");
        assert!(
            err.to_string().contains("SCAN_STREAM"),
            "error should point at the streaming opcode: {err}"
        );

        // The streamed path serves the same range whole — limit = 0
        // (unlimited) included, the regression the old collect-all
        // SCAN could never answer within one frame.
        let all = client
            .scan_all(0, u64::MAX, 0)
            .expect("streamed scan completes");
        assert_eq!(all.len(), expected.len(), "threaded={threaded}");
        for ((k, v), (ek, ev)) in all.iter().zip(&expected) {
            assert_eq!((k, v), (ek, ev), "threaded={threaded}");
        }

        // Dropping a stream mid-way drains it: the connection stays
        // frame-aligned and keeps serving.
        {
            let mut stream = client.scan_stream(0, u64::MAX, 0).expect("start stream");
            let first = stream.next().expect("one entry").expect("no error");
            assert_eq!(first.0, 0);
        }
        assert_eq!(
            client.get(7).expect("get after dropped stream"),
            Some(value_for(7))
        );

        // Pin the multi-frame shape on the raw socket: one SCAN_STREAM
        // request, N > 1 chunk frames back, every non-terminal chunk
        // flagged more=1, reassembling to the same entries.
        let mut raw = TcpStream::connect(addr).expect("raw connect");
        let mut req = Vec::new();
        encode_request(
            &Request::ScanStream {
                lo: 0,
                hi: u64::MAX,
                limit: 0,
            },
            &mut req,
        );
        raw.write_all(&req).expect("send raw SCAN_STREAM");
        let mut dec = FrameDecoder::new(MAX_RESPONSE_BODY);
        let mut chunks = 0usize;
        let mut reassembled: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut buf = [0u8; 64 * 1024];
        'stream: loop {
            while let Some(frame) = dec.next_frame().expect("well-formed response frames") {
                match parse_response(&frame).expect("chunk parses") {
                    Response::ScanChunk { more, entries } => {
                        chunks += 1;
                        reassembled.extend(entries);
                        if !more {
                            break 'stream;
                        }
                    }
                    other => panic!("expected ScanChunk, got {other:?}"),
                }
            }
            let n = raw.read(&mut buf).expect("read stream");
            assert!(n > 0, "server closed mid-stream");
            dec.extend(&buf[..n]);
        }
        assert!(
            chunks > 1,
            "a > 1 MiB scan must span multiple chunk frames, got {chunks} (threaded={threaded})"
        );
        assert_eq!(reassembled.len(), expected.len());
        drop(raw);

        // Bounded limits still bound: limit = 3 yields the 3 smallest.
        let three = client.scan_all(0, u64::MAX, 3).expect("bounded stream");
        assert_eq!(
            three.iter().map(|(k, _)| *k).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );

        client.shutdown_server().expect("shutdown");
        handle.join();
    }
}

/// `scan_stream_with` drives the callback form; a tiny chunk bound
/// forces many chunks and entries must never split across them.
#[test]
fn callback_form_and_tiny_chunks() {
    let store = demo_store(2, 64, 64, 11);
    let config = ServerConfig::builder()
        .scan_chunk_bytes(64)
        .build()
        .expect("config");
    let handle = Server::new(store, config).start().expect("bind");
    let mut client = Client::connect(handle.local_addr()).expect("connect");
    for k in 0..20u64 {
        client.put(k, &[k as u8; 40]).expect("put");
    }
    // 40-byte values against a 64-byte chunk bound: one entry per
    // chunk (12 + 40 = 52 fits, two do not), so the stream is ~20
    // chunks — and every entry arrives whole.
    let mut seen = Vec::new();
    let n = client
        .scan_stream_with(0, u64::MAX, 0, |k, v| {
            assert_eq!(v, vec![k as u8; 40]);
            seen.push(k);
        })
        .expect("callback stream");
    assert_eq!(n, 20);
    assert_eq!(seen, (0..20).collect::<Vec<_>>());
    client.shutdown_server().expect("shutdown");
    handle.join();
}
