//! Property tests for the wire codec: encode→decode identity for
//! requests and responses, and split-read resilience — a frame stream
//! chopped at arbitrary byte boundaries reassembles to the same
//! frames.

use e2nvm_server::frame::{
    encode_request, encode_response, encode_scan_chunk, is_continuation, parse_request,
    parse_response, FrameDecoder, Opcode, Request, Response, Status, DEFAULT_MAX_BODY,
};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        Just(Request::Ping),
        any::<u64>().prop_map(|key| Request::Get { key }),
        (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..256))
            .prop_map(|(key, value)| Request::Put { key, value }),
        any::<u64>().prop_map(|key| Request::Delete { key }),
        (any::<u64>(), any::<u64>(), any::<u32>()).prop_map(|(lo, hi, limit)| Request::Scan {
            lo,
            hi,
            limit
        }),
        (any::<u64>(), any::<u64>(), any::<u32>())
            .prop_map(|(lo, hi, limit)| { Request::ScanStream { lo, hi, limit } }),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Flush),
        Just(Request::Shutdown),
    ]
}

fn arb_error_status() -> impl Strategy<Value = Status> {
    prop_oneof![
        Just(Status::Degraded),
        Just(Status::PoolDepleted),
        Just(Status::OutOfSpace),
        Just(Status::StoreError),
        Just(Status::ScanTooLarge),
        Just(Status::Malformed),
        Just(Status::UnsupportedVersion),
        Just(Status::UnknownOpcode),
        Just(Status::FrameTooLarge),
        Just(Status::Busy),
        Just(Status::ShuttingDown),
    ]
}

/// Arbitrary printable-ASCII text (the vendored proptest has no regex
/// string strategies).
fn arb_text() -> impl Strategy<Value = String> {
    proptest::collection::vec(0x20u8..0x7Fu8, 0..64)
        .prop_map(|b| String::from_utf8(b).expect("printable ASCII is UTF-8"))
}

/// Responses paired with the echo opcode their encoding carries (OK
/// bodies are interpreted through the echoed opcode, so the pair is
/// what must round-trip).
fn arb_entry() -> impl Strategy<Value = (u64, Vec<u8>)> {
    (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64))
}

fn arb_response() -> impl Strategy<Value = (Response, Option<Opcode>)> {
    prop_oneof![
        Just((Response::Pong, Some(Opcode::Ping))),
        proptest::collection::vec(any::<u8>(), 0..256)
            .prop_map(|v| (Response::Value(v), Some(Opcode::Get))),
        Just((Response::NotFound, Some(Opcode::Get))),
        Just((Response::Stored, Some(Opcode::Put))),
        any::<bool>().prop_map(|b| (Response::Deleted(b), Some(Opcode::Delete))),
        proptest::collection::vec(arb_entry(), 0..8)
            .prop_map(|e| (Response::Entries(e), Some(Opcode::Scan))),
        (any::<bool>(), proptest::collection::vec(arb_entry(), 0..8)).prop_map(
            |(more, entries)| {
                (
                    Response::ScanChunk { more, entries },
                    Some(Opcode::ScanStream),
                )
            }
        ),
        arb_text().prop_map(|s| (Response::Stats(s), Some(Opcode::Stats))),
        arb_text().prop_map(|s| (Response::Metrics(s), Some(Opcode::Metrics))),
        any::<u64>().prop_map(|b| (Response::Flushed(b), Some(Opcode::Flush))),
        Just((Response::ShutdownAck, Some(Opcode::Shutdown))),
        (arb_error_status(), any::<u64>(), arb_text()).prop_map(|(status, retired, message)| {
            (
                Response::Error {
                    status,
                    retired,
                    message,
                },
                Some(Opcode::Put),
            )
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn request_encode_decode_identity(req in arb_request()) {
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let frame = dec.next_frame().unwrap().expect("one whole frame buffered");
        prop_assert_eq!(parse_request(&frame).unwrap(), req);
        prop_assert_eq!(dec.next_frame().unwrap(), None);
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn response_encode_decode_identity((resp, echo) in arb_response()) {
        let mut bytes = Vec::new();
        encode_response(&resp, echo, &mut bytes);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let frame = dec.next_frame().unwrap().expect("one whole frame buffered");
        prop_assert_eq!(parse_response(&frame).unwrap(), resp);
    }

    #[test]
    fn request_stream_survives_arbitrary_chunking(
        reqs in proptest::collection::vec(arb_request(), 1..12),
        chunk_seed in any::<u64>(),
    ) {
        let mut bytes = Vec::new();
        for req in &reqs {
            encode_request(req, &mut bytes);
        }
        // Deterministic "random" chunk sizes derived from the seed —
        // every boundary placement must reassemble identically.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        let mut decoded = Vec::new();
        let mut state = chunk_seed | 1;
        let mut at = 0usize;
        while at < bytes.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let chunk = ((state >> 33) as usize % 17) + 1;
            let end = (at + chunk).min(bytes.len());
            dec.extend(&bytes[at..end]);
            at = end;
            while let Some(frame) = dec.next_frame().unwrap() {
                decoded.push(parse_request(&frame).unwrap());
            }
        }
        prop_assert_eq!(decoded, reqs);
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn chunked_scan_stream_reassembles(
        entries in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..64)), 0..48),
        chunk_bytes in 1usize..256,
        chunk_seed in any::<u64>(),
    ) {
        // Produce the chunk frames exactly the way the server does:
        // greedily pack entries until the next one would exceed the
        // byte bound, emit a more=1 chunk, and finish with one more=0
        // chunk holding the tail (possibly empty). Every placement of
        // the chunk boundary — including one entry per chunk and
        // everything in the terminal chunk — must reassemble to the
        // original entry list through a split-read decoder.
        let mut bytes = Vec::new();
        let mut frames_expected = 0usize;
        let mut chunk: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut used = 0usize;
        for (k, v) in &entries {
            let entry_bytes = 12 + v.len();
            if !chunk.is_empty() && used + entry_bytes > chunk_bytes {
                encode_scan_chunk(true, &chunk, &mut bytes);
                frames_expected += 1;
                chunk.clear();
                used = 0;
            }
            used += entry_bytes;
            chunk.push((*k, v.clone()));
        }
        encode_scan_chunk(false, &chunk, &mut bytes);
        frames_expected += 1;

        // Feed the stream through the decoder at LCG-derived split
        // points and reassemble.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        let mut reassembled: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut frames_seen = 0usize;
        let mut done = false;
        let mut state = chunk_seed | 1;
        let mut at = 0usize;
        while at < bytes.len() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let step = ((state >> 33) as usize % 17) + 1;
            let end = (at + step).min(bytes.len());
            dec.extend(&bytes[at..end]);
            at = end;
            while let Some(frame) = dec.next_frame().unwrap() {
                prop_assert!(!done, "frames after the terminal chunk");
                let terminal = !is_continuation(&frame);
                match parse_response(&frame).unwrap() {
                    Response::ScanChunk { more, entries } => {
                        prop_assert_eq!(more, !terminal);
                        reassembled.extend(entries);
                    }
                    other => prop_assert!(false, "expected ScanChunk, got {:?}", other),
                }
                frames_seen += 1;
                done = terminal;
            }
        }
        prop_assert!(done, "stream never terminated");
        prop_assert_eq!(frames_seen, frames_expected);
        prop_assert_eq!(reassembled, entries);
        prop_assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(
        chunks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 1..8),
    ) {
        // Whatever bytes arrive, the decoder either yields frames,
        // asks for more, or reports a typed error — it never panics
        // and fatal errors are sticky decisions left to the caller.
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        'outer: for chunk in &chunks {
            dec.extend(chunk);
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) => {
                        // Parsing may fail; it must not panic.
                        let _ = parse_request(&frame);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        prop_assert!(e.is_fatal() || !e.is_fatal());
                        if e.is_fatal() {
                            break 'outer;
                        }
                        break;
                    }
                }
            }
        }
    }
}
