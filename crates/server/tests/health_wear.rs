//! The cluster's early-warning contract: a server wearing its device
//! out must make that wear *observable through the HEALTH probe* while
//! it is still serving writes — i.e. before the pool depletes and the
//! only signal left is a hard error. This is what lets the cluster's
//! health prober drain a dying node's key ranges to replicas ahead of
//! the failure instead of reacting to it.

use e2nvm_server::demo::demo_store_with_fault;
use e2nvm_server::{Client, Server, ServerConfig, ServerHandle};
use e2nvm_sim::FaultConfig;
use e2nvm_telemetry::TelemetryRegistry;

/// Boot a reactor server over a device with a deliberately tiny
/// endurance budget so segments retire within a few hundred writes.
/// Telemetry is registered so (with the `telemetry` feature) the wear
/// gauges show up in the METRICS exposition.
fn start_wearing_server() -> (ServerHandle, TelemetryRegistry) {
    let store = demo_store_with_fault(
        4,
        192,
        64,
        7,
        Some(FaultConfig {
            seed: 0xFA_57,
            endurance_bits: 8_000,
            ..FaultConfig::default()
        }),
    );
    let registry = TelemetryRegistry::new();
    let handle = Server::new(store, ServerConfig::default())
        .with_telemetry(&registry)
        .start()
        .expect("server binds an ephemeral port");
    (handle, registry)
}

/// Dense pseudo-random values burn programmed bits fast.
fn burn_value(i: u64, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| {
            let x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(j as u64);
            (x ^ (x >> 31)) as u8
        })
        .collect()
}

/// Write bursts against the faulted server until either wear shows up
/// through HEALTH or the device hard-fails; returns the retired count
/// last observed while writes were still succeeding.
fn burn_until_wear_visible(client: &mut Client) -> (u64, bool) {
    let mut wear_seen_while_healthy = 0u64;
    let mut depleted = false;
    'outer: for burst in 0..400u64 {
        for i in 0..16u64 {
            let key = (burst * 16 + i) % 48;
            let value = burn_value(burst * 16 + i, 60);
            match client.put(key, &value) {
                Ok(()) => {}
                Err(e) => {
                    // The first hard failure ends the burn: any wear
                    // the probe showed before this point was, by
                    // construction, pre-depletion.
                    depleted = true;
                    let msg = e.to_string();
                    assert!(
                        msg.contains("depleted") || msg.contains("degraded"),
                        "write failed for a non-wear reason: {msg}"
                    );
                    break 'outer;
                }
            }
        }
        let wear = client.health().expect("health frame mid-burn");
        assert_eq!(wear.total_segments, 192, "denominator never drifts");
        assert!(
            wear.retired_segments >= wear_seen_while_healthy,
            "retired count is monotone"
        );
        wear_seen_while_healthy = wear.retired_segments;
        if wear_seen_while_healthy >= 2 {
            break;
        }
    }
    (wear_seen_while_healthy, depleted)
}

/// Hammer a faulted server with writes, polling HEALTH between bursts.
/// The test passes only if rising `retired_segments` is visible via
/// the probe *while writes still succeed* — wear must be an early
/// warning, not a post-mortem.
#[test]
fn rising_wear_is_visible_through_health_before_pool_depletion() {
    let (handle, _registry) = start_wearing_server();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let baseline = client.health().expect("health frame");
    assert_eq!(baseline.total_segments, 192, "stable denominator");
    assert_eq!(baseline.retired_segments, 0, "fresh device has no wear");
    assert!(baseline.free_segments > 0 && !baseline.is_depleted());
    assert_eq!(baseline.wear_fraction(), 0.0);

    let (wear_seen_while_healthy, depleted) = burn_until_wear_visible(&mut client);
    assert!(
        wear_seen_while_healthy >= 1,
        "no wear ever became visible through HEALTH while writes still \
         succeeded (depleted={depleted}) — the prober would have had no \
         early warning"
    );

    drop(client);
    handle.shutdown();
    handle.join();
}

/// With the `telemetry` feature compiled in, the same wear numbers are
/// scrapeable as text: serving a HEALTH or METRICS frame refreshes the
/// `e2nvm_server_wear_*` gauges from the store.
#[cfg(feature = "telemetry")]
#[test]
fn wear_gauges_appear_in_metrics_exposition() {
    let (handle, _registry) = start_wearing_server();
    let mut client = Client::connect(handle.local_addr()).expect("connect");

    let (wear_seen, _) = burn_until_wear_visible(&mut client);
    let text = client.metrics().expect("metrics frame");
    let value = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| {
                l.strip_prefix(name)
                    .and_then(|rest| rest.trim().parse::<f64>().ok())
            })
            .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{text}"))
            as u64
    };
    assert_eq!(value("e2nvm_server_wear_total_segments"), 192);
    assert!(
        value("e2nvm_server_wear_retired_segments") >= wear_seen,
        "gauge lags the probe"
    );
    assert!(value("e2nvm_server_wear_free_segments") > 0);

    drop(client);
    handle.shutdown();
    handle.join();
}
