//! Reactor-specific behavior the threaded baseline never had to prove:
//! slow-loris byte trickles, backpressure under a pipelined flood,
//! idle connections riding alongside active ones, prompt drain, and
//! the BUSY cliff at the connection limit. Everything here runs
//! against `Server` (the reactor on Linux, the threaded fallback
//! elsewhere) — the wire-visible behavior must hold either way, with
//! the drain-promptness pin being the one reactor-only guarantee.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use e2nvm_server::frame::{
    encode_request, parse_response, FrameDecoder, Request, Response, Status, DEFAULT_MAX_BODY,
};
use e2nvm_server::{demo::demo_store, Client, Server, ServerConfig, ServerHandle};

fn start_server(config: ServerConfig) -> ServerHandle {
    let store = demo_store(2, 64, 32, 11);
    Server::new(store, config)
        .start()
        .expect("server binds an ephemeral port")
}

/// Read exactly `n` responses off `stream`, in order.
fn read_responses(stream: &mut TcpStream, n: usize) -> Vec<Response> {
    let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
    let mut out = Vec::with_capacity(n);
    let mut chunk = [0u8; 16 * 1024];
    while out.len() < n {
        if let Some(frame) = dec.next_frame().expect("response frames are well-formed") {
            out.push(parse_response(&frame).expect("response parses"));
            continue;
        }
        let read = stream.read(&mut chunk).expect("read from server");
        assert!(
            read > 0,
            "server closed with {} responses owed",
            n - out.len()
        );
        dec.extend(&chunk[..read]);
    }
    out
}

/// A request stream dribbled in one byte at a time must decode — and
/// answer — exactly like the same bytes in one write. This is the
/// partial-frame path: every header and body split lands mid-field at
/// least once.
#[test]
fn slow_loris_byte_trickle_is_served_identically() {
    let handle = start_server(ServerConfig::default());
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();
    s.set_nodelay(true).unwrap();

    let mut bytes = Vec::new();
    encode_request(&Request::Ping, &mut bytes);
    encode_request(&Request::Get { key: 999_999 }, &mut bytes);
    encode_request(
        &Request::Put {
            key: 7,
            value: b"trickled".to_vec(),
        },
        &mut bytes,
    );
    encode_request(&Request::Get { key: 7 }, &mut bytes);

    for byte in &bytes {
        s.write_all(std::slice::from_ref(byte)).unwrap();
    }
    let responses = read_responses(&mut s, 4);
    assert_eq!(responses[0], Response::Pong);
    assert_eq!(responses[1], Response::NotFound);
    assert_eq!(responses[2], Response::Stored);
    assert_eq!(responses[3], Response::Value(b"trickled".to_vec()));

    drop(s);
    handle.shutdown();
    handle.join();
}

/// A connection that floods far past the per-connection queue bound
/// gets every response, in order — backpressure pauses its reads
/// instead of dropping it or corrupting the pipeline.
#[test]
fn flood_past_queue_bound_is_answered_in_order() {
    let config = ServerConfig::builder()
        .queue_depth(2)
        .build()
        .expect("tiny queue bound is valid");
    let handle = start_server(config);
    let mut s = TcpStream::connect(handle.local_addr()).unwrap();

    // A small rotating key set keeps the demo store inside its segment
    // budget while the pipeline floods; ordered execution guarantees
    // each GET observes the PUT immediately before it, not a later
    // overwrite of the same key.
    const FLOOD: usize = 500;
    const KEYS: u64 = 8;
    let mut bytes = Vec::new();
    for i in 0..FLOOD {
        let key = i as u64 % KEYS;
        encode_request(
            &Request::Put {
                key,
                value: format!("v{i}").into_bytes(),
            },
            &mut bytes,
        );
        encode_request(&Request::Get { key }, &mut bytes);
    }
    s.write_all(&bytes).unwrap();

    let responses = read_responses(&mut s, FLOOD * 2);
    for i in 0..FLOOD {
        assert_eq!(responses[2 * i], Response::Stored, "PUT {i}");
        assert_eq!(
            responses[2 * i + 1],
            Response::Value(format!("v{i}").into_bytes()),
            "GET {i}"
        );
    }

    drop(s);
    handle.shutdown();
    handle.join();
}

/// With telemetry built, the flood above must actually exercise the
/// pause path (not just happen to keep up).
#[cfg(all(feature = "telemetry", target_os = "linux"))]
#[test]
fn flood_past_queue_bound_pauses_reads() {
    use e2nvm_telemetry::TelemetryRegistry;

    let store = demo_store(2, 64, 32, 11);
    let registry = TelemetryRegistry::new();
    let config = ServerConfig::builder()
        .queue_depth(2)
        .build()
        .expect("tiny queue bound is valid");
    let handle = Server::new(store, config)
        .with_telemetry(&registry)
        .start()
        .expect("server binds an ephemeral port");

    let mut client = Client::connect(handle.local_addr()).unwrap();
    // Rotate a small key set (stays inside the demo store's segment
    // budget); the 400-deep pipeline against queue_depth=2 is what
    // forces the pause.
    let pairs: Vec<(u64, Vec<u8>)> = (0..400u64).map(|i| (i % 8, vec![i as u8; 16])).collect();
    client.put_many(&pairs).expect("flooded puts all answered");
    let metrics = client.metrics().expect("METRICS frame");

    let paused: f64 = metrics
        .lines()
        .find_map(|l| l.strip_prefix("e2nvm_server_reads_paused_total "))
        .expect("reactor publishes the reads-paused series")
        .trim()
        .parse()
        .unwrap();
    assert!(
        paused > 0.0,
        "a 400-deep pipeline against a 2-item queue bound never paused reads"
    );

    drop(client);
    handle.shutdown();
    handle.join();
}

/// Idle connections cost nothing and break nothing: requests on an
/// active connection are served normally while many idle sockets sit
/// registered, and the idle sockets stay open throughout.
#[test]
fn idle_connections_ride_alongside_active_ones() {
    let handle = start_server(ServerConfig::default());
    let addr = handle.local_addr();

    let idle: Vec<TcpStream> = (0..32).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut client = Client::connect(addr).unwrap();
    for i in 0..50u64 {
        client.put(i, format!("busy{i}").as_bytes()).unwrap();
        assert_eq!(
            client.get(i).unwrap(),
            Some(format!("busy{i}").into_bytes())
        );
    }
    // The idle sockets were never closed under us: a request on one is
    // still served.
    let mut late = idle.into_iter().next().unwrap();
    let mut ping = Vec::new();
    encode_request(&Request::Ping, &mut ping);
    late.write_all(&ping).unwrap();
    assert_eq!(read_responses(&mut late, 1)[0], Response::Pong);

    drop(client);
    drop(late);
    handle.shutdown();
    handle.join();
}

/// The drain-latency regression pin (the threaded engine's cliff): a
/// server configured with a long read timeout and a fleet of idle
/// connections must still shut down promptly. Under the old
/// thread-per-connection model each idle connection's thread noticed
/// the flag only at its next read timeout, so this exact scenario took
/// up to `read_timeout` (5s here); the reactor's eventfd wakeup plus
/// drain walk retires it in milliseconds.
#[cfg(target_os = "linux")]
#[test]
fn reactor_drain_is_prompt_despite_long_read_timeout() {
    let config = ServerConfig::builder()
        .read_timeout(Duration::from_secs(5))
        .build()
        .expect("long liveness tick is valid");
    let handle = start_server(config);
    let addr = handle.local_addr();

    let _idle: Vec<TcpStream> = (0..8).map(|_| TcpStream::connect(addr).unwrap()).collect();
    let mut client = Client::connect(addr).unwrap();
    assert!(client.ping().is_ok());
    drop(client);

    handle.shutdown();
    let t0 = Instant::now();
    let served = handle.join();
    let drain = t0.elapsed();
    assert!(
        served >= 9,
        "expected >= 9 connections served, got {served}"
    );
    assert!(
        drain < Duration::from_secs(1),
        "drain took {drain:?}; the reactor must not wait out read timeouts"
    );
}

/// Past `max_connections` the next client is still told why: a BUSY
/// error frame, then close — the fd-exhaustion backstop kept from the
/// threaded model (ordinary overload is handled by backpressure long
/// before this).
#[test]
fn busy_frame_past_max_connections() {
    let config = ServerConfig::builder()
        .max_connections(2)
        .build()
        .expect("tiny connection limit is valid");
    let handle = start_server(config);
    let addr = handle.local_addr();

    // Fill the limit and prove both are registered (served a request).
    let mut a = Client::connect(addr).unwrap();
    let mut b = Client::connect(addr).unwrap();
    assert!(a.ping().is_ok());
    assert!(b.ping().is_ok());

    let mut rejected = TcpStream::connect(addr).unwrap();
    rejected
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    match &read_responses(&mut rejected, 1)[0] {
        Response::Error { status, .. } => assert_eq!(*status, Status::Busy),
        other => panic!("expected BUSY error frame, got {other:?}"),
    }
    let mut rest = Vec::new();
    rejected
        .read_to_end(&mut rest)
        .expect("rejected connection closes cleanly");
    assert!(rest.is_empty(), "nothing follows the BUSY frame");

    // The registered connections were untouched by the reject.
    assert!(a.ping().is_ok());
    assert!(b.ping().is_ok());

    drop(a);
    drop(b);
    handle.shutdown();
    handle.join();
}
