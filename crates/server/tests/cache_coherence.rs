//! Cross-connection cache coherence against a live server: the cache
//! is shared by every connection, so a PUT or DELETE acked on one
//! connection must be visible to a GET on *another* connection that
//! had already pulled the old value into the cache. The wire protocol
//! gives no repair mechanism — if invalidation were asynchronous these
//! tests would catch the stale read.

use e2nvm_server::demo::demo_store;
use e2nvm_server::{CacheConfig, Client, Server, ServerConfig, ServerHandle};
use e2nvm_telemetry::TelemetryRegistry;

/// A cache-fronted server on an ephemeral loopback port, with its
/// telemetry registered so the METRICS frame exposes `e2nvm_cache_*`.
fn start_cached_server() -> (ServerHandle, TelemetryRegistry) {
    let store = demo_store(2, 64, 32, 11);
    let config = ServerConfig::builder()
        .cache(
            CacheConfig::builder()
                .capacity_bytes(1 << 20)
                .build()
                .unwrap(),
        )
        .build()
        .expect("valid config");
    let registry = TelemetryRegistry::new();
    let handle = Server::new(store, config)
        .with_telemetry(&registry)
        .start()
        .expect("server binds an ephemeral port");
    (handle, registry)
}

/// Writer and reader are different connections. The reader GETs twice
/// (the second is served from the cache), then the writer overwrites
/// and deletes; the reader must observe each mutation immediately.
#[test]
fn put_and_delete_invalidate_across_connections() {
    let (handle, _registry) = start_cached_server();
    let addr = handle.local_addr();
    let mut writer = Client::connect(addr).expect("writer connects");
    let mut reader = Client::connect(addr).expect("reader connects");

    writer.put(7, b"v1").expect("initial put");
    assert_eq!(
        reader.get(7).expect("first read").as_deref(),
        Some(&b"v1"[..])
    );
    // Second read is a cache hit — same bytes, now from DRAM.
    assert_eq!(
        reader.get(7).expect("cached read").as_deref(),
        Some(&b"v1"[..])
    );

    // Overwrite on the *writer* connection; the reader's next GET must
    // see v2, not the cached v1 — the PUT ack implies the invalidation
    // already happened.
    writer.put(7, b"v2").expect("overwrite");
    assert_eq!(
        reader.get(7).expect("read after overwrite").as_deref(),
        Some(&b"v2"[..]),
        "reader observed a stale cached value after a cross-connection PUT"
    );

    // Same for DELETE: the acked delete must not leave a cached ghost.
    assert!(writer.delete(7).expect("delete"));
    assert_eq!(
        reader.get(7).expect("read after delete"),
        None,
        "reader observed a deleted key from the cache"
    );

    writer.shutdown_server().expect("clean shutdown");
    handle.join();
}

/// A key bounced between connections many times: every read observes
/// the latest acked write, regardless of which connection wrote it and
/// how hot the key is in the cache.
#[test]
fn ping_pong_writes_never_serve_stale() {
    let (handle, _registry) = start_cached_server();
    let addr = handle.local_addr();
    let mut a = Client::connect(addr).expect("conn a");
    let mut b = Client::connect(addr).expect("conn b");

    for round in 0u32..50 {
        let value = round.to_le_bytes();
        // Alternate the writing connection; the other one reads.
        let (writer, reader) = if round % 2 == 0 {
            (&mut a, &mut b)
        } else {
            (&mut b, &mut a)
        };
        writer.put(3, &value).expect("put");
        // Read twice: once possibly filling, once from the cache.
        for _ in 0..2 {
            assert_eq!(
                reader.get(3).expect("get").as_deref(),
                Some(&value[..]),
                "stale read in round {round}"
            );
        }
    }

    a.shutdown_server().expect("clean shutdown");
    handle.join();
}

/// With the `telemetry` feature the shared cache's counters are
/// visible through the METRICS frame, and repeated hot reads are
/// actually served from the cache (hits advance), proving the
/// cross-connection reads above exercised the cache rather than a
/// cache that silently never engaged.
#[cfg(feature = "telemetry")]
#[test]
fn metrics_prove_cache_engagement() {
    let (handle, _registry) = start_cached_server();
    let addr = handle.local_addr();
    let mut client = Client::connect(addr).expect("connect");

    client.put(1, b"hot").expect("put");
    for _ in 0..10 {
        assert_eq!(client.get(1).expect("get").as_deref(), Some(&b"hot"[..]));
    }
    let metrics = client.metrics().expect("METRICS frame");
    let value = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| {
                l.strip_prefix(name)
                    .and_then(|rest| rest.trim().parse::<f64>().ok())
            })
            .unwrap_or_else(|| panic!("metric {name} missing from exposition:\n{metrics}"))
            as u64
    };
    let hits = value("e2nvm_cache_hits_total");
    let misses = value("e2nvm_cache_misses_total");
    assert!(hits >= 9, "expected >= 9 cache hits, got {hits}");
    assert_eq!(hits + misses, 10, "every GET is either a hit or a miss");
    assert!(value("e2nvm_cache_invalidations_total") >= 1);

    client.shutdown_server().expect("clean shutdown");
    handle.join();
}
