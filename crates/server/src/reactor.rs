//! The readiness-based serving engine: one event-loop thread driving
//! nonblocking sockets through epoll, plus a small fixed worker pool
//! (`crate::worker`) executing decoded request batches.
//!
//! ```text
//!             epoll (level-triggered)
//!   listener ──► accept, register            ┌──────────────┐
//!   eventfd  ──► completion/shutdown wakeup  │ worker pool  │
//!   conn fd  ──► read ─► FrameDecoder ─► per-connection queue
//!        ▲                                   │  exec batch  │
//!        └── flush ◄─ write buffer ◄─ Completion bytes ◄────┘
//! ```
//!
//! Per-connection state machine: bytes read on the event loop are
//! decoded into ordered `Work` items; when a connection has items
//! queued and no batch in flight, the whole queue ships to a worker as
//! one `Job`. The worker's `Completion` carries the encoded
//! response bytes back; the event loop appends them to the
//! connection's write buffer and flushes under level-triggered
//! `EPOLLOUT`. At most one batch per connection is ever in flight, so
//! responses keep request order with zero cross-worker coordination.
//!
//! **Backpressure** replaces the BUSY-at-accept cliff: when a
//! connection's queue reaches [`ServerConfig::queue_depth`] items (or
//! its un-flushed write backlog exceeds one frame cap), the reactor
//! drops the connection's read interest — the kernel receive buffer
//! fills, TCP flow control pauses the sender, and nobody is
//! disconnected. Reads resume once the queue drains below half. The
//! bound is approximate by up to one read's worth of frames (the
//! scratch read that crosses the threshold is still decoded in full).
//!
//! **Graceful drain** walks the readiness set instead of joining N
//! threads: on shutdown the listener is deregistered, reads stop,
//! every queued item is dispatched and answered, write buffers flush,
//! and connections close — promptly (an eventfd wakeup, not a
//! read-timeout poll), bounded by [`DRAIN_DEADLINE`] against peers
//! that stop reading their responses.

#![cfg(target_os = "linux")]

use crate::dispatch::{collect_work, CollectEnd, ExecCtx, Work};
use crate::frame::FrameDecoder;
use crate::server::{ServeParts, ServerConfig};
use crate::sys::{Poller, PollerEvent, Waker};
use crate::telemetry::ServerTelemetry;
use crate::threaded::reject_busy;
use crate::worker::{Completion, Job, WorkerPool};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard bound on how long a drain waits for peers to accept their
/// final responses before force-closing them.
pub const DRAIN_DEADLINE: Duration = Duration::from_secs(5);

/// Pause reads when a connection's un-flushed write backlog exceeds
/// this many bytes (one default frame cap): a client that pipelines
/// requests but never reads responses stops being read long before
/// its responses exhaust server memory.
const WRITE_BACKLOG_PAUSE: usize = 1 << 20;

/// At or below this many active connections, batches run to completion
/// on the reactor thread instead of being handed to the worker pool.
/// At low fan-in the pool buys no meaningful parallelism but charges
/// two thread handoffs per batch (submit wake + completion wake) —
/// on microsecond store ops that overhead is 20–40% of throughput.
/// Past the threshold the pool takes over: it keeps a slow batch from
/// stalling hundreds of ready connections and spreads execution
/// across cores. Correctness is identical either way (one batch per
/// connection in flight, same `ExecCtx`), so the switch can flap with
/// `active` freely.
const INLINE_ACTIVE_MAX: usize = 8;

/// epoll token of the listener.
const TOKEN_LISTENER: u64 = u64::MAX;
/// epoll token of the wakeup eventfd.
const TOKEN_WAKER: u64 = u64::MAX - 1;

/// Spawn the reactor thread. Returns once the thread is running; the
/// thread returns the number of connections served over its lifetime.
pub(crate) fn spawn(
    listener: TcpListener,
    parts: ServeParts,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
) -> std::io::Result<JoinHandle<usize>> {
    let workers = parts.config.effective_workers();
    let pool = WorkerPool::spawn(workers, waker.clone(), || ExecCtx {
        store: parts.front.clone(),
        registry: parts.registry.clone(),
        telemetry: parts.telemetry.clone(),
        coalesce_puts: parts.config.coalesce_puts,
        max_frame_body: parts.config.max_frame_body,
        scan_chunk_bytes: parts.config.scan_chunk_bytes,
    })?;
    // The reactor thread's own execution context, for batches it runs
    // inline at low fan-in (see `INLINE_ACTIVE_MAX`).
    let exec = ExecCtx {
        store: parts.front.clone(),
        registry: parts.registry.clone(),
        telemetry: parts.telemetry.clone(),
        coalesce_puts: parts.config.coalesce_puts,
        max_frame_body: parts.config.max_frame_body,
        scan_chunk_bytes: parts.config.scan_chunk_bytes,
    };
    let poller = Poller::new()?;
    std::thread::Builder::new()
        .name("e2nvm-reactor".into())
        .spawn(move || Reactor::new(listener, parts, shutdown, waker, poller, pool, exec).run())
}

/// One connection's state, owned by the event loop.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    /// Decoded, not yet dispatched items (ordered).
    pending: VecDeque<Work>,
    /// Whether a batch is at a worker right now.
    in_flight: bool,
    /// Items in the in-flight batch (gauge bookkeeping).
    in_flight_items: usize,
    /// Encoded-but-unflushed response bytes, `out_pos` already written.
    outbuf: Vec<u8>,
    out_pos: usize,
    /// Reads stopped for good: EOF, fatal violation queued, SHUTDOWN
    /// answered, or server drain.
    read_closed: bool,
    /// Reads stopped temporarily by backpressure.
    paused: bool,
    /// Close as soon as the write buffer flushes, without waiting for
    /// `pending` (which was voided) — fatal violation or SHUTDOWN.
    close_after_flush: bool,
    /// Interest bits currently registered with the poller.
    reg_readable: bool,
    reg_writable: bool,
}

impl Conn {
    fn backlog(&self) -> usize {
        self.outbuf.len() - self.out_pos
    }

    fn queued(&self) -> usize {
        self.pending.len() + self.in_flight_items
    }
}

struct Reactor {
    listener: TcpListener,
    config: ServerConfig,
    telemetry: ServerTelemetry,
    parts_for_stop: ServeParts,
    shutdown: Arc<AtomicBool>,
    waker: Waker,
    poller: Poller,
    pool: Option<WorkerPool>,
    /// Execution context for inline (low fan-in) batches.
    exec: ExecCtx,
    conns: Vec<Option<Conn>>,
    /// Slot generations; bumped on free so a stale completion or a
    /// stale event from the current batch can never reach a slot's new
    /// tenant.
    gens: Vec<u32>,
    free: Vec<usize>,
    active: usize,
    served: usize,
    draining: Option<Instant>,
    scratch: Vec<u8>,
    completions: Vec<Completion>,
    events: Vec<PollerEvent>,
}

impl Reactor {
    fn new(
        listener: TcpListener,
        parts: ServeParts,
        shutdown: Arc<AtomicBool>,
        waker: Waker,
        poller: Poller,
        pool: WorkerPool,
        exec: ExecCtx,
    ) -> Self {
        Self {
            listener,
            config: parts.config.clone(),
            telemetry: parts.telemetry.clone(),
            parts_for_stop: parts,
            shutdown,
            waker,
            poller,
            pool: Some(pool),
            exec,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            active: 0,
            served: 0,
            draining: None,
            scratch: vec![0u8; 64 * 1024],
            completions: Vec::new(),
            events: Vec::new(),
        }
    }

    fn token_of(&self, idx: usize) -> u64 {
        ((self.gens[idx] as u64) << 32) | idx as u64
    }

    fn run(mut self) -> usize {
        if self.poller.listener_setup(&self.listener).is_err()
            || self
                .poller
                .add(self.waker.as_raw_fd(), TOKEN_WAKER, true, false)
                .is_err()
        {
            // Registration failed at boot: nothing is serveable.
            self.pool.take().unwrap().stop();
            return 0;
        }
        let tick_ms = self
            .config
            .read_timeout
            .as_millis()
            .clamp(1, i32::MAX as u128) as i32;
        loop {
            self.apply_completions();
            if self.shutdown.load(Ordering::SeqCst) && self.draining.is_none() {
                self.enter_drain();
            }
            if let Some(since) = self.draining {
                if self.active == 0 {
                    break;
                }
                if since.elapsed() > DRAIN_DEADLINE {
                    // Peers refusing to read their final responses:
                    // force the remaining sockets closed.
                    for idx in 0..self.conns.len() {
                        if self.conns[idx].is_some() {
                            self.close(idx);
                        }
                    }
                    break;
                }
            }
            let timeout = if self.draining.is_some() { 10 } else { tick_ms };
            self.events.clear();
            let mut events = std::mem::take(&mut self.events);
            if self.poller.wait(&mut events, timeout).is_err() {
                self.events = events;
                break;
            }
            self.telemetry.reactor_wakeups.inc();
            self.telemetry.reactor_ready_events.add(events.len() as u64);
            for ev in &events {
                match ev.token {
                    TOKEN_WAKER => self.waker.drain(),
                    TOKEN_LISTENER => {
                        if self.draining.is_none() {
                            self.accept_ready();
                        }
                    }
                    token => self.conn_ready(token, ev.readable, ev.writable),
                }
            }
            self.events = events;
        }
        self.pool.take().unwrap().stop();
        self.parts_for_stop.record_stopped(self.served);
        self.served
    }

    // ---- accept ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.active >= self.config.max_connections {
                        self.telemetry.connections_rejected.inc();
                        self.telemetry.count_error(crate::frame::Status::Busy);
                        reject_busy(stream);
                        continue;
                    }
                    if self.register(stream).is_ok() {
                        self.served += 1;
                        self.telemetry.connections_opened.inc();
                        self.telemetry.connections_active.add(1);
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                // Transient accept errors (ECONNABORTED, EMFILE...):
                // leave the rest for the next readiness event.
                Err(_) => return,
            }
        }
    }

    fn register(&mut self, stream: TcpStream) -> std::io::Result<()> {
        use std::os::fd::AsRawFd;
        stream.set_nonblocking(true)?;
        let _ = stream.set_nodelay(true);
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let token = self.token_of(idx);
        self.poller.add(stream.as_raw_fd(), token, true, false)?;
        self.conns[idx] = Some(Conn {
            stream,
            decoder: FrameDecoder::new(self.config.max_frame_body),
            pending: VecDeque::new(),
            in_flight: false,
            in_flight_items: 0,
            outbuf: Vec::with_capacity(4096),
            out_pos: 0,
            read_closed: false,
            paused: false,
            close_after_flush: false,
            reg_readable: true,
            reg_writable: false,
        });
        self.active += 1;
        Ok(())
    }

    // ---- per-connection events --------------------------------------

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool) {
        let idx = (token & 0xFFFF_FFFF) as usize;
        let gen = (token >> 32) as u32;
        // Stale event for a slot that was closed (and possibly reused)
        // earlier in this same event batch.
        if idx >= self.conns.len() || self.gens[idx] != gen || self.conns[idx].is_none() {
            return;
        }
        if writable && !self.flush(idx) {
            return;
        }
        if readable {
            self.read_ready(idx);
        }
        self.after_progress(idx);
    }

    /// Read until WouldBlock / EOF / pause, decoding as we go.
    fn read_ready(&mut self, idx: usize) {
        loop {
            let conn = match &mut self.conns[idx] {
                Some(c) if !c.read_closed && !c.paused => c,
                _ => return,
            };
            let n = match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Peer EOF: answer what already arrived, then the
                    // close falls out of the pending/flush walk.
                    conn.read_closed = true;
                    return;
                }
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return;
                }
            };
            self.telemetry.bytes_read.add(n as u64);
            conn.decoder.extend(&self.scratch[..n]);
            let before = conn.pending.len();
            let mut items = Vec::new();
            let end = collect_work(&mut conn.decoder, &mut items);
            conn.pending.extend(items);
            self.telemetry
                .queued_items
                .add((conn.pending.len() - before) as i64);
            if end == CollectEnd::Fatal {
                // The stream is poisoned: the final pending item is the
                // fatal violation's error frame; answer-then-close.
                conn.read_closed = true;
                return;
            }
            if conn.pending.len() >= self.config.queue_depth || conn.backlog() > WRITE_BACKLOG_PAUSE
            {
                conn.paused = true;
                self.telemetry.reads_paused.inc();
                return;
            }
        }
    }

    /// Flush the write buffer as far as the socket allows. Returns
    /// `false` when the connection died (and was closed).
    fn flush(&mut self, idx: usize) -> bool {
        let conn = match &mut self.conns[idx] {
            Some(c) => c,
            None => return false,
        };
        while conn.out_pos < conn.outbuf.len() {
            match conn.stream.write(&conn.outbuf[conn.out_pos..]) {
                Ok(0) => {
                    self.close(idx);
                    return false;
                }
                Ok(n) => {
                    conn.out_pos += n;
                    self.telemetry.bytes_written.add(n as u64);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(idx);
                    return false;
                }
            }
        }
        if conn.out_pos == conn.outbuf.len() {
            conn.outbuf.clear();
            conn.out_pos = 0;
        } else if conn.out_pos >= 64 * 1024 {
            // Reclaim the flushed prefix so a long-lived slow reader
            // doesn't pin its history.
            conn.outbuf.drain(..conn.out_pos);
            conn.out_pos = 0;
        }
        true
    }

    /// After any read/flush/completion progress on `idx`: dispatch the
    /// next batch, re-balance backpressure, sync poller interest, and
    /// close if this connection is finished.
    fn after_progress(&mut self, idx: usize) {
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        // Dispatch: one batch per connection in flight at a time. At
        // low fan-in the batch runs to completion right here on the
        // reactor thread (no pool handoff); past `INLINE_ACTIVE_MAX`
        // it goes to the worker pool.
        let mut ran_inline = false;
        if !conn.in_flight && !conn.pending.is_empty() {
            let items: Vec<Work> = conn.pending.drain(..).collect();
            let n = items.len();
            self.telemetry.dispatch_batch_items.observe(n as u64);
            if self.active <= INLINE_ACTIVE_MAX {
                let outcome = self.exec.exec_batch(items, &mut conn.outbuf);
                self.telemetry.queued_items.sub(n as i64);
                if outcome.shutdown {
                    self.shutdown.store(true, Ordering::SeqCst);
                }
                if outcome.close {
                    // `pending` is already empty (the batch was all of
                    // it), so unlike the completion path there is no
                    // voided remainder to clear.
                    conn.read_closed = true;
                    conn.close_after_flush = true;
                }
                ran_inline = true;
            } else {
                conn.in_flight = true;
                conn.in_flight_items = n;
                let job = Job {
                    token: idx as u32,
                    gen: self.gens[idx],
                    items,
                };
                self.pool.as_ref().unwrap().submit(job);
            }
        }
        if ran_inline && !self.flush(idx) {
            return; // the connection died on the write
        }
        let Some(conn) = &mut self.conns[idx] else {
            return;
        };
        // Resume reads once the queue has drained below half and the
        // write backlog is sane again.
        if conn.paused
            && conn.pending.len() <= self.config.queue_depth / 2
            && conn.backlog() <= WRITE_BACKLOG_PAUSE
        {
            conn.paused = false;
        }
        // Finished? (EOF/fatal/drain with everything answered, or an
        // explicit close-after-flush with the buffer empty.)
        let flushed = conn.backlog() == 0;
        let done = (conn.close_after_flush && flushed && !conn.in_flight)
            || (conn.read_closed && conn.pending.is_empty() && !conn.in_flight && flushed);
        if done {
            self.close(idx);
            return;
        }
        // Sync poller interest with desired state (level-triggered:
        // wanting EPOLLOUT only while there is backlog avoids a
        // busy-wake on always-writable idle sockets).
        let want_r = !conn.read_closed && !conn.paused;
        let want_w = !flushed;
        if want_r != conn.reg_readable || want_w != conn.reg_writable {
            use std::os::fd::AsRawFd;
            let fd = conn.stream.as_raw_fd();
            let token = ((self.gens[idx] as u64) << 32) | idx as u64;
            conn.reg_readable = want_r;
            conn.reg_writable = want_w;
            if self.poller.modify(fd, token, want_r, want_w).is_err() {
                self.close(idx);
            }
        }
    }

    fn close(&mut self, idx: usize) {
        use std::os::fd::AsRawFd;
        let Some(conn) = self.conns[idx].take() else {
            return;
        };
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        self.telemetry.queued_items.sub(conn.queued() as i64);
        self.telemetry.connections_active.sub(1);
        self.gens[idx] = self.gens[idx].wrapping_add(1);
        self.free.push(idx);
        self.active -= 1;
        // conn drops here, closing the fd.
    }

    // ---- completions & drain ----------------------------------------

    fn apply_completions(&mut self) {
        let mut completions = std::mem::take(&mut self.completions);
        self.pool
            .as_ref()
            .unwrap()
            .drain_completions(&mut completions);
        for done in completions.drain(..) {
            if done.shutdown {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            let idx = done.token as usize;
            if idx >= self.conns.len() || self.gens[idx] != done.gen || self.conns[idx].is_none() {
                continue; // the connection died mid-flight
            }
            let conn = self.conns[idx].as_mut().unwrap();
            self.telemetry.queued_items.sub(conn.in_flight_items as i64);
            conn.in_flight = false;
            conn.in_flight_items = 0;
            conn.outbuf.extend_from_slice(&done.bytes);
            if done.close {
                // Fatal violation answered or SHUTDOWN acked: anything
                // decoded after it is void (the peer's pipeline ends
                // at the close), exactly as the threaded server drops
                // the rest of a poisoned read batch.
                self.telemetry.queued_items.sub(conn.pending.len() as i64);
                conn.pending.clear();
                conn.read_closed = true;
                conn.close_after_flush = true;
            }
            if self.flush(idx) {
                self.after_progress(idx);
            }
        }
        self.completions = completions;
    }

    fn enter_drain(&mut self) {
        use std::os::fd::AsRawFd;
        self.draining = Some(Instant::now());
        let _ = self.poller.remove(self.listener.as_raw_fd());
        // Walk the set once: stop reads everywhere, dispatch whatever
        // is still queued, and let the normal completion/flush path
        // retire each connection.
        for idx in 0..self.conns.len() {
            if let Some(conn) = &mut self.conns[idx] {
                conn.read_closed = true;
                self.after_progress(idx);
            }
        }
    }
}

impl Poller {
    /// Register the listener under its fixed token.
    fn listener_setup(&self, listener: &TcpListener) -> std::io::Result<()> {
        use std::os::fd::AsRawFd;
        self.add(listener.as_raw_fd(), TOKEN_LISTENER, true, false)
    }
}
