//! # e2nvm-server — the network serving layer
//!
//! Puts the sharded E2-NVM KV store behind a TCP socket with a
//! length-prefixed binary protocol (the full wire spec is
//! `PROTOCOL.md` at the repository root), so the paper's placement
//! pipeline can serve remote traffic instead of only in-process calls.
//!
//! * [`frame`] — the wire format: opcodes, statuses, frame
//!   encode/decode, and the incremental split-read-safe
//!   [`FrameDecoder`].
//! * [`server`] — [`Server`]: a std-only TCP server fronting a
//!   [`ShardedE2KvStore`](e2nvm_kvstore::ShardedE2KvStore) with
//!   request pipelining, bounded connections, typed error frames, and
//!   graceful shutdown. On Linux it serves with a readiness-based
//!   epoll reactor plus a fixed worker pool ([`reactor`]); elsewhere
//!   it falls back to thread-per-connection.
//! * [`threaded`] — [`ThreadedServer`]: the thread-per-connection
//!   engine, kept as a measurable baseline you can select explicitly.
//! * [`client`] — [`Client`]: a blocking pipelined client (also what
//!   the `e2nvm-loadgen` binary drives).
//! * [`telemetry`] — wire-level counters/gauges/histograms under
//!   `e2nvm_server_*`, composing with the store's series on one
//!   registry.
//! * [`demo`] — a trained, ready-to-serve demo store shared by the
//!   binaries, examples, and tests.
//!
//! ```
//! use e2nvm_server::{demo, Client, Server, ServerConfig};
//!
//! let store = demo::demo_store(2, 32, 32, 7);
//! let handle = Server::new(store, ServerConfig::default()).start().unwrap();
//! let mut client = Client::connect(handle.local_addr()).unwrap();
//! client.put(1, b"hello").unwrap();
//! assert_eq!(client.get(1).unwrap().unwrap(), b"hello");
//! handle.shutdown();
//! handle.join();
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod demo;
mod dispatch;
pub mod frame;
#[cfg(target_os = "linux")]
pub mod reactor;
pub mod server;
#[cfg(target_os = "linux")]
mod sys;
pub mod telemetry;
pub mod threaded;
#[cfg(target_os = "linux")]
mod worker;

pub use client::{Client, ScanStream};
pub use frame::{FrameDecoder, FrameError, Opcode, Request, Response, Status};
pub use server::{Server, ServerConfig, ServerConfigBuilder, ServerHandle};
pub use telemetry::ServerTelemetry;
pub use threaded::ThreadedServer;

// Re-exported so server embedders can shape `ServerConfig::cache`
// without naming the kvstore crate directly.
pub use e2nvm_kvstore::{CacheConfig, CacheConfigBuilder};
