//! A blocking client for the wire protocol, with request pipelining.
//!
//! [`Client::call`] is the one-request convenience;
//! [`Client::pipeline`] writes a whole batch of requests in one flush
//! and then reads the batch's responses — the protocol guarantees
//! responses come back in request order, so the k-th response answers
//! the k-th request.

use crate::frame::{
    encode_request, parse_response, FrameDecoder, Request, Response, Status, DEFAULT_MAX_BODY,
};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an `e2nvm-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    wrbuf: Vec<u8>,
    rdbuf: Vec<u8>,
}

impl Client {
    /// Connect to `addr` (Nagle disabled — frames are already
    /// batched explicitly by the pipeline API).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            decoder: FrameDecoder::new(DEFAULT_MAX_BODY),
            wrbuf: Vec::with_capacity(4096),
            rdbuf: vec![0u8; 16 * 1024],
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let mut resps = self.pipeline(std::slice::from_ref(req))?;
        Ok(resps
            .pop()
            .expect("pipeline returns one response per request"))
    }

    /// Send `reqs` back to back in one write, then read exactly one
    /// response per request, in order. This is the unit of pipelining:
    /// `depth` outstanding requests = a `reqs` slice of that length.
    pub fn pipeline(&mut self, reqs: &[Request]) -> std::io::Result<Vec<Response>> {
        self.wrbuf.clear();
        for req in reqs {
            encode_request(req, &mut self.wrbuf);
        }
        self.stream.write_all(&self.wrbuf)?;
        let mut responses = Vec::with_capacity(reqs.len());
        while responses.len() < reqs.len() {
            // Drain frames already buffered before touching the socket.
            match self.decoder.next_frame() {
                Ok(Some(raw)) => {
                    let resp = parse_response(&raw)
                        .map_err(|e| std::io::Error::new(ErrorKind::InvalidData, e.to_string()))?;
                    responses.push(resp);
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
                }
            }
            let n = self.stream.read(&mut self.rdbuf)?;
            if n == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!(
                        "server closed the connection with {} of {} responses outstanding",
                        reqs.len() - responses.len(),
                        reqs.len()
                    ),
                ));
            }
            self.decoder.extend(&self.rdbuf[..n]);
        }
        Ok(responses)
    }

    /// GET `key`; `Ok(None)` when absent.
    pub fn get(&mut self, key: u64) -> std::io::Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// PUT `key` → `value`.
    pub fn put(&mut self, key: u64, value: &[u8]) -> std::io::Result<()> {
        match self.call(&Request::Put {
            key,
            value: value.to_vec(),
        })? {
            Response::Stored => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// DELETE `key`; returns whether it existed.
    pub fn delete(&mut self, key: u64) -> std::io::Result<bool> {
        match self.call(&Request::Delete { key })? {
            Response::Deleted(existed) => Ok(existed),
            other => Err(unexpected(&other)),
        }
    }

    /// SCAN `lo..=hi`, at most `limit` entries (0 = unlimited).
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u32) -> std::io::Result<Vec<(u64, Vec<u8>)>> {
        match self.call(&Request::Scan { lo, hi, limit })? {
            Response::Entries(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's stats snapshot (JSON text).
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's telemetry exposition (Prometheus text).
    pub fn metrics(&mut self) -> std::io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down gracefully; returns once the server
    /// acknowledged.
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// Turn a typed error frame (or a response of the wrong shape) into an
/// `io::Error` for callers using the convenience methods. Callers that
/// need to match on [`Status`] use [`Client::call`] /
/// [`Client::pipeline`] directly.
fn unexpected(resp: &Response) -> std::io::Error {
    let msg = match resp {
        Response::Error {
            status,
            retired,
            message,
        } => {
            if *status == Status::Degraded || *status == Status::PoolDepleted {
                format!(
                    "server error {}: {message} ({retired} segments retired)",
                    status.name()
                )
            } else {
                format!("server error {}: {message}", status.name())
            }
        }
        other => format!("unexpected response shape: {other:?}"),
    };
    std::io::Error::other(msg)
}
