//! A blocking client for the wire protocol, with request pipelining.
//!
//! [`Client::call`] is the one-request convenience;
//! [`Client::pipeline`] writes a whole batch of requests in one flush
//! and then reads the batch's responses — the protocol guarantees
//! responses come back in request order, so the k-th response answers
//! the k-th request.

use crate::frame::{
    encode_request, is_continuation, parse_response, FrameDecoder, FrameError, RawFrame, Request,
    Response, Status, MAX_RESPONSE_BODY,
};
use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

/// A blocking connection to an `e2nvm-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    decoder: FrameDecoder,
    wrbuf: Vec<u8>,
    rdbuf: Vec<u8>,
}

impl Client {
    /// Connect to `addr` (Nagle disabled — frames are already
    /// batched explicitly by the pipeline API).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            // Responses get envelope slack over the request cap: a
            // streamed scan chunk carrying one max-size value is a few
            // bytes bigger than the largest PUT (see MAX_RESPONSE_BODY).
            decoder: FrameDecoder::new(MAX_RESPONSE_BODY),
            wrbuf: Vec::with_capacity(4096),
            rdbuf: vec![0u8; 16 * 1024],
        })
    }

    /// Send one request and wait for its response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        let mut resps = self.pipeline(std::slice::from_ref(req))?;
        Ok(resps
            .pop()
            .expect("pipeline returns one response per request"))
    }

    /// Send `reqs` back to back in one write, then read exactly one
    /// response per request, in order. This is the unit of pipelining:
    /// `depth` outstanding requests = a `reqs` slice of that length.
    pub fn pipeline(&mut self, reqs: &[Request]) -> std::io::Result<Vec<Response>> {
        let mut responses = Vec::with_capacity(reqs.len());
        let mut bad: Option<FrameError> = None;
        self.pipeline_with(reqs, |raw| {
            if bad.is_none() {
                match parse_response(raw) {
                    Ok(resp) => responses.push(resp),
                    Err(e) => bad = Some(e),
                }
            }
        })?;
        if let Some(e) = bad {
            return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
        }
        Ok(responses)
    }

    /// The zero-copy pipeline underneath [`Client::pipeline`]: send
    /// `reqs` in one write, then invoke `f` once per response frame, in
    /// request order, without building owned [`Response`] values. The
    /// frame borrows the receive buffer — `f` gets the status byte in
    /// `code` and the echoed opcode in `aux` (see `PROTOCOL.md`). This
    /// is what throughput tooling (`e2nvm-loadgen`) drives, so the
    /// measurement isn't dominated by client-side allocations.
    pub fn pipeline_with(
        &mut self,
        reqs: &[Request],
        f: impl FnMut(&RawFrame<'_>),
    ) -> std::io::Result<()> {
        self.send_batch(reqs)?;
        self.recv_frames(reqs.len(), f)
    }

    /// The send half of [`Client::pipeline_with`]: encode `reqs` back to
    /// back and flush them in one write, without reading anything. Every
    /// request sent obligates one [`Client::recv_frames`] frame later;
    /// interleaving sends across *different* clients is how a single
    /// driver thread keeps several connections' pipelines full at once.
    pub fn send_batch(&mut self, reqs: &[Request]) -> std::io::Result<()> {
        self.wrbuf.clear();
        for req in reqs {
            encode_request(req, &mut self.wrbuf);
        }
        self.stream.write_all(&self.wrbuf)
    }

    /// Like [`Client::send_batch`] but for request frames already
    /// encoded with [`crate::frame::encode_request`] — the caller owns
    /// the bytes, so a load generator can encode its whole trace before
    /// the clock starts. `frames` must be a well-formed concatenation
    /// of request frames; the server answers garbage with typed error
    /// frames (and closes on framing violations), and each request in
    /// `frames` obligates one [`Client::recv_frames`] frame.
    pub fn send_encoded(&mut self, frames: &[u8]) -> std::io::Result<()> {
        self.stream.write_all(frames)
    }

    /// The receive half of [`Client::pipeline_with`]: read exactly `n`
    /// response frames (in request order, per the protocol), invoking
    /// `f` on each. `n` must not exceed the number of responses still
    /// owed by the server, or this blocks forever.
    pub fn recv_frames(
        &mut self,
        n: usize,
        mut f: impl FnMut(&RawFrame<'_>),
    ) -> std::io::Result<()> {
        let mut received = 0usize;
        while received < n {
            // Drain frames already buffered before touching the socket.
            match self.decoder.next_frame() {
                Ok(Some(raw)) => {
                    f(&raw);
                    received += 1;
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
                }
            }
            let got = self.stream.read(&mut self.rdbuf)?;
            if got == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!(
                        "server closed the connection with {} of {n} responses outstanding",
                        n - received,
                    ),
                ));
            }
            self.decoder.extend(&self.rdbuf[..got]);
        }
        Ok(())
    }

    /// Like [`Client::recv_frames`], but `n` counts completed
    /// *requests* rather than frames: a SCAN_STREAM response's
    /// non-terminal chunks invoke `f` without counting toward `n`
    /// (only its final chunk — or the error frame that terminated the
    /// stream — does). Use this to drain a pipeline that may contain
    /// streaming scans, where the frame count isn't knowable up front.
    pub fn recv_responses(
        &mut self,
        n: usize,
        mut f: impl FnMut(&RawFrame<'_>),
    ) -> std::io::Result<()> {
        let mut completed = 0usize;
        while completed < n {
            match self.decoder.next_frame() {
                Ok(Some(raw)) => {
                    if !is_continuation(&raw) {
                        completed += 1;
                    }
                    f(&raw);
                    continue;
                }
                Ok(None) => {}
                Err(e) => {
                    return Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()));
                }
            }
            let got = self.stream.read(&mut self.rdbuf)?;
            if got == 0 {
                return Err(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    format!(
                        "server closed the connection with {} of {n} responses outstanding",
                        n - completed,
                    ),
                ));
            }
            self.decoder.extend(&self.rdbuf[..got]);
        }
        Ok(())
    }

    /// GET `key`; `Ok(None)` when absent.
    pub fn get(&mut self, key: u64) -> std::io::Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(&other)),
        }
    }

    /// PUT `key` → `value`.
    pub fn put(&mut self, key: u64, value: &[u8]) -> std::io::Result<()> {
        match self.call(&Request::Put {
            key,
            value: value.to_vec(),
        })? {
            Response::Stored => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// GET every key in `keys` through one pipelined round trip;
    /// result `i` answers `keys[i]` (`None` when absent). Equivalent
    /// to, and much faster than, calling [`Client::get`] in a loop —
    /// one write, one read batch, instead of a round trip per key.
    pub fn get_many(&mut self, keys: &[u64]) -> std::io::Result<Vec<Option<Vec<u8>>>> {
        let reqs: Vec<Request> = keys.iter().map(|&key| Request::Get { key }).collect();
        self.pipeline(&reqs)?
            .into_iter()
            .map(|resp| match resp {
                Response::Value(v) => Ok(Some(v)),
                Response::NotFound => Ok(None),
                other => Err(unexpected(&other)),
            })
            .collect()
    }

    /// PUT every pair in `pairs` through one pipelined round trip.
    /// Fails on the first pair the server rejected; earlier pairs in
    /// the slice are already stored when that happens.
    pub fn put_many(&mut self, pairs: &[(u64, Vec<u8>)]) -> std::io::Result<()> {
        let reqs: Vec<Request> = pairs
            .iter()
            .map(|(key, value)| Request::Put {
                key: *key,
                value: value.clone(),
            })
            .collect();
        for resp in self.pipeline(&reqs)? {
            match resp {
                Response::Stored => {}
                other => return Err(unexpected(&other)),
            }
        }
        Ok(())
    }

    /// DELETE `key`; returns whether it existed.
    pub fn delete(&mut self, key: u64) -> std::io::Result<bool> {
        match self.call(&Request::Delete { key })? {
            Response::Deleted(existed) => Ok(existed),
            other => Err(unexpected(&other)),
        }
    }

    /// SCAN `lo..=hi`, at most `limit` entries (0 = unlimited), as one
    /// response frame. A result too large for the frame cap is
    /// answered with SCAN_TOO_LARGE (an error here); use
    /// [`Client::scan_stream`] / [`Client::scan_all`] for ranges of
    /// unbounded size.
    pub fn scan(&mut self, lo: u64, hi: u64, limit: u32) -> std::io::Result<Vec<(u64, Vec<u8>)>> {
        match self.call(&Request::Scan { lo, hi, limit })? {
            Response::Entries(entries) => Ok(entries),
            other => Err(unexpected(&other)),
        }
    }

    /// Streaming SCAN `lo..=hi`, at most `limit` entries (0 =
    /// unlimited): send one SCAN_STREAM request and iterate the
    /// entries as chunk frames arrive, never holding more than one
    /// chunk in memory. The iterator yields entries in key order; a
    /// store error mid-stream (or a transport error) surfaces as an
    /// `Err` item and ends the stream.
    ///
    /// Dropping the iterator early drains the remaining chunks off the
    /// wire, so the connection stays usable for the next request.
    pub fn scan_stream(&mut self, lo: u64, hi: u64, limit: u32) -> std::io::Result<ScanStream<'_>> {
        self.send_batch(std::slice::from_ref(&Request::ScanStream { lo, hi, limit }))?;
        Ok(ScanStream {
            client: self,
            buffered: VecDeque::new(),
            done: false,
        })
    }

    /// Streaming SCAN via callback: invoke `f(key, value)` for every
    /// entry, in key order, as chunks arrive. Returns the entry count.
    pub fn scan_stream_with(
        &mut self,
        lo: u64,
        hi: u64,
        limit: u32,
        mut f: impl FnMut(u64, Vec<u8>),
    ) -> std::io::Result<usize> {
        let mut count = 0usize;
        let mut stream = self.scan_stream(lo, hi, limit)?;
        for entry in &mut stream {
            let (key, value) = entry?;
            f(key, value);
            count += 1;
        }
        Ok(count)
    }

    /// Streaming SCAN, collected: like [`Client::scan`] but served
    /// over SCAN_STREAM, so the result may exceed the frame cap. The
    /// collect-all convenience — peak memory is the full result, by
    /// construction.
    pub fn scan_all(
        &mut self,
        lo: u64,
        hi: u64,
        limit: u32,
    ) -> std::io::Result<Vec<(u64, Vec<u8>)>> {
        let mut out = Vec::new();
        self.scan_stream_with(lo, hi, limit, |key, value| out.push((key, value)))?;
        Ok(out)
    }

    /// The server's stats snapshot (JSON text).
    pub fn stats(&mut self) -> std::io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's wear summary: live keys plus free / retired /
    /// total segment counts, as one fixed 40-byte binary frame. This
    /// is the probe the cluster health monitor polls — cheap enough to
    /// call every few hundred milliseconds, unlike parsing
    /// [`metrics`](Self::metrics) text.
    pub fn health(&mut self) -> std::io::Result<e2nvm_kvstore::WearSummary> {
        match self.call(&Request::Health)? {
            Response::Health(wear) => Ok(wear),
            other => Err(unexpected(&other)),
        }
    }

    /// The server's telemetry exposition (Prometheus text).
    pub fn metrics(&mut self) -> std::io::Result<String> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(text) => Ok(text),
            other => Err(unexpected(&other)),
        }
    }

    /// Force the server's durable state to disk (snapshot + WAL
    /// fsync); returns the snapshot bytes written, 0 when the server
    /// runs without persistence.
    pub fn flush(&mut self) -> std::io::Result<u64> {
        match self.call(&Request::Flush)? {
            Response::Flushed(bytes) => Ok(bytes),
            other => Err(unexpected(&other)),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Ask the server to shut down gracefully; returns once the server
    /// acknowledged.
    pub fn shutdown_server(&mut self) -> std::io::Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(unexpected(&other)),
        }
    }
}

/// A live streaming-scan response: an iterator over the entries of one
/// SCAN_STREAM request, pulling chunk frames off the wire lazily.
/// Created by [`Client::scan_stream`]; the client is mutably borrowed
/// until the stream is finished or dropped (dropping early drains the
/// rest of the stream so pipelining stays aligned).
#[derive(Debug)]
pub struct ScanStream<'a> {
    client: &'a mut Client,
    /// Entries from the last chunk not yet yielded.
    buffered: VecDeque<(u64, Vec<u8>)>,
    /// The terminal frame (final chunk or error) has been consumed.
    done: bool,
}

impl ScanStream<'_> {
    /// Pull one more chunk frame off the wire into `buffered`. Any
    /// `Err` return — error frame, malformed frame, transport failure
    /// — also marks the stream done (an error frame *is* the stream's
    /// terminal frame; after a transport failure there is nothing left
    /// to drain).
    fn fetch_chunk(&mut self) -> std::io::Result<()> {
        let mut parsed: Option<Result<Response, FrameError>> = None;
        if let Err(e) = self
            .client
            .recv_frames(1, |raw| parsed = Some(parse_response(raw)))
        {
            self.done = true;
            return Err(e);
        }
        match parsed.expect("recv_frames(1) invokes the callback once") {
            Ok(Response::ScanChunk { more, entries }) => {
                self.buffered.extend(entries);
                if !more {
                    self.done = true;
                }
                Ok(())
            }
            Ok(other) => {
                self.done = true;
                Err(unexpected(&other))
            }
            Err(e) => {
                self.done = true;
                Err(std::io::Error::new(ErrorKind::InvalidData, e.to_string()))
            }
        }
    }
}

impl Iterator for ScanStream<'_> {
    type Item = std::io::Result<(u64, Vec<u8>)>;

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if let Some(entry) = self.buffered.pop_front() {
                return Some(Ok(entry));
            }
            if self.done {
                return None;
            }
            if let Err(e) = self.fetch_chunk() {
                return Some(Err(e));
            }
        }
    }
}

impl Drop for ScanStream<'_> {
    fn drop(&mut self) {
        // Drain the stream's remaining frames so the next request's
        // responses don't collide with leftover chunks. fetch_chunk
        // marks `done` on every error path, so this terminates.
        while !self.done {
            if self.fetch_chunk().is_err() {
                break;
            }
        }
    }
}

/// Turn a typed error frame (or a response of the wrong shape) into an
/// `io::Error` for callers using the convenience methods. Callers that
/// need to match on [`Status`] use [`Client::call`] /
/// [`Client::pipeline`] directly.
fn unexpected(resp: &Response) -> std::io::Error {
    let msg = match resp {
        Response::Error {
            status,
            retired,
            message,
        } => {
            if *status == Status::Degraded || *status == Status::PoolDepleted {
                format!(
                    "server error {}: {message} ({retired} segments retired)",
                    status.name()
                )
            } else {
                format!("server error {}: {message}", status.name())
            }
        }
        other => format!("unexpected response shape: {other:?}"),
    };
    std::io::Error::other(msg)
}
