//! A ready-to-serve store for binaries, examples, tests, and docs: a
//! partitioned device seeded with two content families, one trained
//! placement engine per shard, wrapped in a [`ShardedE2KvStore`].
//!
//! This is the boot sequence every embedder of the server repeats, so
//! it lives here once; production embedders would substitute their own
//! device configuration and training corpus.

use e2nvm_core::{E2Config, PaddingType, ShardedEngine};
use e2nvm_kvstore::ShardedE2KvStore;
use e2nvm_sim::{
    partition_controllers_with, DeviceConfig, FaultConfig, LogicalSegment, MemoryController,
    NvmDevice,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Build and train a `shards`-way [`ShardedE2KvStore`] over
/// `total_segments` segments of `seg_bytes` bytes.
///
/// Each shard's pool is seeded with two content families (mostly-0x00
/// and mostly-0xFF images) so the per-shard VAE+K-means models have
/// structure to learn, then trained with a small, fast configuration.
/// Deterministic in `seed`.
///
/// # Panics
/// Panics on invalid geometry (e.g. `total_segments` not divisible
/// into `shards` non-empty partitions) — this is a bootstrap helper,
/// not a validation layer.
pub fn demo_store(
    shards: usize,
    total_segments: usize,
    seg_bytes: usize,
    seed: u64,
) -> ShardedE2KvStore {
    demo_store_with_fault(shards, total_segments, seg_bytes, seed, None)
}

/// [`demo_store`] over a device with optional fault injection (finite
/// per-segment endurance). This is what the wear-out experiments run:
/// a server whose segments genuinely retire, so the cluster's health
/// prober has real `retired_segments` growth to react to.
pub fn demo_store_with_fault(
    shards: usize,
    total_segments: usize,
    seg_bytes: usize,
    seed: u64,
    fault: Option<FaultConfig>,
) -> ShardedE2KvStore {
    demo_store_with_controllers(
        shards,
        total_segments,
        seg_bytes,
        seed,
        fault,
        MemoryController::without_wear_leveling,
    )
}

/// The fully general bootstrap: [`demo_store_with_fault`], with each
/// shard device wrapped by `make` — e.g.
/// `|dev| MemoryController::with_start_gap(dev, 64)` for a server whose
/// shards rotate under wear leveling. A wear-leveling controller may
/// expose one fewer logical segment than its physical slice (start-gap
/// reserves a gap slot), which this helper accounts for by seeding
/// through the controller's *logical* capacity.
pub fn demo_store_with_controllers(
    shards: usize,
    total_segments: usize,
    seg_bytes: usize,
    seed: u64,
    fault: Option<FaultConfig>,
    make: impl Fn(NvmDevice) -> MemoryController,
) -> ShardedE2KvStore {
    let mut builder = DeviceConfig::builder()
        .segment_bytes(seg_bytes)
        .num_segments(total_segments);
    if let Some(fault) = fault {
        builder = builder.fault(fault);
    }
    let dev_cfg = builder.build().expect("valid device config");
    let cfg = demo_config(seg_bytes, seed);
    let mut rng = StdRng::seed_from_u64(seed);
    let controllers: Vec<MemoryController> = partition_controllers_with(&dev_cfg, shards, make)
        .expect("partition")
        .into_iter()
        .map(|(_, mut mc)| {
            for i in 0..mc.num_segments() {
                let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                let content: Vec<u8> = (0..seg_bytes)
                    .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                    .collect();
                mc.seed(LogicalSegment(i), &content).expect("seed segment");
            }
            mc
        })
        .collect();
    ShardedE2KvStore::new(ShardedEngine::train(controllers, &cfg).expect("train shards"))
}

/// The engine configuration [`demo_store`] trains with, exposed so a
/// restarting server can hand the *same* configuration to
/// [`ShardedE2KvStore::recover`] — recovery rebuilds engines from
/// snapshotted weights instead of retraining, but the structural
/// fields (layer sizes, clusters, padding) must match the ones the
/// snapshot was taken under.
pub fn demo_config(seg_bytes: usize, seed: u64) -> E2Config {
    E2Config::builder()
        .fast(seg_bytes, 2)
        .pretrain_epochs(4)
        .joint_epochs(1)
        .retrain_min_free(0)
        .padding_type(PaddingType::Zero)
        .seed(seed)
        .build()
        .expect("valid engine config")
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_kvstore::NvmKvStore;

    #[test]
    fn demo_store_serves_crud() {
        let mut store = demo_store(2, 32, 32, 11);
        store.put(1, b"one").unwrap();
        assert_eq!(store.get(1).unwrap().unwrap(), b"one");
        assert!(store.delete(1).unwrap());
        assert!(store.is_empty());
    }
}
