//! The reactor's fixed worker pool.
//!
//! Workers pull batches of fully decoded [`Work`] items (one batch =
//! one connection's queued items, in arrival order) off a shared
//! injector queue, execute them against the store through the shared
//! [`crate::dispatch`] layer, and push the encoded response bytes back
//! as a [`Completion`] — then wake the reactor so it can flush.
//!
//! Ordering discipline: the reactor dispatches **at most one batch per
//! connection at a time**, so a connection's responses are produced in
//! request order without any cross-worker coordination; parallelism
//! comes from different connections' batches running on different
//! workers. The store clones inside each worker share the shards (and
//! the cache), so cross-connection coherence is unchanged from the
//! threaded model.

use crate::dispatch::{ExecCtx, Work};
use crate::sys::Waker;
use crate::telemetry::now_if_enabled;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One connection's queued items, headed for a worker.
pub(crate) struct Job {
    /// Connection slot index in the reactor.
    pub token: u32,
    /// Slot generation — a completion whose generation no longer
    /// matches the slot is for a connection that died mid-flight and
    /// is dropped.
    pub gen: u32,
    /// The items, in arrival order.
    pub items: Vec<Work>,
}

/// The encoded result of one executed [`Job`].
pub(crate) struct Completion {
    /// Connection slot index the bytes belong to.
    pub token: u32,
    /// Generation stamp copied from the job.
    pub gen: u32,
    /// Response frames, one per answered item, in request order.
    pub bytes: Vec<u8>,
    /// Close the connection once `bytes` is flushed (fatal violation
    /// answered, or SHUTDOWN acknowledged).
    pub close: bool,
    /// A SHUTDOWN frame was served: the whole server must drain.
    pub shutdown: bool,
}

struct Shared {
    jobs: Mutex<VecDeque<Job>>,
    available: Condvar,
    stop: AtomicBool,
    completions: Mutex<VecDeque<Completion>>,
    waker: Waker,
}

/// A fixed pool of worker threads plus the two queues that connect
/// them to the reactor.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawn `count` workers, each owning an [`ExecCtx`] built by
    /// `make_ctx` (a [`crate::dispatch::Front`] clone per worker —
    /// shards shared). `waker` is poked after every completion so the
    /// reactor flushes without waiting out its liveness tick.
    pub fn spawn(
        count: usize,
        waker: Waker,
        make_ctx: impl Fn() -> ExecCtx,
    ) -> std::io::Result<Self> {
        let shared = Arc::new(Shared {
            jobs: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            stop: AtomicBool::new(false),
            completions: Mutex::new(VecDeque::new()),
            waker,
        });
        let mut threads = Vec::with_capacity(count);
        for i in 0..count {
            let shared = Arc::clone(&shared);
            let ctx = make_ctx();
            threads.push(
                std::thread::Builder::new()
                    .name(format!("e2nvm-worker-{i}"))
                    .spawn(move || worker_loop(shared, ctx))?,
            );
        }
        Ok(Self { shared, threads })
    }

    /// Hand a job to the pool (reactor side).
    pub fn submit(&self, job: Job) {
        let mut jobs = self.shared.jobs.lock().unwrap();
        jobs.push_back(job);
        drop(jobs);
        self.shared.available.notify_one();
    }

    /// Drain every completed job into `out` (reactor side).
    pub fn drain_completions(&self, out: &mut Vec<Completion>) {
        let mut completions = self.shared.completions.lock().unwrap();
        out.extend(completions.drain(..));
    }

    /// Stop accepting work and join every worker. Queued-but-unstarted
    /// jobs are dropped — the reactor only calls this after its drain
    /// walk confirmed nothing is in flight.
    pub fn stop(mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.available.notify_all();
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

fn worker_loop(shared: Arc<Shared>, mut ctx: ExecCtx) {
    loop {
        let job = {
            let mut jobs = shared.jobs.lock().unwrap();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                match jobs.pop_front() {
                    Some(job) => break job,
                    None => jobs = shared.available.wait(jobs).unwrap(),
                }
            }
        };
        let t0 = now_if_enabled();
        let mut bytes = Vec::with_capacity(job.items.len() * 16);
        let outcome = ctx.exec_batch(job.items, &mut bytes);
        ctx.telemetry.worker_batches.inc();
        if let Some(t0) = t0 {
            ctx.telemetry
                .worker_busy_ns
                .add(t0.elapsed().as_nanos() as u64);
        }
        let mut completions = shared.completions.lock().unwrap();
        completions.push_back(Completion {
            token: job.token,
            gen: job.gen,
            bytes,
            close: outcome.close,
            shutdown: outcome.shutdown,
        });
        drop(completions);
        shared.waker.wake();
    }
}
