//! Wire-level telemetry: per-opcode frame counters, per-frame latency
//! histograms, connection gauges, byte counters, and the reactor's
//! event-loop/worker-pool series — all under the `e2nvm_server_*`
//! namespace, composing with the engine/device/KV series the fronted
//! store already publishes on the same registry.

use crate::frame::{Opcode, Status};
use e2nvm_telemetry::{Counter, Gauge, Histogram, TelemetryRegistry};

/// `Instant::now()` only in telemetry builds. Without the feature every
/// histogram is a no-op ZST, so this skips the clock read on the
/// per-frame hot path instead of timing into the void (clock reads are
/// not free, especially under virtualised clocksources).
#[inline]
pub(crate) fn now_if_enabled() -> Option<std::time::Instant> {
    cfg!(feature = "telemetry").then(std::time::Instant::now)
}

/// Latency bucket bounds in nanoseconds for one served frame (decode →
/// store call → response encode; excludes socket wait).
const FRAME_LATENCY_BOUNDS: [u64; 8] = [
    1_000,
    5_000,
    25_000,
    100_000,
    500_000,
    2_000_000,
    10_000_000,
    100_000_000,
];

/// Telemetry sink for one server instance.
///
/// Cheap to clone (handles are `Arc`-backed); every connection thread
/// clones the sink, so all connections share the same series. Without
/// the `telemetry` feature every field is a zero-sized no-op.
#[derive(Clone, Debug)]
pub struct ServerTelemetry {
    /// Served frames per opcode (`e2nvm_server_frames_total{op=...}`).
    frames: [Counter; Opcode::ALL.len()],
    /// Error frames sent, labeled by wire status.
    error_frames: [Counter; STATUSES.len()],
    /// Latency of one frame from decode to encoded response.
    pub(crate) frame_latency_ns: Histogram,
    /// Connections currently open.
    pub(crate) connections_active: Gauge,
    /// Connections ever accepted.
    pub(crate) connections_opened: Counter,
    /// Connections rejected at the limit with a BUSY frame.
    pub(crate) connections_rejected: Counter,
    /// Payload bytes read off sockets.
    pub(crate) bytes_read: Counter,
    /// Payload bytes written to sockets.
    pub(crate) bytes_written: Counter,
    /// Reactor only: times the event loop woke from `epoll_wait`.
    pub(crate) reactor_wakeups: Counter,
    /// Reactor only: readiness events delivered across all wakeups.
    pub(crate) reactor_ready_events: Counter,
    /// Reactor only: times a connection's reads were paused by
    /// backpressure (queue bound or write backlog reached).
    pub(crate) reads_paused: Counter,
    /// Reactor only: decoded items currently queued on connections,
    /// waiting for (or riding in) a worker batch.
    pub(crate) queued_items: Gauge,
    /// Reactor only: items per dispatched batch (inline fast path or
    /// worker pool — the histogram count is total batches).
    pub(crate) dispatch_batch_items: Histogram,
    /// Reactor only: batches executed by the worker pool. Batches run
    /// inline on the reactor thread at low fan-in are the
    /// `dispatch_batch_items` count minus this.
    pub(crate) worker_batches: Counter,
    /// Reactor only: nanoseconds workers spent executing batches.
    /// Utilization = rate(worker_busy_ns) / (workers × 1e9).
    pub(crate) worker_busy_ns: Counter,
    /// Wear summary: free segments across the fronted store's shards,
    /// refreshed whenever a HEALTH or METRICS frame is served.
    pub(crate) wear_free_segments: Gauge,
    /// Wear summary: segments permanently retired by wear-out,
    /// refreshed whenever a HEALTH or METRICS frame is served.
    pub(crate) wear_retired_segments: Gauge,
    /// Wear summary: total segments (constant denominator for the wear
    /// fraction), refreshed whenever a HEALTH or METRICS frame is
    /// served.
    pub(crate) wear_total_segments: Gauge,
    /// SCAN_STREAM chunk frames emitted (every chunk, terminal or not).
    pub(crate) scan_stream_chunks: Counter,
    /// SCAN_STREAM responses that needed more than one chunk frame —
    /// the proof a scan actually streamed instead of fitting in one
    /// frame (CI asserts this goes nonzero under YCSB-E).
    pub(crate) scan_stream_multi_chunk: Counter,
}

/// Bucket bounds for items-per-worker-batch: powers of two up to the
/// default per-connection queue bound.
const BATCH_ITEM_BOUNDS: [u64; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// The statuses an error-frame counter is kept for (everything that can
/// appear on the wire as a non-OK, non-NOT_FOUND status).
const STATUSES: [Status; 11] = [
    Status::Degraded,
    Status::PoolDepleted,
    Status::OutOfSpace,
    Status::StoreError,
    Status::ScanTooLarge,
    Status::Malformed,
    Status::UnsupportedVersion,
    Status::UnknownOpcode,
    Status::FrameTooLarge,
    Status::Busy,
    Status::ShuttingDown,
];

impl ServerTelemetry {
    /// A sink wired to nothing (counters count into thin air, or are
    /// compile-time no-ops without the `telemetry` feature).
    pub fn disconnected() -> Self {
        Self {
            frames: std::array::from_fn(|_| Counter::disconnected()),
            error_frames: std::array::from_fn(|_| Counter::disconnected()),
            frame_latency_ns: Histogram::disconnected(&FRAME_LATENCY_BOUNDS),
            connections_active: Gauge::disconnected(),
            connections_opened: Counter::disconnected(),
            connections_rejected: Counter::disconnected(),
            bytes_read: Counter::disconnected(),
            bytes_written: Counter::disconnected(),
            reactor_wakeups: Counter::disconnected(),
            reactor_ready_events: Counter::disconnected(),
            reads_paused: Counter::disconnected(),
            queued_items: Gauge::disconnected(),
            dispatch_batch_items: Histogram::disconnected(&BATCH_ITEM_BOUNDS),
            worker_batches: Counter::disconnected(),
            worker_busy_ns: Counter::disconnected(),
            wear_free_segments: Gauge::disconnected(),
            wear_retired_segments: Gauge::disconnected(),
            wear_total_segments: Gauge::disconnected(),
            scan_stream_chunks: Counter::disconnected(),
            scan_stream_multi_chunk: Counter::disconnected(),
        }
    }

    /// Register the server's series on `registry`.
    pub fn register(registry: &TelemetryRegistry) -> Self {
        let frames = std::array::from_fn(|i| {
            registry.counter_with_labels(
                "e2nvm_server_frames_total",
                "Request frames served, by opcode",
                &[("op", Opcode::ALL[i].name())],
            )
        });
        let error_frames = std::array::from_fn(|i| {
            registry.counter_with_labels(
                "e2nvm_server_error_frames_total",
                "Error frames sent, by wire status",
                &[("status", STATUSES[i].name())],
            )
        });
        Self {
            frames,
            error_frames,
            frame_latency_ns: registry.histogram(
                "e2nvm_server_frame_latency_ns",
                "Per-frame service latency in nanoseconds (decode to encoded response)",
                &FRAME_LATENCY_BOUNDS,
            ),
            connections_active: registry.gauge(
                "e2nvm_server_connections_active",
                "Connections currently open",
            ),
            connections_opened: registry.counter(
                "e2nvm_server_connections_opened_total",
                "Connections accepted since start",
            ),
            connections_rejected: registry.counter(
                "e2nvm_server_connections_rejected_total",
                "Connections rejected with a BUSY frame at the connection limit",
            ),
            bytes_read: registry.counter(
                "e2nvm_server_bytes_read_total",
                "Bytes read off client sockets",
            ),
            bytes_written: registry.counter(
                "e2nvm_server_bytes_written_total",
                "Bytes written to client sockets",
            ),
            reactor_wakeups: registry.counter(
                "e2nvm_server_reactor_wakeups_total",
                "Times the reactor event loop returned from epoll_wait",
            ),
            reactor_ready_events: registry.counter(
                "e2nvm_server_reactor_ready_events_total",
                "Readiness events delivered to the reactor",
            ),
            reads_paused: registry.counter(
                "e2nvm_server_reads_paused_total",
                "Connections whose reads were paused by backpressure (queue bound or write backlog)",
            ),
            queued_items: registry.gauge(
                "e2nvm_server_queued_items",
                "Decoded request items queued on connections, awaiting or riding in a worker batch",
            ),
            dispatch_batch_items: registry.histogram(
                "e2nvm_server_dispatch_batch_items",
                "Items per dispatched batch (inline or worker pool)",
                &BATCH_ITEM_BOUNDS,
            ),
            worker_batches: registry.counter(
                "e2nvm_server_worker_batches_total",
                "Batches executed by the worker pool (dispatched minus inline)",
            ),
            worker_busy_ns: registry.counter(
                "e2nvm_server_worker_busy_ns_total",
                "Nanoseconds workers spent executing batches (utilization numerator)",
            ),
            wear_free_segments: registry.gauge(
                "e2nvm_server_wear_free_segments",
                "Free segments across the fronted store (refreshed on HEALTH/METRICS)",
            ),
            wear_retired_segments: registry.gauge(
                "e2nvm_server_wear_retired_segments",
                "Segments permanently retired by wear-out (refreshed on HEALTH/METRICS)",
            ),
            wear_total_segments: registry.gauge(
                "e2nvm_server_wear_total_segments",
                "Total segments managed by the fronted store (refreshed on HEALTH/METRICS)",
            ),
            scan_stream_chunks: registry.counter(
                "e2nvm_server_scan_stream_chunks_total",
                "SCAN_STREAM chunk frames emitted (terminal chunks included)",
            ),
            scan_stream_multi_chunk: registry.counter(
                "e2nvm_server_scan_stream_multi_chunk_total",
                "SCAN_STREAM responses that spanned more than one chunk frame",
            ),
        }
    }

    /// Count one served frame for `op`.
    #[inline]
    pub(crate) fn count_frame(&self, op: Opcode) {
        // Opcode::ALL is in wire order but not contiguous (Shutdown is
        // 0x7F), so index by position, not by the byte value.
        if let Some(i) = Opcode::ALL.iter().position(|&o| o == op) {
            self.frames[i].inc();
        }
    }

    /// Refresh the wear gauges from a store summary (called when a
    /// HEALTH or METRICS frame is served, so scrapes see fresh values
    /// without a per-mutation gauge write on the hot path).
    #[inline]
    pub(crate) fn record_wear(&self, wear: &e2nvm_kvstore::WearSummary) {
        self.wear_free_segments.set(wear.free_segments as i64);
        self.wear_retired_segments.set(wear.retired_segments as i64);
        self.wear_total_segments.set(wear.total_segments as i64);
    }

    /// Count one error frame carrying `status`.
    #[inline]
    pub(crate) fn count_error(&self, status: Status) {
        if let Some(i) = STATUSES.iter().position(|&s| s == status) {
            self.error_frames[i].inc();
        }
    }
}
