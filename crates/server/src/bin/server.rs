//! `e2nvm-server` — boot a demo sharded store and serve it over TCP.
//!
//! ```text
//! cargo run --release -p e2nvm-server --bin e2nvm-server -- \
//!     [--addr 127.0.0.1:4242] [--shards 4] [--segments 2048] \
//!     [--seg-bytes 64] [--max-conns 1024] [--workers 0] \
//!     [--threaded] [--cache] [--cache-mb 64]
//! ```
//!
//! Prints the bound address on the first line (`listening on ADDR`),
//! then serves until a client sends a SHUTDOWN frame. A production
//! embedder would build its own store (own device geometry, own
//! training corpus) and hand it to [`Server`] the same way.
//!
//! `--workers N` sizes the reactor's worker pool (0 = auto);
//! `--threaded` serves with the thread-per-connection baseline engine
//! instead of the epoll reactor.

use e2nvm_server::{demo, CacheConfig, Server, ServerConfig, ThreadedServer};
use e2nvm_telemetry::TelemetryRegistry;

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_after(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let shards: usize = parse_or(arg_after(&args, "--shards"), 4);
    let segments: usize = parse_or(arg_after(&args, "--segments"), 2048);
    let seg_bytes: usize = parse_or(arg_after(&args, "--seg-bytes"), 64);
    let max_conns: usize = parse_or(arg_after(&args, "--max-conns"), 1024);
    let workers: usize = parse_or(arg_after(&args, "--workers"), 0);
    let threaded = args.iter().any(|a| a == "--threaded");
    let cache = args.iter().any(|a| a == "--cache");
    let cache_mb: usize = parse_or(arg_after(&args, "--cache-mb"), 64);

    eprintln!("training {shards} shard models over {segments} × {seg_bytes} B segments...");
    let mut store = demo::demo_store(shards, segments, seg_bytes, 0xE2);
    let registry = TelemetryRegistry::new();
    store.attach_telemetry(&registry);

    let mut builder = ServerConfig::builder()
        .addr(addr)
        .max_connections(max_conns)
        .workers(workers);
    if cache {
        eprintln!("fronting the store with a {cache_mb} MiB read-through cache");
        let cache_cfg = CacheConfig::builder()
            .capacity_bytes(cache_mb << 20)
            .build()
            .expect("valid cache config");
        builder = builder.cache(cache_cfg);
    }
    let config = builder.build().expect("valid server config");
    let handle = if threaded {
        eprintln!("serving with the thread-per-connection baseline engine");
        ThreadedServer::new(store, config)
            .with_telemetry(&registry)
            .start()
    } else {
        Server::new(store, config).with_telemetry(&registry).start()
    }
    .expect("bind");
    println!("listening on {}", handle.local_addr());
    let served = handle.join();
    println!("clean shutdown after {served} connections");
}
