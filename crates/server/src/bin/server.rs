//! `e2nvm-server` — boot a demo sharded store and serve it over TCP.
//!
//! ```text
//! cargo run --release -p e2nvm-server --bin e2nvm-server -- \
//!     [--addr 127.0.0.1:4242] [--shards 4] [--segments 2048] \
//!     [--seg-bytes 64] [--max-conns 1024] [--workers 0] \
//!     [--scan-chunk 65536] [--threaded] [--cache] [--cache-mb 64] \
//!     [--data-dir PATH] [--flush-policy every|batch:N|os] \
//!     [--snapshot-every OPS] \
//!     [--fault-endurance BITS] [--fault-seed SEED]
//! ```
//!
//! Prints the bound address on the first line (`listening on ADDR`),
//! then serves until a client sends a SHUTDOWN frame. A production
//! embedder would build its own store (own device geometry, own
//! training corpus) and hand it to [`Server`] the same way.
//!
//! `--workers N` sizes the reactor's worker pool (0 = auto);
//! `--threaded` serves with the thread-per-connection baseline engine
//! instead of the epoll reactor. `--scan-chunk BYTES` sets the target
//! payload per streamed SCAN chunk frame (default 64 KiB).
//!
//! `--fault-endurance BITS` attaches the simulator's deterministic
//! fault model with a Weibull(3.0, BITS) per-segment endurance budget
//! (counted in cumulative programmed bits), so segments genuinely
//! retire under sustained writes — the knob the cluster's wear-out
//! failover experiment turns. `--fault-seed` (default `0xE2`) seeds
//! the endurance draws. Without `--fault-endurance` the device is
//! fault-free, exactly as before.
//!
//! `--data-dir PATH` enables crash-consistent persistence: mutations
//! are logged to per-shard WALs under `PATH/wal/` and snapshots land
//! in `PATH/snapshot.e2s`. On boot the server first tries to recover
//! from that directory — replaying snapshot + WAL is orders of
//! magnitude faster than retraining the placement models — and only
//! trains from scratch when no snapshot exists. Prints
//! `recovered ...` or `fresh store ...` before the listening line so
//! harnesses can tell which path booted.

use e2nvm_persist::{FlushPolicy, PersistenceConfig};
use e2nvm_server::{demo, CacheConfig, Server, ServerConfig, ThreadedServer};
use e2nvm_telemetry::TelemetryRegistry;

fn arg_after(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_or<T: std::str::FromStr>(v: Option<String>, default: T) -> T {
    v.and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// `every` | `batch:N` | `os` (see `FlushPolicy` docs for the
/// durability each buys; process kill loses nothing under any of
/// them).
fn parse_flush_policy(v: Option<String>) -> FlushPolicy {
    match v.as_deref() {
        Some("every") => FlushPolicy::EveryAppend,
        Some("os") => FlushPolicy::OsOnly,
        Some(s) => match s.strip_prefix("batch:").and_then(|n| n.parse().ok()) {
            Some(n) => FlushPolicy::EveryN(n),
            None => {
                eprintln!("unknown --flush-policy {s:?}; using the default");
                FlushPolicy::default()
            }
        },
        None => FlushPolicy::default(),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let addr = arg_after(&args, "--addr").unwrap_or_else(|| "127.0.0.1:0".to_string());
    let shards: usize = parse_or(arg_after(&args, "--shards"), 4);
    let segments: usize = parse_or(arg_after(&args, "--segments"), 2048);
    let seg_bytes: usize = parse_or(arg_after(&args, "--seg-bytes"), 64);
    let max_conns: usize = parse_or(arg_after(&args, "--max-conns"), 1024);
    let workers: usize = parse_or(arg_after(&args, "--workers"), 0);
    let scan_chunk: usize = parse_or(arg_after(&args, "--scan-chunk"), 64 * 1024);
    let threaded = args.iter().any(|a| a == "--threaded");
    let cache = args.iter().any(|a| a == "--cache");
    let cache_mb: usize = parse_or(arg_after(&args, "--cache-mb"), 64);
    let data_dir = arg_after(&args, "--data-dir");
    let flush_policy = parse_flush_policy(arg_after(&args, "--flush-policy"));
    let snapshot_every: u64 = parse_or(arg_after(&args, "--snapshot-every"), 0);
    let fault_endurance: Option<u64> =
        arg_after(&args, "--fault-endurance").and_then(|s| s.parse().ok());
    let fault_seed: u64 = parse_or(arg_after(&args, "--fault-seed"), 0xE2);

    let registry = TelemetryRegistry::new();
    let pcfg = data_dir.map(|dir| {
        PersistenceConfig::builder()
            .data_dir(dir)
            .flush_policy(flush_policy)
            .snapshot_every_ops(snapshot_every)
            .build()
            .expect("valid persistence config")
    });

    // Recover from the data directory when it holds a snapshot;
    // otherwise train a fresh demo store (and, with persistence on,
    // seed the directory so the next boot recovers).
    let e2cfg = demo::demo_config(seg_bytes, 0xE2);
    let recovered = pcfg.as_ref().and_then(|p| {
        e2nvm_kvstore::ShardedE2KvStore::recover(p, &e2cfg, Some(&registry))
            .expect("recover from data dir")
    });
    let mut store = match recovered {
        Some((store, report)) => {
            eprintln!(
                "recovered {} keys across {} shards in {} ms \
                 ({} WAL ops replayed, {} torn bytes truncated)",
                report.keys,
                report.shards,
                report.duration_ms,
                report.replayed_ops,
                report.truncated_bytes,
            );
            store
        }
        None => {
            eprintln!(
                "fresh store: training {shards} shard models over \
                 {segments} × {seg_bytes} B segments..."
            );
            let fault = fault_endurance.map(|endurance_bits| e2nvm_sim::FaultConfig {
                seed: fault_seed,
                endurance_bits,
                ..e2nvm_sim::FaultConfig::default()
            });
            if let Some(f) = &fault {
                eprintln!(
                    "fault injection on: endurance ~Weibull({}, {} bits), seed {:#x}",
                    f.endurance_shape, f.endurance_bits, f.seed
                );
            }
            let store = demo::demo_store_with_fault(shards, segments, seg_bytes, 0xE2, fault);
            match &pcfg {
                Some(p) => store
                    .with_persistence(p.clone(), Some(&registry))
                    .expect("enable persistence"),
                None => store,
            }
        }
    };
    store.attach_telemetry(&registry);
    // A clone shares the shards (and the persistence state), so the
    // drain-time snapshot below survives handing `store` to the server.
    let drain_handle = store.clone();

    let mut builder = ServerConfig::builder()
        .addr(addr)
        .max_connections(max_conns)
        .workers(workers)
        .scan_chunk_bytes(scan_chunk);
    if cache {
        eprintln!("fronting the store with a {cache_mb} MiB read-through cache");
        let cache_cfg = CacheConfig::builder()
            .capacity_bytes(cache_mb << 20)
            .build()
            .expect("valid cache config");
        builder = builder.cache(cache_cfg);
    }
    let config = builder.build().expect("valid server config");
    let handle = if threaded {
        eprintln!("serving with the thread-per-connection baseline engine");
        ThreadedServer::new(store, config)
            .with_telemetry(&registry)
            .start()
    } else {
        Server::new(store, config).with_telemetry(&registry).start()
    }
    .expect("bind");
    println!("listening on {}", handle.local_addr());
    let served = handle.join();
    if pcfg.is_some() {
        // Drain-time snapshot: the next boot replays zero WAL records.
        match drain_handle.snapshot_now() {
            Ok(bytes) => eprintln!("final snapshot: {bytes} bytes"),
            Err(e) => eprintln!("final snapshot failed: {e}"),
        }
    }
    println!("clean shutdown after {served} connections");
}
