//! Request execution shared by the reactor's worker pool and the
//! thread-per-connection baseline.
//!
//! Both serving models funnel through the same two steps so their
//! observable behavior is identical byte for byte:
//!
//! 1. [`collect_work`] — drain every complete frame out of a
//!    [`FrameDecoder`] into an ordered list of [`Work`] items
//!    (well-formed requests and protocol violations alike — a
//!    violation is an item so its error frame stays in request order).
//! 2. [`ExecCtx::exec_batch`] — execute the items against the store in
//!    order, appending one response frame per item to an output
//!    buffer, with the same PUT-coalescing, GET fast path, typed error
//!    mapping, and telemetry the threaded server always had.
//!
//! The only thing the serving models differ in is *where* these run:
//! the threaded server runs both on the connection's own thread; the
//! reactor runs step 1 on the event loop and ships the items to a
//! worker.

use crate::frame::{
    encode_response, encode_scan_chunk, encode_value_frame, parse_request, FrameDecoder,
    FrameError, Opcode, Request, Response, Status,
};
use crate::telemetry::ServerTelemetry;
use e2nvm_core::E2Error;
use e2nvm_kvstore::{CachedKvStore, NvmKvStore, ShardedE2KvStore, StoreError};
use e2nvm_telemetry::TelemetryRegistry;

/// What the connection handlers serve from: the bare sharded store, or
/// the same store behind a read-through cache. Clones share both the
/// store shards and the cache shards, so coherence is cross-connection
/// (and, under the reactor, cross-worker).
#[derive(Clone)]
pub(crate) enum Front {
    Plain(ShardedE2KvStore),
    Cached(CachedKvStore<ShardedE2KvStore>),
}

impl Front {
    /// The store as a trait object — every request dispatches through
    /// the same [`NvmKvStore`] surface regardless of caching.
    fn kv(&mut self) -> &mut dyn NvmKvStore {
        match self {
            Front::Plain(store) => store,
            Front::Cached(cached) => cached,
        }
    }

    /// Live key count (inherent on the concrete store, not the trait).
    fn len(&self) -> usize {
        match self {
            Front::Plain(store) => store.len(),
            Front::Cached(cached) => cached.inner().len(),
        }
    }

    /// Retired segment count across shards.
    fn retired_count(&self) -> usize {
        match self {
            Front::Plain(store) => store.retired_count(),
            Front::Cached(cached) => cached.inner().retired_count(),
        }
    }

    /// Simulated-device counters (the cache forwards to its inner
    /// store; DRAM hits never touch the device).
    fn stats(&self) -> e2nvm_sim::DeviceStats {
        match self {
            Front::Plain(store) => store.stats(),
            Front::Cached(cached) => cached.stats(),
        }
    }

    /// Fixed-size wear summary for the HEALTH frame (inherent on the
    /// concrete store; DRAM cache state is irrelevant to device wear).
    fn wear_summary(&self) -> e2nvm_kvstore::WearSummary {
        match self {
            Front::Plain(store) => store.wear_summary(),
            Front::Cached(cached) => cached.inner().wear_summary(),
        }
    }
}

/// One unit of ordered per-connection work: a parsed request, or a
/// protocol violation whose error frame must be emitted at exactly
/// this position in the response stream.
#[derive(Debug, Clone)]
pub(crate) enum Work {
    /// A well-formed request.
    Req(Request),
    /// A violation. [`FrameError::is_fatal`] decides whether the
    /// connection closes after the error frame is flushed.
    Bad(FrameError),
}

/// How [`collect_work`] left the decoder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CollectEnd {
    /// All buffered complete frames were consumed; feed more bytes.
    NeedMore,
    /// A framing-level violation poisoned the stream: the final item
    /// is its [`Work::Bad`], and the caller must read no further.
    Fatal,
}

/// Drain every complete frame out of `decoder` into `out` (appending),
/// stopping early only on a fatal framing violation. Violations are
/// appended as [`Work::Bad`] items so their error frames keep request
/// order when the batch executes.
pub(crate) fn collect_work(decoder: &mut FrameDecoder, out: &mut Vec<Work>) -> CollectEnd {
    loop {
        match decoder.next_frame() {
            Ok(None) => return CollectEnd::NeedMore,
            Ok(Some(raw)) => match parse_request(&raw) {
                Ok(req) => out.push(Work::Req(req)),
                Err(e) => {
                    let fatal = e.is_fatal();
                    out.push(Work::Bad(e));
                    if fatal {
                        return CollectEnd::Fatal;
                    }
                }
            },
            Err(e) => {
                // Framing-level violation: the byte stream can no
                // longer be trusted. Answer (in order), then close.
                out.push(Work::Bad(e));
                return CollectEnd::Fatal;
            }
        }
    }
}

/// What executing a batch decided about the connection's future.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct BatchOutcome {
    /// Close the connection once the batch's responses are flushed
    /// (fatal violation answered, or SHUTDOWN acknowledged).
    pub close: bool,
    /// A SHUTDOWN frame was served: the whole server must drain.
    pub shutdown: bool,
}

/// Entries fetched from the store per paging step while producing a
/// scan response. Bounds store-side materialisation per call: the
/// server never asks the store for more than one page at a time, no
/// matter how large the range (the stores' `scan_limit` overrides stop
/// early at the page bound).
const SCAN_PAGE: usize = 256;

/// A hook the serving engine may hand [`ExecCtx::exec_batch_flushing`]
/// to push `outbuf` to the socket (and clear it) between streamed scan
/// chunks, bounding peak response memory. Only invoked at points where
/// every byte in `outbuf` is ack-safe (a commit barrier ran after the
/// last mutation it acknowledges). An `Err` means the connection is
/// dead and the batch should stop.
pub(crate) type FlushHook<'a> = &'a mut dyn FnMut(&mut Vec<u8>) -> std::io::Result<()>;

/// Everything needed to execute requests against the store: a [`Front`]
/// clone (shards shared), the registry for METRICS frames, the
/// telemetry sink, and the coalescing/bounding knobs. One per
/// connection thread (threaded server) or one per worker (reactor).
pub(crate) struct ExecCtx {
    pub store: Front,
    pub registry: Option<TelemetryRegistry>,
    pub telemetry: ServerTelemetry,
    pub coalesce_puts: bool,
    /// The server's `body_len` cap: a legacy single-frame SCAN whose
    /// encoded body would exceed it is answered with
    /// [`Status::ScanTooLarge`] instead of a frame the peer's decoder
    /// would reject as fatal.
    pub max_frame_body: usize,
    /// Target payload bytes per SCAN_STREAM chunk. Entries are never
    /// split, so a chunk holding one oversized entry may exceed this.
    pub scan_chunk_bytes: usize,
}

impl ExecCtx {
    /// Execute `items` in order, appending one response frame per item
    /// to `outbuf`. Items after a SHUTDOWN or a fatal violation are
    /// dropped unanswered (the connection is closing; the peer's
    /// pipeline is void past that point — same contract the threaded
    /// server always had).
    ///
    /// With [`coalesce_puts`](Self::coalesce_puts) set, runs of
    /// consecutive PUT items are buffered and served by one `put_many`
    /// call; the run flushes before any other item kind (and at the
    /// end of the batch), so responses still come back in request
    /// order.
    pub fn exec_batch(
        &mut self,
        items: impl IntoIterator<Item = Work>,
        outbuf: &mut Vec<u8>,
    ) -> BatchOutcome {
        self.exec_batch_flushing(items, outbuf, None)
    }

    /// [`ExecCtx::exec_batch`] with an optional mid-stream flush hook.
    /// The threaded engine passes a hook that writes `outbuf` to the
    /// socket and clears it between streamed scan chunks, so a scan of
    /// any size is served in bounded memory; the reactor passes `None`
    /// (its responses travel through completion buffers) and relies on
    /// its write-backlog backpressure instead.
    pub fn exec_batch_flushing(
        &mut self,
        items: impl IntoIterator<Item = Work>,
        outbuf: &mut Vec<u8>,
        mut flush: Option<FlushHook<'_>>,
    ) -> BatchOutcome {
        let mut outcome = BatchOutcome::default();
        let outbuf_start = outbuf.len();
        // Responses at or past this index acknowledge work not yet
        // covered by a commit barrier; a failed commit drops exactly
        // them. Streamed scans move it forward (they run their own
        // barrier first, and the flush hook may then empty `outbuf`).
        let mut barrier = outbuf_start;
        let mut pending_puts: Vec<(u64, Vec<u8>)> = Vec::new();
        for item in items {
            match item {
                Work::Req(req) => {
                    // Timed explicitly (not via the histogram's drop
                    // guard, which would hold a borrow of the telemetry
                    // struct across the `&mut self` dispatch), and only
                    // when the observation can go somewhere.
                    let t0 = crate::telemetry::now_if_enabled();
                    let op = req.opcode();
                    self.telemetry.count_frame(op);
                    let req = if self.coalesce_puts {
                        match req {
                            Request::Put { key, value } => {
                                // Answered when the run flushes; its
                                // latency is folded into the flush
                                // observation.
                                pending_puts.push((key, value));
                                continue;
                            }
                            other => {
                                self.flush_puts(&mut pending_puts, outbuf);
                                other
                            }
                        }
                    } else {
                        req
                    };
                    match req {
                        // GETs are the hot path: serve them straight
                        // into the output buffer (a cache hit encodes
                        // from the cached bytes, no intermediate Vec).
                        Request::Get { key } => self.serve_get(key, outbuf),
                        Request::Shutdown => {
                            encode_response(&Response::ShutdownAck, Some(op), outbuf);
                            outcome.shutdown = true;
                            outcome.close = true;
                        }
                        Request::ScanStream { lo, hi, limit } => {
                            // Commit barrier *before* streaming: it
                            // makes every response already in `outbuf`
                            // (including the coalesced PUT run flushed
                            // just above) ack-safe, so the flush hook
                            // may push bytes to the socket between
                            // chunks without risking an acked-but-
                            // uncommitted write escaping.
                            if let Err(e) = self.store.kv().commit() {
                                outbuf.truncate(barrier);
                                let resp = store_error_frame(&e);
                                if let Response::Error { status, .. } = &resp {
                                    self.telemetry.count_error(*status);
                                }
                                encode_response(&resp, None, outbuf);
                                outcome.close = true;
                            } else if self
                                .serve_scan_stream(lo, hi, limit, outbuf, &mut flush)
                                .is_err()
                            {
                                // The socket died mid-stream; nothing
                                // left to answer, just close.
                                outcome.close = true;
                            } else {
                                // Everything emitted so far is either
                                // committed or read-only.
                                barrier = outbuf.len();
                            }
                        }
                        req => {
                            let resp = self.handle(req);
                            if let Response::Error { status, .. } = &resp {
                                self.telemetry.count_error(*status);
                            }
                            encode_response(&resp, Some(op), outbuf);
                        }
                    }
                    if let Some(t0) = t0 {
                        self.telemetry
                            .frame_latency_ns
                            .observe(t0.elapsed().as_nanos() as u64);
                    }
                    if outcome.close {
                        break;
                    }
                }
                Work::Bad(e) => {
                    // Flush first so the error frame stays in request
                    // order; answer with a typed error frame (never
                    // panic, never drop silently).
                    self.flush_puts(&mut pending_puts, outbuf);
                    self.telemetry.count_error(e.status());
                    encode_response(&error_frame(&e), None, outbuf);
                    if e.is_fatal() {
                        outcome.close = true;
                        break;
                    }
                }
            }
        }
        self.flush_puts(&mut pending_puts, outbuf);
        // Group-commit barrier: hand the batch's WAL records to the
        // kernel *before* the caller flushes the batch's responses to
        // the socket. That ordering — not per-mutation syscalls — is
        // what makes every acked write survive a process kill, and it
        // is why the batch is the WAL's write(2) granularity.
        if let Err(e) = self.store.kv().commit() {
            // Applied in memory but not durably logged: acking would
            // break the no-acked-loss contract. Drop the responses not
            // yet covered by a barrier, answer with one typed error,
            // and close — the client treats the dead connection as
            // unacknowledged.
            outbuf.truncate(barrier);
            let resp = store_error_frame(&e);
            if let Response::Error { status, .. } = &resp {
                self.telemetry.count_error(*status);
            }
            encode_response(&resp, None, outbuf);
            outcome.close = true;
        }
        outcome
    }

    /// Serve a buffered run of PUTs through one `put_many`, appending
    /// one Stored/error response per PUT in request order. No-op when
    /// the run is empty (which is always the case without coalescing).
    fn flush_puts(&mut self, pending: &mut Vec<(u64, Vec<u8>)>, outbuf: &mut Vec<u8>) {
        if pending.is_empty() {
            return;
        }
        let t0 = crate::telemetry::now_if_enabled();
        let pairs: Vec<(u64, &[u8])> = pending.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let results = self.store.kv().put_many(&pairs);
        for result in results {
            let resp = match result {
                Ok(()) => Response::Stored,
                Err(e) => store_error_frame(&e),
            };
            if let Response::Error { status, .. } = &resp {
                self.telemetry.count_error(*status);
            }
            encode_response(&resp, Some(Opcode::Put), outbuf);
        }
        // One observation for the whole run: the run was served as one
        // store operation, and that is the latency that existed.
        if let Some(t0) = t0 {
            self.telemetry
                .frame_latency_ns
                .observe(t0.elapsed().as_nanos() as u64);
        }
        pending.clear();
    }

    /// Serve one GET, appending its response frame to `outbuf`. Split
    /// from [`ExecCtx::handle`] so the cache-hit path can encode
    /// straight from the cached bytes under the shard lock instead of
    /// materialising a `Response::Value` allocation per read.
    fn serve_get(&mut self, key: u64, outbuf: &mut Vec<u8>) {
        let echo = Some(Opcode::Get);
        let error = match &mut self.store {
            Front::Cached(cached) => {
                match cached.get_with(key, |value| encode_value_frame(value, echo, outbuf)) {
                    Ok(Some(())) => None,
                    Ok(None) => {
                        encode_response(&Response::NotFound, echo, outbuf);
                        None
                    }
                    Err(e) => Some(store_error_frame(&e)),
                }
            }
            Front::Plain(store) => match store.get(key) {
                Ok(Some(v)) => {
                    encode_value_frame(&v, echo, outbuf);
                    None
                }
                Ok(None) => {
                    encode_response(&Response::NotFound, echo, outbuf);
                    None
                }
                Err(e) => Some(store_error_frame(&e)),
            },
        };
        if let Some(resp) = error {
            if let Response::Error { status, .. } = &resp {
                self.telemetry.count_error(*status);
            }
            encode_response(&resp, echo, outbuf);
        }
    }

    /// Produce the chunked response stream for one SCAN_STREAM
    /// request, appending chunk frames to `outbuf` and invoking the
    /// flush hook (when present) after every non-terminal chunk.
    ///
    /// The result is paged out of the store [`SCAN_PAGE`] entries at a
    /// time and re-split at the configured chunk byte bound, so peak
    /// memory is one page plus one chunk regardless of range size
    /// (when the hook flushes; without a hook, `outbuf` accumulates
    /// the chunks under the caller's backpressure). A store error
    /// mid-stream terminates the stream with an error frame echoing
    /// SCAN_STREAM — frame-level, the connection survives. An `Err`
    /// return means the flush hook reported a dead socket.
    fn serve_scan_stream(
        &mut self,
        lo: u64,
        hi: u64,
        limit: u32,
        outbuf: &mut Vec<u8>,
        flush: &mut Option<FlushHook<'_>>,
    ) -> std::io::Result<()> {
        let mut remaining = if limit == 0 {
            u64::MAX
        } else {
            u64::from(limit)
        };
        let mut cursor = lo;
        let mut chunk: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut chunk_bytes = 0usize;
        let mut chunks_emitted = 0u64;
        while remaining > 0 && cursor <= hi {
            let want = remaining.min(SCAN_PAGE as u64) as usize;
            let page = match self.store.kv().scan_limit(cursor, hi, want) {
                Ok(page) => page,
                Err(e) => {
                    // Mid-stream store error: terminal for the stream,
                    // survivable for the connection. Entries already
                    // emitted stand; the peer sees the typed error in
                    // place of the final chunk.
                    let resp = store_error_frame(&e);
                    if let Response::Error { status, .. } = &resp {
                        self.telemetry.count_error(*status);
                    }
                    encode_response(&resp, Some(Opcode::ScanStream), outbuf);
                    return Ok(());
                }
            };
            let got = page.len();
            let last_key = page.last().map(|&(k, _)| k);
            for (k, v) in page {
                let entry_bytes = 12 + v.len();
                if !chunk.is_empty() && chunk_bytes + entry_bytes > self.scan_chunk_bytes {
                    // At least one more entry (this one) follows.
                    encode_scan_chunk(true, &chunk, outbuf);
                    chunks_emitted += 1;
                    self.note_chunk(chunks_emitted);
                    chunk.clear();
                    chunk_bytes = 0;
                    if let Some(f) = flush.as_mut() {
                        f(outbuf)?;
                    }
                }
                chunk_bytes += entry_bytes;
                chunk.push((k, v));
            }
            remaining -= got as u64;
            if got < want {
                break;
            }
            match last_key {
                Some(k) if k < hi => cursor = k + 1,
                _ => break,
            }
        }
        // Terminal chunk: whatever is left (possibly nothing — an
        // empty range is one empty final chunk).
        encode_scan_chunk(false, &chunk, outbuf);
        chunks_emitted += 1;
        self.note_chunk(chunks_emitted);
        Ok(())
    }

    /// Telemetry for one emitted chunk: count it, and count the
    /// response as multi-chunk when its second chunk goes out.
    fn note_chunk(&self, emitted_for_response: u64) {
        self.telemetry.scan_stream_chunks.inc();
        if emitted_for_response == 2 {
            self.telemetry.scan_stream_multi_chunk.inc();
        }
    }

    /// Serve a legacy single-frame SCAN, paging the store like the
    /// streaming path so an over-sized result is detected after at
    /// most one frame's worth of entries plus one page — never by
    /// materialising the whole range. A result whose encoded body
    /// would exceed the frame cap answers [`Status::ScanTooLarge`]
    /// (emitting the over-cap frame would poison the peer's decoder).
    fn bounded_scan(&mut self, lo: u64, hi: u64, limit: u32) -> Response {
        let mut remaining = if limit == 0 {
            u64::MAX
        } else {
            u64::from(limit)
        };
        let mut cursor = lo;
        let mut entries: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut body_bytes = 4usize;
        while remaining > 0 && cursor <= hi {
            let want = remaining.min(SCAN_PAGE as u64) as usize;
            let page = match self.store.kv().scan_limit(cursor, hi, want) {
                Ok(page) => page,
                Err(e) => return store_error_frame(&e),
            };
            let got = page.len();
            let last_key = page.last().map(|&(k, _)| k);
            for (k, v) in page {
                body_bytes += 12 + v.len();
                if body_bytes > self.max_frame_body {
                    return Response::Error {
                        status: Status::ScanTooLarge,
                        retired: 0,
                        message: format!(
                            "scan result exceeds the {}-byte frame cap after {} entries; \
                             use SCAN_STREAM (opcode 0x09) for unbounded ranges",
                            self.max_frame_body,
                            entries.len(),
                        ),
                    };
                }
                entries.push((k, v));
            }
            remaining -= got as u64;
            if got < want {
                break;
            }
            match last_key {
                Some(k) if k < hi => cursor = k + 1,
                _ => break,
            }
        }
        Response::Entries(entries)
    }

    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Get { key } => match self.store.kv().get(key) {
                Ok(Some(v)) => Response::Value(v),
                Ok(None) => Response::NotFound,
                Err(e) => store_error_frame(&e),
            },
            Request::Put { key, value } => match self.store.kv().put(key, &value) {
                Ok(()) => Response::Stored,
                Err(e) => store_error_frame(&e),
            },
            Request::Delete { key } => match self.store.kv().delete(key) {
                Ok(existed) => Response::Deleted(existed),
                Err(e) => store_error_frame(&e),
            },
            Request::Scan { lo, hi, limit } => self.bounded_scan(lo, hi, limit),
            // Streamed in exec_batch (needs the output buffer); only a
            // direct `handle` caller could reach this arm, and there
            // is none.
            Request::ScanStream { .. } => unreachable!("SCAN_STREAM is served by exec_batch"),
            Request::Stats => Response::Stats(self.stats_json()),
            // FLUSH dispatches through the NvmKvStore trait: the
            // persistence-backed store snapshots + fsyncs, stores
            // without persistence answer `Flushed(0)` (documented
            // no-op in `traits.rs`).
            Request::Flush => match self.store.kv().flush() {
                Ok(bytes) => Response::Flushed(bytes),
                Err(e) => store_error_frame(&e),
            },
            Request::Health => {
                let wear = self.store.wear_summary();
                self.telemetry.record_wear(&wear);
                Response::Health(wear)
            }
            Request::Metrics => {
                // Refresh the wear gauges so a text scrape carries the
                // same numbers a binary HEALTH probe would.
                self.telemetry.record_wear(&self.store.wear_summary());
                Response::Metrics(match &self.registry {
                    Some(reg) => reg.render_prometheus(),
                    None => "# no telemetry registry attached\n".to_string(),
                })
            }
            Request::Shutdown => Response::ShutdownAck,
        }
    }

    /// Self-contained JSON stats document (schema in `PROTOCOL.md`).
    fn stats_json(&self) -> String {
        let s = self.store.stats();
        format!(
            concat!(
                "{{\"keys\":{},\"retired_segments\":{},\"device\":{{",
                "\"writes\":{},\"reads\":{},\"lines_written\":{},\"lines_skipped\":{},",
                "\"bits_flipped\":{},\"bits_set\":{},\"bits_reset\":{},\"bits_programmed\":{},",
                "\"bits_requested\":{},\"energy_pj\":{},\"latency_ns\":{},\"swaps\":{}}}}}"
            ),
            self.store.len(),
            self.store.retired_count(),
            s.writes,
            s.reads,
            s.lines_written,
            s.lines_skipped,
            s.bits_flipped,
            s.bits_set,
            s.bits_reset,
            s.bits_programmed,
            s.bits_requested,
            s.energy_pj,
            s.latency_ns,
            s.swaps,
        )
    }
}

/// The error frame for a protocol violation.
pub(crate) fn error_frame(e: &FrameError) -> Response {
    Response::Error {
        status: e.status(),
        retired: 0,
        message: e.to_string(),
    }
}

/// Map a [`StoreError`] to its typed wire status — degraded mode and
/// pool depletion become first-class statuses the client can match on
/// instead of a dropped connection.
pub(crate) fn store_error_frame(e: &StoreError) -> Response {
    match e {
        StoreError::Degraded { retired } => Response::Error {
            status: Status::Degraded,
            retired: *retired as u64,
            message: e.to_string(),
        },
        StoreError::Engine(E2Error::PoolDepleted { retired }) => Response::Error {
            status: Status::PoolDepleted,
            retired: *retired as u64,
            message: e.to_string(),
        },
        StoreError::OutOfSpace | StoreError::Engine(E2Error::OutOfSpace) => Response::Error {
            status: Status::OutOfSpace,
            retired: 0,
            message: e.to_string(),
        },
        other => Response::Error {
            status: Status::StoreError,
            retired: 0,
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_errors_map_to_typed_statuses() {
        let degraded = store_error_frame(&StoreError::Degraded { retired: 9 });
        assert!(matches!(
            degraded,
            Response::Error {
                status: Status::Degraded,
                retired: 9,
                ..
            }
        ));
        let depleted = store_error_frame(&StoreError::Engine(E2Error::PoolDepleted { retired: 3 }));
        assert!(matches!(
            depleted,
            Response::Error {
                status: Status::PoolDepleted,
                retired: 3,
                ..
            }
        ));
        let full = store_error_frame(&StoreError::OutOfSpace);
        assert!(matches!(
            full,
            Response::Error {
                status: Status::OutOfSpace,
                ..
            }
        ));
        let unknown = store_error_frame(&StoreError::UnknownNode(e2nvm_kvstore::NodeId(1)));
        assert!(matches!(
            unknown,
            Response::Error {
                status: Status::StoreError,
                ..
            }
        ));
    }

    #[test]
    fn collect_work_keeps_violations_in_order() {
        use crate::frame::{encode_request, DEFAULT_MAX_BODY, MAGIC, VERSION};
        let mut bytes = Vec::new();
        encode_request(&Request::Ping, &mut bytes);
        // An unknown opcode (survivable) between two good frames.
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&[MAGIC, VERSION, 0x55, 0]);
        encode_request(&Request::Get { key: 9 }, &mut bytes);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let mut items = Vec::new();
        assert_eq!(collect_work(&mut dec, &mut items), CollectEnd::NeedMore);
        assert!(matches!(items[0], Work::Req(Request::Ping)));
        assert!(matches!(
            items[1],
            Work::Bad(FrameError::UnknownOpcode(0x55))
        ));
        assert!(matches!(items[2], Work::Req(Request::Get { key: 9 })));
    }

    #[test]
    fn collect_work_stops_at_fatal_violation() {
        use crate::frame::{encode_request, DEFAULT_MAX_BODY};
        let mut bytes = Vec::new();
        encode_request(&Request::Ping, &mut bytes);
        bytes.extend_from_slice(b"GET / HTTP/1.1\r\n");
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let mut items = Vec::new();
        assert_eq!(collect_work(&mut dec, &mut items), CollectEnd::Fatal);
        assert_eq!(items.len(), 2);
        assert!(matches!(items[1], Work::Bad(FrameError::BadMagic(_))));
    }
}
