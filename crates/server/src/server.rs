//! The threaded TCP server fronting a [`ShardedE2KvStore`].
//!
//! Threading model: one non-blocking accept loop plus one thread per
//! connection, bounded by [`ServerConfig::max_connections`] (excess
//! connections are greeted with a BUSY error frame and closed). The
//! fronted store is a [`ShardedE2KvStore`] clone per connection —
//! clones share the shards, so cross-connection coordination is the
//! engine's per-shard locking, not the server's.
//!
//! Per-connection codec: each read drains as many complete frames as
//! arrived (request pipelining), responses are appended to one write
//! buffer and flushed once per read batch. Graceful shutdown is a
//! shared flag polled by the accept loop and by every connection's
//! read timeout; it is set by [`ServerHandle::shutdown`] or by a
//! SHUTDOWN frame from any client.

use crate::frame::{
    encode_response, encode_value_frame, parse_request, FrameDecoder, FrameError, Opcode, Request,
    Response, Status, DEFAULT_MAX_BODY,
};
use crate::telemetry::ServerTelemetry;
use e2nvm_core::E2Error;
use e2nvm_kvstore::{CacheConfig, CachedKvStore, NvmKvStore, ShardedE2KvStore, StoreError};
use e2nvm_telemetry::{Event, TelemetryRegistry};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. `Default` binds an ephemeral loopback port
/// with a 64-connection limit and the protocol's 1 MiB frame cap.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port; read
    /// the actual one from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Maximum simultaneously open connections; the next one is sent a
    /// BUSY error frame and closed.
    pub max_connections: usize,
    /// Cap on a frame's `body_len`; larger frames are answered with
    /// FRAME_TOO_LARGE and the connection closes.
    pub max_frame_body: usize,
    /// Socket read timeout — the granularity at which idle connections
    /// notice a shutdown. Must be nonzero.
    pub read_timeout: Duration,
    /// When set, front the store with a DRAM read-through
    /// [`e2nvm_kvstore::HotCache`] of this shape. `None` (the default)
    /// serves every GET from the store, byte-for-byte as before the
    /// cache existed. Caching is a server-side concern: nothing about
    /// the wire protocol changes either way.
    pub cache: Option<CacheConfig>,
    /// Coalesce runs of consecutive pipelined PUT frames into one
    /// batched `put_many` against the store, so they share segment
    /// placements. Off by default: batching changes how values pack
    /// into segments, and the default must stay bit-identical to the
    /// unbatched server.
    pub coalesce_puts: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_frame_body: DEFAULT_MAX_BODY,
            read_timeout: Duration::from_millis(25),
            cache: None,
            coalesce_puts: false,
        }
    }
}

impl ServerConfig {
    /// Start building a config from the defaults. The builder validates
    /// on [`ServerConfigBuilder::build`], so a constructed config is
    /// always serveable.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Check the invariants [`ServerConfigBuilder::build`] enforces.
    /// Useful when a config was assembled by hand via struct update
    /// syntax instead of the builder.
    pub fn validate(&self) -> std::io::Result<()> {
        fn invalid(msg: String) -> std::io::Error {
            std::io::Error::new(ErrorKind::InvalidInput, msg)
        }
        if self.read_timeout.is_zero() {
            return Err(invalid(
                "ServerConfig::read_timeout must be nonzero (it paces shutdown polling)".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(invalid(
                "ServerConfig::max_connections must be at least 1".into(),
            ));
        }
        if self.max_frame_body == 0 {
            return Err(invalid(
                "ServerConfig::max_frame_body must be nonzero".into(),
            ));
        }
        if let Some(cache) = &self.cache {
            cache
                .validate()
                .map_err(|e| invalid(format!("ServerConfig::cache is invalid: {e}")))?;
        }
        Ok(())
    }
}

/// Builder for [`ServerConfig`], mirroring `E2Config::builder()` and
/// [`CacheConfig::builder`]: chain setters, then
/// [`ServerConfigBuilder::build`] validates and returns the config.
///
/// ```
/// use e2nvm_server::ServerConfig;
/// use std::time::Duration;
///
/// let cfg = ServerConfig::builder()
///     .addr("127.0.0.1:0")
///     .max_connections(8)
///     .read_timeout(Duration::from_millis(10))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.max_connections, 8);
/// assert!(cfg.cache.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Address to bind (see [`ServerConfig::addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Connection limit (see [`ServerConfig::max_connections`]).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.cfg.max_connections = max;
        self
    }

    /// Frame body cap (see [`ServerConfig::max_frame_body`]).
    pub fn max_frame_body(mut self, bytes: usize) -> Self {
        self.cfg.max_frame_body = bytes;
        self
    }

    /// Socket read timeout (see [`ServerConfig::read_timeout`]).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.read_timeout = timeout;
        self
    }

    /// Front the store with a read-through cache of this shape (see
    /// [`ServerConfig::cache`]).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = Some(cache);
        self
    }

    /// Coalesce consecutive pipelined PUTs into batched `put_many`
    /// calls (see [`ServerConfig::coalesce_puts`]).
    pub fn coalesce_puts(mut self, on: bool) -> Self {
        self.cfg.coalesce_puts = on;
        self
    }

    /// Validate and return the config. Rejects a zero read timeout,
    /// a zero connection limit, a zero frame cap, and any invalid
    /// cache shape with [`ErrorKind::InvalidInput`].
    pub fn build(self) -> std::io::Result<ServerConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// A configured-but-not-started server. Build with [`Server::new`],
/// optionally attach telemetry, then [`Server::start`].
pub struct Server {
    store: ShardedE2KvStore,
    config: ServerConfig,
    telemetry: ServerTelemetry,
    registry: Option<TelemetryRegistry>,
}

impl Server {
    /// A server fronting `store` with `config`. Telemetry starts
    /// disconnected; attach with [`Server::with_telemetry`].
    pub fn new(store: ShardedE2KvStore, config: ServerConfig) -> Self {
        Self {
            store,
            config,
            telemetry: ServerTelemetry::disconnected(),
            registry: None,
        }
    }

    /// Register the server's wire-level series on `registry` and serve
    /// METRICS frames from it. Attach the *store's* telemetry to the
    /// same registry beforehand so one scrape sees the whole stack.
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = ServerTelemetry::register(registry);
        self.registry = Some(registry.clone());
        self
    }

    /// Bind and start serving. Returns once the listener is live; all
    /// serving happens on background threads owned by the returned
    /// handle.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        self.config.validate()?;
        let listener = TcpListener::bind(&self.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if let Some(reg) = &self.registry {
            reg.journal().record(Event::ServerStarted {
                port: addr.port() as usize,
            });
        }
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_thread = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name("e2nvm-accept".into())
                .spawn(move || accept_loop(listener, self, shutdown))?
        };
        Ok(ServerHandle {
            addr,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }
}

/// Handle to a running server: its bound address plus shutdown/join
/// controls. Dropping the handle shuts the server down and joins it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<usize>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral
    /// ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request graceful shutdown: stop accepting, let every connection
    /// finish its current batch, then close. Idempotent; returns
    /// immediately — pair with [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
    }

    /// Whether shutdown has been requested (by this handle or by a
    /// client's SHUTDOWN frame).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server has fully stopped (all connection
    /// threads joined). Returns the number of connections served over
    /// the server's lifetime. Does not itself request shutdown: call
    /// [`ServerHandle::shutdown`] first, or let a SHUTDOWN frame do it.
    pub fn join(mut self) -> usize {
        self.join_inner()
    }

    fn join_inner(&mut self) -> usize {
        self.accept_thread
            .take()
            .map(|t| t.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.join_inner();
    }
}

/// Accept loop: poll-accept (non-blocking + sleep) so the shutdown
/// flag is observed without platform signal machinery. Returns the
/// number of connections served.
fn accept_loop(listener: TcpListener, server: Server, shutdown: Arc<AtomicBool>) -> usize {
    let Server {
        store,
        config,
        telemetry,
        registry,
    } = server;
    // Build the front once: clones share the cache's shards, so a PUT
    // on one connection invalidates what another connection cached.
    let front = match config.cache.clone() {
        Some(cache_cfg) => Front::Cached(match &registry {
            Some(reg) => CachedKvStore::with_telemetry(store, cache_cfg, reg),
            None => CachedKvStore::new(store, cache_cfg),
        }),
        None => Front::Plain(store),
    };
    let active = Arc::new(AtomicUsize::new(0));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut served = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                workers.retain(|w| !w.is_finished());
                if active.load(Ordering::SeqCst) >= config.max_connections {
                    telemetry.connections_rejected.inc();
                    telemetry.count_error(Status::Busy);
                    reject_busy(stream);
                    continue;
                }
                served += 1;
                telemetry.connections_opened.inc();
                telemetry.connections_active.add(1);
                active.fetch_add(1, Ordering::SeqCst);
                let ctx = ConnCtx {
                    store: front.clone(),
                    registry: registry.clone(),
                    telemetry: telemetry.clone(),
                    shutdown: Arc::clone(&shutdown),
                    active: Arc::clone(&active),
                    max_frame_body: config.max_frame_body,
                    read_timeout: config.read_timeout,
                    coalesce_puts: config.coalesce_puts,
                };
                match std::thread::Builder::new()
                    .name("e2nvm-conn".into())
                    .spawn(move || ctx.run(stream))
                {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        // Spawn failed (resource exhaustion): undo the
                        // accounting; the stream drops and the client
                        // sees a close.
                        telemetry.connections_active.sub(1);
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    if let Some(reg) = &registry {
        reg.journal().record(Event::ServerStopped {
            connections_served: served,
        });
    }
    served
}

/// Send a BUSY error frame (best effort) and close.
fn reject_busy(mut stream: TcpStream) {
    let mut out = Vec::new();
    encode_response(
        &Response::Error {
            status: Status::Busy,
            retired: 0,
            message: "connection limit reached".into(),
        },
        None,
        &mut out,
    );
    let _ = stream.write_all(&out);
}

/// What the connection threads serve from: the bare sharded store, or
/// the same store behind a read-through cache. Clones share both the
/// store shards and the cache shards, so coherence is cross-connection.
#[derive(Clone)]
enum Front {
    Plain(ShardedE2KvStore),
    Cached(CachedKvStore<ShardedE2KvStore>),
}

impl Front {
    /// The store as a trait object — every request dispatches through
    /// the same [`NvmKvStore`] surface regardless of caching.
    fn kv(&mut self) -> &mut dyn NvmKvStore {
        match self {
            Front::Plain(store) => store,
            Front::Cached(cached) => cached,
        }
    }

    /// Live key count (inherent on the concrete store, not the trait).
    fn len(&self) -> usize {
        match self {
            Front::Plain(store) => store.len(),
            Front::Cached(cached) => cached.inner().len(),
        }
    }

    /// Retired segment count across shards.
    fn retired_count(&self) -> usize {
        match self {
            Front::Plain(store) => store.retired_count(),
            Front::Cached(cached) => cached.inner().retired_count(),
        }
    }

    /// Simulated-device counters (the cache forwards to its inner
    /// store; DRAM hits never touch the device).
    fn stats(&self) -> e2nvm_sim::DeviceStats {
        match self {
            Front::Plain(store) => store.stats(),
            Front::Cached(cached) => cached.stats(),
        }
    }
}

/// Everything one connection thread needs.
struct ConnCtx {
    store: Front,
    registry: Option<TelemetryRegistry>,
    telemetry: ServerTelemetry,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    max_frame_body: usize,
    read_timeout: Duration,
    coalesce_puts: bool,
}

impl ConnCtx {
    fn run(mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        self.serve_connection(stream);
        self.telemetry.connections_active.sub(1);
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    fn serve_connection(&mut self, mut stream: TcpStream) {
        if stream.set_read_timeout(Some(self.read_timeout)).is_err() {
            return;
        }
        let mut decoder = FrameDecoder::new(self.max_frame_body);
        let mut rdbuf = vec![0u8; 16 * 1024];
        let mut outbuf: Vec<u8> = Vec::with_capacity(4096);
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                // Everything received before shutdown was answered at
                // the end of its read batch; nothing is in flight.
                return;
            }
            let n = match stream.read(&mut rdbuf) {
                Ok(0) => return, // peer closed
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            self.telemetry.bytes_read.add(n as u64);
            decoder.extend(&rdbuf[..n]);
            let keep_going = self.drain_frames(&mut decoder, &mut outbuf);
            if !outbuf.is_empty() {
                self.telemetry.bytes_written.add(outbuf.len() as u64);
                if stream.write_all(&outbuf).is_err() {
                    return;
                }
                outbuf.clear();
            }
            if !keep_going {
                return;
            }
        }
    }

    /// Decode and serve every complete frame in the buffer, appending
    /// responses (one per request, in order) to `outbuf`. Returns
    /// `false` when the connection must close after the flush.
    ///
    /// With [`ServerConfig::coalesce_puts`] set, runs of consecutive
    /// PUT frames are buffered and served by one `put_many` call; the
    /// run flushes before any other frame kind is handled (and at the
    /// end of the read batch), so responses still come back in request
    /// order.
    fn drain_frames(&mut self, decoder: &mut FrameDecoder, outbuf: &mut Vec<u8>) -> bool {
        let mut pending_puts: Vec<(u64, Vec<u8>)> = Vec::new();
        loop {
            match decoder.next_frame() {
                Ok(None) => {
                    self.flush_puts(&mut pending_puts, outbuf);
                    return true;
                }
                Ok(Some(raw)) => {
                    // Timed explicitly (not via the histogram's drop
                    // guard, which would hold a borrow of the telemetry
                    // struct across the `&mut self` dispatch), and only
                    // when the observation can go somewhere.
                    let t0 = crate::telemetry::now_if_enabled();
                    let close = match parse_request(&raw) {
                        Ok(req) => {
                            let op = req.opcode();
                            self.telemetry.count_frame(op);
                            let req = if self.coalesce_puts {
                                match req {
                                    Request::Put { key, value } => {
                                        // Answered when the run flushes;
                                        // its latency is folded into the
                                        // flush observation.
                                        pending_puts.push((key, value));
                                        continue;
                                    }
                                    other => {
                                        self.flush_puts(&mut pending_puts, outbuf);
                                        other
                                    }
                                }
                            } else {
                                req
                            };
                            match req {
                                // GETs are the hot path: serve them
                                // straight into the output buffer (a
                                // cache hit encodes from the cached
                                // bytes, no intermediate Vec).
                                Request::Get { key } => {
                                    self.serve_get(key, outbuf);
                                    false
                                }
                                req => {
                                    let shutdown_requested = req == Request::Shutdown;
                                    let resp = self.handle(req);
                                    if let Response::Error { status, .. } = &resp {
                                        self.telemetry.count_error(*status);
                                    }
                                    encode_response(&resp, Some(op), outbuf);
                                    if shutdown_requested {
                                        self.shutdown.store(true, Ordering::SeqCst);
                                    }
                                    shutdown_requested
                                }
                            }
                        }
                        Err(e) => {
                            // Body-level violation: framing is intact,
                            // answer with a typed error frame and keep
                            // the connection (never panic, never drop
                            // silently). Flush first so the error frame
                            // stays in request order.
                            self.flush_puts(&mut pending_puts, outbuf);
                            self.telemetry.count_error(e.status());
                            encode_response(&error_frame(&e), None, outbuf);
                            e.is_fatal()
                        }
                    };
                    if let Some(t0) = t0 {
                        self.telemetry
                            .frame_latency_ns
                            .observe(t0.elapsed().as_nanos() as u64);
                    }
                    if close {
                        return false;
                    }
                }
                Err(e) => {
                    // Framing-level violation: answer, then close — the
                    // byte stream can no longer be trusted.
                    self.flush_puts(&mut pending_puts, outbuf);
                    self.telemetry.count_error(e.status());
                    encode_response(&error_frame(&e), None, outbuf);
                    return false;
                }
            }
        }
    }

    /// Serve a buffered run of PUTs through one `put_many`, appending
    /// one Stored/error response per PUT in request order. No-op when
    /// the run is empty (which is always the case without
    /// [`ServerConfig::coalesce_puts`]).
    fn flush_puts(&mut self, pending: &mut Vec<(u64, Vec<u8>)>, outbuf: &mut Vec<u8>) {
        if pending.is_empty() {
            return;
        }
        let t0 = crate::telemetry::now_if_enabled();
        let pairs: Vec<(u64, &[u8])> = pending.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let results = self.store.kv().put_many(&pairs);
        for result in results {
            let resp = match result {
                Ok(()) => Response::Stored,
                Err(e) => store_error_frame(&e),
            };
            if let Response::Error { status, .. } = &resp {
                self.telemetry.count_error(*status);
            }
            encode_response(&resp, Some(Opcode::Put), outbuf);
        }
        // One observation for the whole run: the run was served as one
        // store operation, and that is the latency that existed.
        if let Some(t0) = t0 {
            self.telemetry
                .frame_latency_ns
                .observe(t0.elapsed().as_nanos() as u64);
        }
        pending.clear();
    }

    /// Serve one GET, appending its response frame to `outbuf`. Split
    /// from [`ConnCtx::handle`] so the cache-hit path can encode
    /// straight from the cached bytes under the shard lock instead of
    /// materialising a `Response::Value` allocation per read.
    fn serve_get(&mut self, key: u64, outbuf: &mut Vec<u8>) {
        let echo = Some(Opcode::Get);
        let error = match &mut self.store {
            Front::Cached(cached) => {
                match cached.get_with(key, |value| encode_value_frame(value, echo, outbuf)) {
                    Ok(Some(())) => None,
                    Ok(None) => {
                        encode_response(&Response::NotFound, echo, outbuf);
                        None
                    }
                    Err(e) => Some(store_error_frame(&e)),
                }
            }
            Front::Plain(store) => match store.get(key) {
                Ok(Some(v)) => {
                    encode_value_frame(&v, echo, outbuf);
                    None
                }
                Ok(None) => {
                    encode_response(&Response::NotFound, echo, outbuf);
                    None
                }
                Err(e) => Some(store_error_frame(&e)),
            },
        };
        if let Some(resp) = error {
            if let Response::Error { status, .. } = &resp {
                self.telemetry.count_error(*status);
            }
            encode_response(&resp, echo, outbuf);
        }
    }

    fn handle(&mut self, req: Request) -> Response {
        match req {
            Request::Ping => Response::Pong,
            Request::Get { key } => match self.store.kv().get(key) {
                Ok(Some(v)) => Response::Value(v),
                Ok(None) => Response::NotFound,
                Err(e) => store_error_frame(&e),
            },
            Request::Put { key, value } => match self.store.kv().put(key, &value) {
                Ok(()) => Response::Stored,
                Err(e) => store_error_frame(&e),
            },
            Request::Delete { key } => match self.store.kv().delete(key) {
                Ok(existed) => Response::Deleted(existed),
                Err(e) => store_error_frame(&e),
            },
            Request::Scan { lo, hi, limit } => {
                let limit = if limit == 0 {
                    usize::MAX
                } else {
                    limit as usize
                };
                match self.store.kv().scan_limit(lo, hi, limit) {
                    Ok(entries) => Response::Entries(entries),
                    Err(e) => store_error_frame(&e),
                }
            }
            Request::Stats => Response::Stats(self.stats_json()),
            Request::Metrics => Response::Metrics(match &self.registry {
                Some(reg) => reg.render_prometheus(),
                None => "# no telemetry registry attached\n".to_string(),
            }),
            Request::Shutdown => Response::ShutdownAck,
        }
    }

    /// Self-contained JSON stats document (schema in `PROTOCOL.md`).
    fn stats_json(&self) -> String {
        let s = self.store.stats();
        format!(
            concat!(
                "{{\"keys\":{},\"retired_segments\":{},\"device\":{{",
                "\"writes\":{},\"reads\":{},\"lines_written\":{},\"lines_skipped\":{},",
                "\"bits_flipped\":{},\"bits_set\":{},\"bits_reset\":{},\"bits_programmed\":{},",
                "\"bits_requested\":{},\"energy_pj\":{},\"latency_ns\":{},\"swaps\":{}}}}}"
            ),
            self.store.len(),
            self.store.retired_count(),
            s.writes,
            s.reads,
            s.lines_written,
            s.lines_skipped,
            s.bits_flipped,
            s.bits_set,
            s.bits_reset,
            s.bits_programmed,
            s.bits_requested,
            s.energy_pj,
            s.latency_ns,
            s.swaps,
        )
    }
}

/// The error frame for a protocol violation.
fn error_frame(e: &FrameError) -> Response {
    Response::Error {
        status: e.status(),
        retired: 0,
        message: e.to_string(),
    }
}

/// Map a [`StoreError`] to its typed wire status — degraded mode and
/// pool depletion become first-class statuses the client can match on
/// instead of a dropped connection.
fn store_error_frame(e: &StoreError) -> Response {
    match e {
        StoreError::Degraded { retired } => Response::Error {
            status: Status::Degraded,
            retired: *retired as u64,
            message: e.to_string(),
        },
        StoreError::Engine(E2Error::PoolDepleted { retired }) => Response::Error {
            status: Status::PoolDepleted,
            retired: *retired as u64,
            message: e.to_string(),
        },
        StoreError::OutOfSpace | StoreError::Engine(E2Error::OutOfSpace) => Response::Error {
            status: Status::OutOfSpace,
            retired: 0,
            message: e.to_string(),
        },
        other => Response::Error {
            status: Status::StoreError,
            retired: 0,
            message: other.to_string(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_errors_map_to_typed_statuses() {
        let degraded = store_error_frame(&StoreError::Degraded { retired: 9 });
        assert!(matches!(
            degraded,
            Response::Error {
                status: Status::Degraded,
                retired: 9,
                ..
            }
        ));
        let depleted = store_error_frame(&StoreError::Engine(E2Error::PoolDepleted { retired: 3 }));
        assert!(matches!(
            depleted,
            Response::Error {
                status: Status::PoolDepleted,
                retired: 3,
                ..
            }
        ));
        let full = store_error_frame(&StoreError::OutOfSpace);
        assert!(matches!(
            full,
            Response::Error {
                status: Status::OutOfSpace,
                ..
            }
        ));
        let unknown = store_error_frame(&StoreError::UnknownNode(e2nvm_kvstore::NodeId(1)));
        assert!(matches!(
            unknown,
            Response::Error {
                status: Status::StoreError,
                ..
            }
        ));
    }
}
