//! The TCP server fronting a [`ShardedE2KvStore`]: shared
//! configuration, the [`Server`] front door, and the [`ServerHandle`]
//! lifecycle controls.
//!
//! Two serving engines share this surface (and byte-identical wire
//! behavior — `PROTOCOL.md` does not change between them):
//!
//! * **Reactor** (the default, [`Server`]): a readiness-based event
//!   loop — nonblocking sockets registered with epoll, per-connection
//!   state machines, and a small fixed worker pool executing decoded
//!   request batches. One process holds thousands of idle-or-bursty
//!   clients; backpressure pauses a flooding connection's reads
//!   instead of dropping clients. See [`crate::reactor`].
//! * **Thread-per-connection** ([`crate::ThreadedServer`]): the
//!   original model, kept as the measurable baseline (and as the
//!   serving engine on non-Linux hosts, where the epoll poller is
//!   unavailable). See [`crate::threaded`].
//!
//! Graceful shutdown is a shared flag plus (for the reactor) an
//! eventfd wakeup, set by [`ServerHandle::shutdown`] or by a SHUTDOWN
//! frame from any client; the reactor drains promptly by walking its
//! readiness set instead of waiting out per-thread read timeouts.

use crate::dispatch::Front;
use crate::frame::DEFAULT_MAX_BODY;
use crate::telemetry::ServerTelemetry;
use e2nvm_kvstore::{CacheConfig, CachedKvStore, ShardedE2KvStore};
use e2nvm_telemetry::{Event, TelemetryRegistry};
use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Server tuning knobs. `Default` binds an ephemeral loopback port
/// with a 1024-connection limit, the protocol's 1 MiB frame cap, an
/// auto-sized worker pool, and a 64-item per-connection queue bound.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`"127.0.0.1:0"` picks an ephemeral port; read
    /// the actual one from [`ServerHandle::local_addr`]).
    pub addr: String,
    /// Maximum simultaneously open connections; the next one is sent a
    /// BUSY error frame and closed. This is fd-exhaustion protection —
    /// under the reactor, load is governed by per-connection
    /// backpressure ([`ServerConfig::queue_depth`]) long before this
    /// cliff is reached.
    pub max_connections: usize,
    /// Cap on a frame's `body_len`; larger frames are answered with
    /// FRAME_TOO_LARGE and the connection closes.
    pub max_frame_body: usize,
    /// Liveness tick. The reactor uses it as the upper bound on one
    /// `epoll_wait` (wakeups normally arrive via eventfd well before
    /// it); the threaded baseline uses it as each connection's socket
    /// read timeout, which paces its shutdown polling. Must be
    /// nonzero.
    pub read_timeout: Duration,
    /// Reactor worker pool size; `0` (the default) auto-sizes to the
    /// host's available parallelism, clamped to `[1, 8]`. Ignored by
    /// the threaded baseline.
    pub workers: usize,
    /// Per-connection bound on decoded-but-unserved request items.
    /// When a connection's queue reaches this bound (or its write
    /// backlog exceeds one frame cap), the reactor stops reading from
    /// it until the queue drains below half — TCP backpressure pauses
    /// the client instead of a dropped connection. Ignored by the
    /// threaded baseline.
    pub queue_depth: usize,
    /// When set, front the store with a DRAM read-through
    /// [`e2nvm_kvstore::HotCache`] of this shape. `None` (the default)
    /// serves every GET from the store, byte-for-byte as before the
    /// cache existed. Caching is a server-side concern: nothing about
    /// the wire protocol changes either way.
    pub cache: Option<CacheConfig>,
    /// Coalesce runs of consecutive pipelined PUT frames into one
    /// batched `put_many` against the store, so they share segment
    /// placements. Off by default: batching changes how values pack
    /// into segments, and the default must stay bit-identical to the
    /// unbatched server.
    pub coalesce_puts: bool,
    /// Target payload bytes per SCAN_STREAM chunk frame (default
    /// 64 KiB). Entries are never split across chunks, so a chunk
    /// carrying one entry larger than this bound exceeds it by that
    /// entry's size; otherwise chunks stay at or under the target.
    /// Must be nonzero.
    pub scan_chunk_bytes: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 1024,
            max_frame_body: DEFAULT_MAX_BODY,
            read_timeout: Duration::from_millis(25),
            workers: 0,
            queue_depth: 64,
            cache: None,
            coalesce_puts: false,
            scan_chunk_bytes: 64 * 1024,
        }
    }
}

impl ServerConfig {
    /// Start building a config from the defaults. The builder validates
    /// on [`ServerConfigBuilder::build`], so a constructed config is
    /// always serveable.
    pub fn builder() -> ServerConfigBuilder {
        ServerConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Check the invariants [`ServerConfigBuilder::build`] enforces.
    /// Useful when a config was assembled by hand via struct update
    /// syntax instead of the builder.
    pub fn validate(&self) -> std::io::Result<()> {
        fn invalid(msg: String) -> std::io::Error {
            std::io::Error::new(ErrorKind::InvalidInput, msg)
        }
        if self.read_timeout.is_zero() {
            return Err(invalid(
                "ServerConfig::read_timeout must be nonzero (it paces liveness ticks)".into(),
            ));
        }
        if self.max_connections == 0 {
            return Err(invalid(
                "ServerConfig::max_connections must be at least 1".into(),
            ));
        }
        if self.max_frame_body == 0 {
            return Err(invalid(
                "ServerConfig::max_frame_body must be nonzero".into(),
            ));
        }
        if self.queue_depth == 0 {
            return Err(invalid(
                "ServerConfig::queue_depth must be at least 1".into(),
            ));
        }
        if self.scan_chunk_bytes == 0 {
            return Err(invalid(
                "ServerConfig::scan_chunk_bytes must be nonzero".into(),
            ));
        }
        if let Some(cache) = &self.cache {
            cache
                .validate()
                .map_err(|e| invalid(format!("ServerConfig::cache is invalid: {e}")))?;
        }
        Ok(())
    }

    /// The worker-pool size after resolving `0` = auto (available
    /// parallelism clamped to `[1, 8]`).
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(1, 8)
        }
    }
}

/// Builder for [`ServerConfig`], mirroring `E2Config::builder()` and
/// [`CacheConfig::builder`]: chain setters, then
/// [`ServerConfigBuilder::build`] validates and returns the config.
///
/// ```
/// use e2nvm_server::ServerConfig;
/// use std::time::Duration;
///
/// let cfg = ServerConfig::builder()
///     .addr("127.0.0.1:0")
///     .max_connections(8)
///     .workers(2)
///     .queue_depth(32)
///     .read_timeout(Duration::from_millis(10))
///     .build()
///     .unwrap();
/// assert_eq!(cfg.max_connections, 8);
/// assert_eq!(cfg.workers, 2);
/// assert!(cfg.cache.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfigBuilder {
    cfg: ServerConfig,
}

impl ServerConfigBuilder {
    /// Address to bind (see [`ServerConfig::addr`]).
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.cfg.addr = addr.into();
        self
    }

    /// Connection limit (see [`ServerConfig::max_connections`]).
    pub fn max_connections(mut self, max: usize) -> Self {
        self.cfg.max_connections = max;
        self
    }

    /// Frame body cap (see [`ServerConfig::max_frame_body`]).
    pub fn max_frame_body(mut self, bytes: usize) -> Self {
        self.cfg.max_frame_body = bytes;
        self
    }

    /// Liveness tick / read timeout (see [`ServerConfig::read_timeout`]).
    pub fn read_timeout(mut self, timeout: Duration) -> Self {
        self.cfg.read_timeout = timeout;
        self
    }

    /// Reactor worker pool size, 0 = auto (see [`ServerConfig::workers`]).
    pub fn workers(mut self, workers: usize) -> Self {
        self.cfg.workers = workers;
        self
    }

    /// Per-connection queue bound (see [`ServerConfig::queue_depth`]).
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.cfg.queue_depth = depth;
        self
    }

    /// Front the store with a read-through cache of this shape (see
    /// [`ServerConfig::cache`]).
    pub fn cache(mut self, cache: CacheConfig) -> Self {
        self.cfg.cache = Some(cache);
        self
    }

    /// Coalesce consecutive pipelined PUTs into batched `put_many`
    /// calls (see [`ServerConfig::coalesce_puts`]).
    pub fn coalesce_puts(mut self, on: bool) -> Self {
        self.cfg.coalesce_puts = on;
        self
    }

    /// Target payload bytes per streamed scan chunk (see
    /// [`ServerConfig::scan_chunk_bytes`]).
    pub fn scan_chunk_bytes(mut self, bytes: usize) -> Self {
        self.cfg.scan_chunk_bytes = bytes;
        self
    }

    /// Validate and return the config. Rejects a zero read timeout,
    /// a zero connection limit, a zero frame cap, a zero queue depth,
    /// a zero scan chunk bound, and any invalid cache shape with
    /// [`ErrorKind::InvalidInput`].
    pub fn build(self) -> std::io::Result<ServerConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Everything a serving engine needs besides its sockets: the fronted
/// store, the resolved config, and the telemetry plumbing.
pub(crate) struct ServeParts {
    pub front: Front,
    pub config: ServerConfig,
    pub telemetry: ServerTelemetry,
    pub registry: Option<TelemetryRegistry>,
}

impl ServeParts {
    pub(crate) fn assemble(
        store: ShardedE2KvStore,
        config: ServerConfig,
        telemetry: ServerTelemetry,
        registry: Option<TelemetryRegistry>,
    ) -> Self {
        // Build the front once: clones share the cache's shards, so a
        // PUT on one connection invalidates what another connection
        // cached.
        let front = match config.cache.clone() {
            Some(cache_cfg) => Front::Cached(match &registry {
                Some(reg) => CachedKvStore::with_telemetry(store, cache_cfg, reg),
                None => CachedKvStore::new(store, cache_cfg),
            }),
            None => Front::Plain(store),
        };
        Self {
            front,
            config,
            telemetry,
            registry,
        }
    }

    /// Record the started event (once the listener is live).
    pub(crate) fn record_started(&self, addr: SocketAddr) {
        if let Some(reg) = &self.registry {
            reg.journal().record(Event::ServerStarted {
                port: addr.port() as usize,
            });
        }
    }

    /// Record the stopped event (after the last connection closed).
    pub(crate) fn record_stopped(&self, served: usize) {
        if let Some(reg) = &self.registry {
            reg.journal().record(Event::ServerStopped {
                connections_served: served,
            });
        }
    }
}

/// A configured-but-not-started server. Build with [`Server::new`],
/// optionally attach telemetry, then [`Server::start`].
///
/// `Server` serves with the epoll reactor on Linux and falls back to
/// the thread-per-connection engine elsewhere; to *force* the threaded
/// engine (e.g. as a measurement baseline) use
/// [`ThreadedServer`](crate::ThreadedServer).
pub struct Server {
    store: ShardedE2KvStore,
    config: ServerConfig,
    telemetry: ServerTelemetry,
    registry: Option<TelemetryRegistry>,
}

impl Server {
    /// A server fronting `store` with `config`. Telemetry starts
    /// disconnected; attach with [`Server::with_telemetry`].
    pub fn new(store: ShardedE2KvStore, config: ServerConfig) -> Self {
        Self {
            store,
            config,
            telemetry: ServerTelemetry::disconnected(),
            registry: None,
        }
    }

    /// Register the server's wire-level series on `registry` and serve
    /// METRICS frames from it. Attach the *store's* telemetry to the
    /// same registry beforehand so one scrape sees the whole stack.
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = ServerTelemetry::register(registry);
        self.registry = Some(registry.clone());
        self
    }

    /// Bind and start serving. Returns once the listener is live; all
    /// serving happens on background threads owned by the returned
    /// handle.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        self.config.validate()?;
        let listener = TcpListener::bind(&self.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let parts = ServeParts::assemble(self.store, self.config, self.telemetry, self.registry);
        parts.record_started(addr);
        let shutdown = Arc::new(AtomicBool::new(false));
        #[cfg(target_os = "linux")]
        {
            let waker = crate::sys::Waker::new()?;
            let thread =
                crate::reactor::spawn(listener, parts, Arc::clone(&shutdown), waker.clone())?;
            Ok(ServerHandle {
                addr,
                shutdown,
                waker: Some(waker),
                thread: Some(thread),
            })
        }
        #[cfg(not(target_os = "linux"))]
        {
            let thread = crate::threaded::spawn(listener, parts, Arc::clone(&shutdown))?;
            Ok(ServerHandle {
                addr,
                shutdown,
                thread: Some(thread),
            })
        }
    }
}

/// Handle to a running server: its bound address plus shutdown/join
/// controls. Dropping the handle shuts the server down and joins it.
#[derive(Debug)]
pub struct ServerHandle {
    pub(crate) addr: SocketAddr,
    pub(crate) shutdown: Arc<AtomicBool>,
    /// Present for reactor-backed servers: kicks the event loop out of
    /// `epoll_wait` so a shutdown is observed immediately rather than
    /// at the next liveness tick.
    #[cfg(target_os = "linux")]
    pub(crate) waker: Option<crate::sys::Waker>,
    pub(crate) thread: Option<JoinHandle<usize>>,
}

impl ServerHandle {
    /// The address the server actually bound (resolves ephemeral
    /// ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Request graceful shutdown: stop accepting, answer everything
    /// already received, flush, then close. Idempotent; returns
    /// immediately — pair with [`ServerHandle::join`] to wait.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        #[cfg(target_os = "linux")]
        if let Some(waker) = &self.waker {
            waker.wake();
        }
    }

    /// Whether shutdown has been requested (by this handle or by a
    /// client's SHUTDOWN frame).
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Block until the server has fully stopped (every connection
    /// drained and closed). Returns the number of connections served
    /// over the server's lifetime. Does not itself request shutdown:
    /// call [`ServerHandle::shutdown`] first, or let a SHUTDOWN frame
    /// do it.
    pub fn join(mut self) -> usize {
        self.join_inner()
    }

    fn join_inner(&mut self) -> usize {
        self.thread
            .take()
            .map(|t| t.join().unwrap_or(0))
            .unwrap_or(0)
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
        self.join_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_queue_depth_is_rejected() {
        let err = ServerConfig::builder().queue_depth(0).build().unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn zero_scan_chunk_bound_is_rejected() {
        let err = ServerConfig::builder()
            .scan_chunk_bytes(0)
            .build()
            .unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn auto_workers_resolve_to_a_sane_pool() {
        let cfg = ServerConfig::default();
        let n = cfg.effective_workers();
        assert!((1..=8).contains(&n), "auto workers resolved to {n}");
        let cfg = ServerConfig::builder().workers(3).build().unwrap();
        assert_eq!(cfg.effective_workers(), 3);
    }
}
