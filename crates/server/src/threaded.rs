//! The thread-per-connection serving engine — the original server
//! model, kept as the measurable baseline for the reactor (and as the
//! fallback engine on hosts without epoll).
//!
//! Threading model: one non-blocking accept loop plus one thread per
//! connection, bounded by `ServerConfig::max_connections` (excess
//! connections are greeted with a BUSY error frame and closed). Each
//! connection thread reads with a timeout, drains every complete
//! frame that arrived (request pipelining), executes the batch through
//! the shared `crate::dispatch` layer, and flushes all responses in
//! one write. Shutdown is a shared flag observed by the accept loop's
//! poll sleep and by every connection's read timeout — which is why
//! its drain latency is up to one `read_timeout` per idle connection,
//! the exact cliff the reactor removes (pinned by
//! `tests/reactor.rs::reactor_drain_is_prompt`).

use crate::dispatch::{collect_work, CollectEnd, ExecCtx, Work};
use crate::frame::{encode_response, FrameDecoder, Response, Status};
use crate::server::{ServeParts, ServerConfig, ServerHandle};
use crate::telemetry::ServerTelemetry;
use e2nvm_kvstore::ShardedE2KvStore;
use e2nvm_telemetry::TelemetryRegistry;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A configured-but-not-started thread-per-connection server. Same
/// construction surface as [`crate::Server`] — build, optionally
/// attach telemetry, then [`ThreadedServer::start`] — but always
/// serves with the threaded engine, regardless of platform.
///
/// Use this when you specifically want the baseline model (A/B
/// measurements against the reactor, `e2nvm-loadgen --threaded`); use
/// [`crate::Server`] otherwise.
pub struct ThreadedServer {
    store: ShardedE2KvStore,
    config: ServerConfig,
    telemetry: ServerTelemetry,
    registry: Option<TelemetryRegistry>,
}

impl ThreadedServer {
    /// A threaded server fronting `store` with `config`.
    pub fn new(store: ShardedE2KvStore, config: ServerConfig) -> Self {
        Self {
            store,
            config,
            telemetry: ServerTelemetry::disconnected(),
            registry: None,
        }
    }

    /// Register the server's wire-level series on `registry` (see
    /// [`crate::Server::with_telemetry`]).
    pub fn with_telemetry(mut self, registry: &TelemetryRegistry) -> Self {
        self.telemetry = ServerTelemetry::register(registry);
        self.registry = Some(registry.clone());
        self
    }

    /// Bind and start serving on background threads. The returned
    /// handle is interchangeable with the reactor's.
    pub fn start(self) -> std::io::Result<ServerHandle> {
        self.config.validate()?;
        let listener = TcpListener::bind(&self.config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let parts = ServeParts::assemble(self.store, self.config, self.telemetry, self.registry);
        parts.record_started(addr);
        let shutdown = Arc::new(AtomicBool::new(false));
        let thread = spawn(listener, parts, Arc::clone(&shutdown))?;
        Ok(ServerHandle {
            addr,
            shutdown,
            #[cfg(target_os = "linux")]
            waker: None,
            thread: Some(thread),
        })
    }
}

/// Spawn the accept-loop thread.
pub(crate) fn spawn(
    listener: TcpListener,
    parts: ServeParts,
    shutdown: Arc<AtomicBool>,
) -> std::io::Result<JoinHandle<usize>> {
    std::thread::Builder::new()
        .name("e2nvm-accept".into())
        .spawn(move || accept_loop(listener, parts, shutdown))
}

/// Accept loop: poll-accept (non-blocking + sleep) so the shutdown
/// flag is observed without platform signal machinery. Returns the
/// number of connections served.
fn accept_loop(listener: TcpListener, parts: ServeParts, shutdown: Arc<AtomicBool>) -> usize {
    let ServeParts {
        front,
        config,
        telemetry,
        registry,
    } = parts;
    let active = Arc::new(AtomicUsize::new(0));
    let mut workers: Vec<JoinHandle<()>> = Vec::new();
    let mut served = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                workers.retain(|w| !w.is_finished());
                if active.load(Ordering::SeqCst) >= config.max_connections {
                    telemetry.connections_rejected.inc();
                    telemetry.count_error(Status::Busy);
                    reject_busy(stream);
                    continue;
                }
                served += 1;
                telemetry.connections_opened.inc();
                telemetry.connections_active.add(1);
                active.fetch_add(1, Ordering::SeqCst);
                let ctx = ConnCtx {
                    exec: ExecCtx {
                        store: front.clone(),
                        registry: registry.clone(),
                        telemetry: telemetry.clone(),
                        coalesce_puts: config.coalesce_puts,
                        max_frame_body: config.max_frame_body,
                        scan_chunk_bytes: config.scan_chunk_bytes,
                    },
                    shutdown: Arc::clone(&shutdown),
                    active: Arc::clone(&active),
                    max_frame_body: config.max_frame_body,
                    read_timeout: config.read_timeout,
                };
                match std::thread::Builder::new()
                    .name("e2nvm-conn".into())
                    .spawn(move || ctx.run(stream))
                {
                    Ok(handle) => workers.push(handle),
                    Err(_) => {
                        // Spawn failed (resource exhaustion): undo the
                        // accounting; the stream drops and the client
                        // sees a close.
                        telemetry.connections_active.sub(1);
                        active.fetch_sub(1, Ordering::SeqCst);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(1)),
        }
    }
    for w in workers {
        let _ = w.join();
    }
    if let Some(reg) = &registry {
        reg.journal().record(e2nvm_telemetry::Event::ServerStopped {
            connections_served: served,
        });
    }
    served
}

/// Send a BUSY error frame (best effort) and close.
pub(crate) fn reject_busy(mut stream: TcpStream) {
    let mut out = Vec::new();
    encode_response(
        &Response::Error {
            status: Status::Busy,
            retired: 0,
            message: "connection limit reached".into(),
        },
        None,
        &mut out,
    );
    let _ = stream.write_all(&out);
}

/// Everything one connection thread needs.
struct ConnCtx {
    exec: ExecCtx,
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    max_frame_body: usize,
    read_timeout: Duration,
}

impl ConnCtx {
    fn run(mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        self.serve_connection(stream);
        self.exec.telemetry.connections_active.sub(1);
        self.active.fetch_sub(1, Ordering::SeqCst);
    }

    fn serve_connection(&mut self, mut stream: TcpStream) {
        if stream.set_read_timeout(Some(self.read_timeout)).is_err() {
            return;
        }
        let mut decoder = FrameDecoder::new(self.max_frame_body);
        let mut rdbuf = vec![0u8; 16 * 1024];
        let mut outbuf: Vec<u8> = Vec::with_capacity(4096);
        let mut items: Vec<Work> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                // Everything received before shutdown was answered at
                // the end of its read batch; nothing is in flight.
                return;
            }
            let n = match stream.read(&mut rdbuf) {
                Ok(0) => return, // peer closed
                Ok(n) => n,
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    continue;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return,
            };
            self.exec.telemetry.bytes_read.add(n as u64);
            decoder.extend(&rdbuf[..n]);
            // One read's worth of frames = one batch: collect, execute
            // in order, flush once.
            items.clear();
            let end = collect_work(&mut decoder, &mut items);
            // The flush hook gives streamed scans bounded memory: each
            // emitted chunk may push the buffer to the socket instead
            // of accumulating an arbitrarily large response. Dispatch
            // only invokes it at ack-safe points (after its own commit
            // barrier), so the no-acked-loss contract holds.
            let telemetry = self.exec.telemetry.clone();
            let mut early_flush = |outbuf: &mut Vec<u8>| {
                telemetry.bytes_written.add(outbuf.len() as u64);
                stream.write_all(outbuf)?;
                outbuf.clear();
                Ok(())
            };
            let outcome =
                self.exec
                    .exec_batch_flushing(items.drain(..), &mut outbuf, Some(&mut early_flush));
            if outcome.shutdown {
                self.shutdown.store(true, Ordering::SeqCst);
            }
            if !outbuf.is_empty() {
                self.exec.telemetry.bytes_written.add(outbuf.len() as u64);
                if stream.write_all(&outbuf).is_err() {
                    return;
                }
                outbuf.clear();
            }
            if outcome.close || end == CollectEnd::Fatal {
                return;
            }
        }
    }
}
