//! Thin epoll + eventfd bindings for the reactor (Linux only).
//!
//! The vendored offline dependency set has no `libc` crate, so the
//! handful of symbols the reactor needs are declared here directly —
//! std already links the platform libc, these just name symbols it
//! exports. Everything is wrapped in [`Poller`] / [`Waker`] so the
//! reactor proper never touches a raw syscall, and ownership of the
//! file descriptors rides on [`OwnedFd`] (closed on drop, never
//! leaked, never double-closed).
//!
//! Level-triggered mode is used throughout: a readiness bit stays set
//! until the condition is consumed, which is what lets the reactor
//! stop reading a backpressured connection (by dropping its read
//! interest) and later resume exactly where the kernel buffer left
//! off, with no edge to lose.

#![cfg(target_os = "linux")]

use std::ffi::c_int;
use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::sync::Arc;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_NONBLOCK: c_int = 0o4000;
const EFD_CLOEXEC: c_int = 0o2000000;

/// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel
/// ABI packs it to 12 bytes; other architectures use natural layout.
#[repr(C)]
#[cfg_attr(target_arch = "x86_64", repr(packed))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// One readiness notification, with the token the fd was registered
/// under and the conditions that fired.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PollerEvent {
    /// The `token` passed to [`Poller::add`] / [`Poller::modify`].
    pub token: u64,
    /// Readable — includes hangup/error conditions, which surface as a
    /// zero-byte or failing read so the connection teardown path is
    /// the same as a clean EOF.
    pub readable: bool,
    /// Writable.
    pub writable: bool,
}

/// A level-triggered epoll instance.
pub(crate) struct Poller {
    epfd: OwnedFd,
    buf: Vec<EpollEvent>,
}

impl Poller {
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(Self {
            // SAFETY: epoll_create1 returned a fresh, owned descriptor.
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(
        &self,
        op: c_int,
        fd: RawFd,
        token: u64,
        readable: bool,
        writable: bool,
    ) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: (if readable { EPOLLIN | EPOLLRDHUP } else { 0 })
                | (if writable { EPOLLOUT } else { 0 }),
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` under `token` with the given interest set.
    pub fn add(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Change the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: RawFd, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Deregister `fd`. Closing an fd deregisters it implicitly, but
    /// the reactor removes first so an event batch already fetched can
    /// never race a slot that was reused for a new connection.
    pub fn remove(&self, fd: RawFd) -> io::Result<()> {
        // The event argument must be non-null on pre-2.6.9 kernels;
        // passing one unconditionally costs nothing.
        let mut ev = EpollEvent { events: 0, data: 0 };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), EPOLL_CTL_DEL, fd, &mut ev) })?;
        Ok(())
    }

    /// Block until readiness or `timeout_ms` (negative = forever),
    /// appending one [`PollerEvent`] per ready fd to `out`. A signal
    /// interruption is reported as zero events, not an error.
    pub fn wait(&mut self, out: &mut Vec<PollerEvent>, timeout_ms: i32) -> io::Result<usize> {
        let n = unsafe {
            epoll_wait(
                self.epfd.as_raw_fd(),
                self.buf.as_mut_ptr(),
                self.buf.len() as c_int,
                timeout_ms,
            )
        };
        let n = match cvt(n) {
            Ok(n) => n as usize,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in &self.buf[..n] {
            // Copy out of the (possibly packed) struct before use —
            // references into packed fields are unaligned.
            let ev = *ev;
            out.push(PollerEvent {
                token: ev.data,
                readable: ev.events & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                writable: ev.events & (EPOLLOUT | EPOLLHUP | EPOLLERR) != 0,
            });
        }
        // Saturated event buffer: double it so a 10k-connection burst
        // is drained in O(log n) waits rather than 1024 at a time.
        if n == self.buf.len() {
            self.buf.resize(n * 2, EpollEvent { events: 0, data: 0 });
        }
        Ok(n)
    }
}

/// Wakes a [`Poller::wait`] from any thread, via an eventfd registered
/// with the poller. Clone freely: all clones share the one fd.
#[derive(Debug, Clone)]
pub(crate) struct Waker {
    fd: Arc<OwnedFd>,
}

impl Waker {
    pub fn new() -> io::Result<Self> {
        let fd = cvt(unsafe { eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC) })?;
        Ok(Self {
            // SAFETY: eventfd returned a fresh, owned descriptor.
            fd: Arc::new(unsafe { OwnedFd::from_raw_fd(fd) }),
        })
    }

    /// The fd to register (readable) with the poller.
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd.as_raw_fd()
    }

    /// Make the next (or current) `wait` return. Best-effort and
    /// non-blocking: a saturated counter already guarantees a wakeup.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd.as_raw_fd(), one.to_ne_bytes().as_ptr(), 8) };
    }

    /// Consume pending wakeups so level-triggered readiness clears.
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
    }
}
