//! The wire format: frame layout, opcodes, status codes, and the
//! incremental [`FrameDecoder`].
//!
//! This module is the single source of truth for the byte layout
//! documented in `PROTOCOL.md`; the server and the client both encode
//! and decode exclusively through it. Every frame — request or
//! response — is:
//!
//! ```text
//! offset  size  field
//! 0       4     body_len  u32 LE, bytes after the 8-byte header
//! 4       1     magic     0xE2
//! 5       1     version   0x02
//! 6       1     code      request: opcode · response: status
//! 7       1     aux       request: 0x00 (reserved) · response: echoed opcode
//! 8       ...   body      opcode/status-specific payload
//! ```
//!
//! Integers are little-endian throughout. The decoder distinguishes
//! **framing-level** violations (bad magic, oversized `body_len`) —
//! after which the byte stream cannot be trusted and the connection
//! must close — from **frame-level** violations (unknown opcode, bad
//! body shape), after which framing is still intact and the connection
//! survives. See [`FrameError::is_fatal`].

use e2nvm_kvstore::WearSummary;
use std::fmt;

/// Protocol magic byte, fixed forever (frames from anything that is
/// not an e2nvm peer are rejected on byte 4).
pub const MAGIC: u8 = 0xE2;

/// Current protocol version. Bumped only for incompatible layout
/// changes; see the versioning rules in `PROTOCOL.md`. Version 2
/// reshaped the `HEALTH` response body (32 → 40 bytes, adding
/// `retired_physical`).
pub const VERSION: u8 = 0x02;

/// Size of the fixed frame header in bytes.
pub const HEADER_LEN: usize = 8;

/// Default cap on `body_len` (1 MiB). Servers may configure a lower
/// cap; frames above it are answered with [`Status::FrameTooLarge`].
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

/// The `body_len` cap a *response* receiver should enforce. A
/// SCAN_STREAM chunk always carries at least one entry, so a single
/// stored value of the maximum PUT size (`DEFAULT_MAX_BODY - 8` value
/// bytes) plus the chunk envelope (continuation byte, count, key,
/// length) can exceed [`DEFAULT_MAX_BODY`] by a few bytes; this
/// constant adds that envelope slack. Servers configured with a larger
/// request cap need correspondingly larger client caps.
pub const MAX_RESPONSE_BODY: usize = DEFAULT_MAX_BODY + 32;

/// Request opcodes (byte 6 of a request frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Liveness probe; empty body, empty OK response.
    Ping = 0x00,
    /// Read one key. Body: `key u64`.
    Get = 0x01,
    /// Insert or update one key. Body: `key u64` + value bytes.
    Put = 0x02,
    /// Delete one key. Body: `key u64`.
    Delete = 0x03,
    /// Range scan. Body: `lo u64, hi u64, limit u32` (0 = unlimited).
    Scan = 0x04,
    /// Device + store statistics snapshot (JSON text response).
    Stats = 0x05,
    /// Telemetry exposition (Prometheus text response).
    Metrics = 0x06,
    /// Force durable state to disk: snapshot + WAL fsync. Empty body;
    /// the OK response carries the snapshot bytes written as a `u64`
    /// (0 when the server runs without persistence).
    Flush = 0x07,
    /// Wear/health summary. Empty body; the OK response carries a
    /// fixed 40-byte body (`keys`, `free_segments`, `retired_segments`,
    /// `retired_physical`, `total_segments`, all `u64` LE) — cheap
    /// enough for a cluster health prober to poll every few hundred
    /// milliseconds, unlike the METRICS text exposition.
    /// `retired_physical` counts the physical slots quarantined by the
    /// memory controllers — the device-side ground truth, which can
    /// only be reported because retirement is keyed on
    /// `PhysicalSegment` ids end to end.
    Health = 0x08,
    /// Streaming range scan. Same 20-byte body as [`Opcode::Scan`]
    /// (`lo u64, hi u64, limit u32`, 0 = unlimited), but the server
    /// answers with a *sequence* of chunk frames — each a bounded
    /// slice of the result prefixed by a continuation byte — instead
    /// of one response frame, so arbitrarily large ranges fit under
    /// the frame cap with bounded peak memory on both sides.
    ScanStream = 0x09,
    /// Ask the server to shut down gracefully. Empty body.
    Shutdown = 0x7F,
}

impl Opcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0x00 => Opcode::Ping,
            0x01 => Opcode::Get,
            0x02 => Opcode::Put,
            0x03 => Opcode::Delete,
            0x04 => Opcode::Scan,
            0x05 => Opcode::Stats,
            0x06 => Opcode::Metrics,
            0x07 => Opcode::Flush,
            0x08 => Opcode::Health,
            0x09 => Opcode::ScanStream,
            0x7F => Opcode::Shutdown,
            _ => return None,
        })
    }

    /// Stable lowercase name, used as the `op` telemetry label.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::Ping => "ping",
            Opcode::Get => "get",
            Opcode::Put => "put",
            Opcode::Delete => "delete",
            Opcode::Scan => "scan",
            Opcode::Stats => "stats",
            Opcode::Metrics => "metrics",
            Opcode::Flush => "flush",
            Opcode::Health => "health",
            Opcode::ScanStream => "scan_stream",
            Opcode::Shutdown => "shutdown",
        }
    }

    /// Every defined opcode, in wire order.
    pub const ALL: [Opcode; 11] = [
        Opcode::Ping,
        Opcode::Get,
        Opcode::Put,
        Opcode::Delete,
        Opcode::Scan,
        Opcode::Stats,
        Opcode::Metrics,
        Opcode::Flush,
        Opcode::Health,
        Opcode::ScanStream,
        Opcode::Shutdown,
    ];
}

/// Response status codes (byte 6 of a response frame).
///
/// `0x0x` are store-level outcomes, `0x1x` protocol violations, `0x2x`
/// server conditions. Error responses (everything except [`Status::Ok`]
/// and [`Status::NotFound`]) carry a `retired u64` + UTF-8 detail body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Status {
    /// Success; body shape depends on the echoed opcode.
    Ok = 0x00,
    /// GET/DELETE on a key that is not present. Empty body.
    NotFound = 0x01,
    /// The store is degraded: worn-out segments were retired and the
    /// shrunken pool ran dry ([`e2nvm_kvstore::StoreError::Degraded`]).
    /// Reads still work; this write did not. `retired` carries the
    /// retired-segment count.
    Degraded = 0x02,
    /// The engine's address pool is depleted
    /// ([`e2nvm_core::E2Error::PoolDepleted`] surfaced through the
    /// engine error channel). `retired` carries the count.
    PoolDepleted = 0x03,
    /// The store is full ([`e2nvm_kvstore::StoreError::OutOfSpace`]).
    OutOfSpace = 0x04,
    /// Any other store/engine/device error; detail text in the body.
    StoreError = 0x05,
    /// A legacy single-frame SCAN matched more bytes than fit under
    /// the frame cap. The detail text points at SCAN_STREAM, which has
    /// no such ceiling. Streaming scans never raise this.
    ScanTooLarge = 0x06,
    /// The frame violated the protocol at the framing level (bad magic)
    /// or the body could not be parsed for its opcode.
    Malformed = 0x10,
    /// The request's version byte is not supported; detail names the
    /// supported version.
    UnsupportedVersion = 0x11,
    /// The opcode byte is not defined in this version.
    UnknownOpcode = 0x12,
    /// `body_len` exceeded the server's configured cap.
    FrameTooLarge = 0x13,
    /// The connection limit is reached; sent once, then the server
    /// closes the connection.
    Busy = 0x20,
    /// The server is draining for shutdown and no longer accepts work.
    ShuttingDown = 0x21,
}

impl Status {
    /// Decode a status byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        Some(match b {
            0x00 => Status::Ok,
            0x01 => Status::NotFound,
            0x02 => Status::Degraded,
            0x03 => Status::PoolDepleted,
            0x04 => Status::OutOfSpace,
            0x05 => Status::StoreError,
            0x06 => Status::ScanTooLarge,
            0x10 => Status::Malformed,
            0x11 => Status::UnsupportedVersion,
            0x12 => Status::UnknownOpcode,
            0x13 => Status::FrameTooLarge,
            0x20 => Status::Busy,
            0x21 => Status::ShuttingDown,
            _ => return None,
        })
    }

    /// Stable lowercase name, used as the `status` telemetry label.
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::NotFound => "not_found",
            Status::Degraded => "degraded",
            Status::PoolDepleted => "pool_depleted",
            Status::OutOfSpace => "out_of_space",
            Status::StoreError => "store_error",
            Status::ScanTooLarge => "scan_too_large",
            Status::Malformed => "malformed",
            Status::UnsupportedVersion => "unsupported_version",
            Status::UnknownOpcode => "unknown_opcode",
            Status::FrameTooLarge => "frame_too_large",
            Status::Busy => "busy",
            Status::ShuttingDown => "shutting_down",
        }
    }
}

/// A parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Read `key`.
    Get {
        /// Key to read.
        key: u64,
    },
    /// Insert or update `key` with `value`.
    Put {
        /// Key to write.
        key: u64,
        /// Value bytes (placed by the E2-NVM engine on the server).
        value: Vec<u8>,
    },
    /// Delete `key`.
    Delete {
        /// Key to delete.
        key: u64,
    },
    /// All pairs with `lo <= key <= hi`, at most `limit` (0 = all).
    Scan {
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound.
        hi: u64,
        /// Maximum entries returned; 0 means unlimited.
        limit: u32,
    },
    /// Like [`Request::Scan`], but answered as a stream of bounded
    /// chunk frames (see [`Response::ScanChunk`]).
    ScanStream {
        /// Inclusive lower key bound.
        lo: u64,
        /// Inclusive upper key bound.
        hi: u64,
        /// Maximum entries returned across all chunks; 0 = unlimited.
        limit: u32,
    },
    /// Store + device statistics snapshot.
    Stats,
    /// Telemetry exposition.
    Metrics,
    /// Snapshot + WAL fsync on demand.
    Flush,
    /// Wear/health summary probe.
    Health,
    /// Graceful server shutdown.
    Shutdown,
}

impl Request {
    /// The opcode this request encodes to.
    pub fn opcode(&self) -> Opcode {
        match self {
            Request::Ping => Opcode::Ping,
            Request::Get { .. } => Opcode::Get,
            Request::Put { .. } => Opcode::Put,
            Request::Delete { .. } => Opcode::Delete,
            Request::Scan { .. } => Opcode::Scan,
            Request::ScanStream { .. } => Opcode::ScanStream,
            Request::Stats => Opcode::Stats,
            Request::Metrics => Opcode::Metrics,
            Request::Flush => Opcode::Flush,
            Request::Health => Opcode::Health,
            Request::Shutdown => Opcode::Shutdown,
        }
    }
}

/// A parsed response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// OK for PING.
    Pong,
    /// OK for GET: the value bytes.
    Value(
        /// The stored value.
        Vec<u8>,
    ),
    /// GET/DELETE missed.
    NotFound,
    /// OK for PUT.
    Stored,
    /// OK for DELETE: whether the key existed.
    Deleted(
        /// True when the key was present and removed.
        bool,
    ),
    /// OK for SCAN: the matching pairs in key order.
    Entries(
        /// `(key, value)` pairs, ascending by key.
        Vec<(u64, Vec<u8>)>,
    ),
    /// One OK chunk of a SCAN_STREAM response. A streaming scan is
    /// answered with one or more of these, contiguous and in key
    /// order; the stream ends at the first chunk with `more == false`
    /// (or at an error frame echoing SCAN_STREAM, which is terminal).
    ScanChunk {
        /// True when at least one more chunk follows this one.
        more: bool,
        /// This chunk's `(key, value)` pairs, ascending by key.
        entries: Vec<(u64, Vec<u8>)>,
    },
    /// OK for STATS: a JSON document.
    Stats(
        /// JSON text (see `PROTOCOL.md` for the schema).
        String,
    ),
    /// OK for METRICS: Prometheus text exposition.
    Metrics(
        /// Prometheus text exposition format.
        String,
    ),
    /// OK for FLUSH: snapshot bytes written to disk (0 when the
    /// server runs without persistence).
    Flushed(
        /// Snapshot bytes written by the flush.
        u64,
    ),
    /// OK for HEALTH: the store's wear summary.
    Health(
        /// Live keys plus free/retired/total segment counters.
        WearSummary,
    ),
    /// OK for SHUTDOWN: the server acknowledged and is draining.
    ShutdownAck,
    /// Any non-OK status.
    Error {
        /// The wire status.
        status: Status,
        /// Retired-segment count for [`Status::Degraded`] /
        /// [`Status::PoolDepleted`]; 0 otherwise.
        retired: u64,
        /// Human-readable detail (may be empty).
        message: String,
    },
}

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// Byte 4 was not [`MAGIC`]: the stream is not speaking this
    /// protocol (or framing was lost). Fatal.
    BadMagic(
        /// The byte found where [`MAGIC`] was expected.
        u8,
    ),
    /// `body_len` exceeds the configured cap. Fatal (the peer would
    /// have to be trusted for the skip length).
    TooLarge {
        /// The oversized `body_len` from the header.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The version byte is not [`VERSION`]. Framing is intact but
    /// semantics are unknown; the server answers and closes.
    BadVersion(
        /// The unsupported version byte.
        u8,
    ),
    /// The opcode byte is undefined. Non-fatal: framing is intact.
    UnknownOpcode(
        /// The undefined opcode byte.
        u8,
    ),
    /// The status byte of a response is undefined. Non-fatal.
    UnknownStatus(
        /// The undefined status byte.
        u8,
    ),
    /// The reserved `aux` byte of a request was nonzero. Non-fatal.
    NonzeroReserved(
        /// The nonzero byte found in the reserved slot.
        u8,
    ),
    /// The body did not parse for its opcode/status. Non-fatal.
    BadBody(
        /// What was wrong, for the error frame's detail text.
        &'static str,
    ),
}

impl FrameError {
    /// Whether the byte stream can still be trusted after this error.
    /// Fatal errors require closing the connection; non-fatal ones are
    /// answered with an error frame and the connection continues.
    pub fn is_fatal(&self) -> bool {
        matches!(
            self,
            FrameError::BadMagic(_) | FrameError::TooLarge { .. } | FrameError::BadVersion(_)
        )
    }

    /// The wire status an error frame for this error carries.
    pub fn status(&self) -> Status {
        match self {
            FrameError::BadMagic(_) | FrameError::NonzeroReserved(_) | FrameError::BadBody(_) => {
                Status::Malformed
            }
            FrameError::TooLarge { .. } => Status::FrameTooLarge,
            FrameError::BadVersion(_) => Status::UnsupportedVersion,
            FrameError::UnknownOpcode(_) | FrameError::UnknownStatus(_) => Status::UnknownOpcode,
        }
    }
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic(b) => write!(f, "bad magic byte 0x{b:02X} (expected 0xE2)"),
            FrameError::TooLarge { len, max } => {
                write!(f, "frame body of {len} bytes exceeds the {max}-byte cap")
            }
            FrameError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (supported: {VERSION})")
            }
            FrameError::UnknownOpcode(b) => write!(f, "unknown opcode 0x{b:02X}"),
            FrameError::UnknownStatus(b) => write!(f, "unknown status 0x{b:02X}"),
            FrameError::NonzeroReserved(b) => {
                write!(f, "reserved request byte must be 0, got 0x{b:02X}")
            }
            FrameError::BadBody(what) => write!(f, "malformed body: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A decoded-but-unparsed frame: header fields plus the raw body,
/// borrowed straight from the decoder's buffer — decoding a frame
/// copies nothing. The borrow ends at the decoder's next
/// [`FrameDecoder::next_frame`] / [`FrameDecoder::extend`] call;
/// parse (or copy) the body before then.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawFrame<'a> {
    /// Byte 6: opcode (requests) or status (responses).
    pub code: u8,
    /// Byte 7: reserved (requests) or echoed opcode (responses).
    pub aux: u8,
    /// The body bytes after the header.
    pub body: &'a [u8],
}

/// Whether a response frame is a **non-terminal** SCAN_STREAM chunk —
/// i.e. more frames answering the *same* request follow. Everything
/// else (final chunks, plain responses, error frames — including
/// errors mid-stream) is terminal. This is the one-line test that
/// lets a pipelined receiver count completed *requests* rather than
/// frames, without parsing bodies.
pub fn is_continuation(frame: &RawFrame<'_>) -> bool {
    frame.code == Status::Ok as u8
        && frame.aux == Opcode::ScanStream as u8
        && frame.body.first() == Some(&1)
}

fn put_header(out: &mut Vec<u8>, body_len: usize, code: u8, aux: u8) {
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    out.push(MAGIC);
    out.push(VERSION);
    out.push(code);
    out.push(aux);
}

/// Encode a request frame onto `out`.
pub fn encode_request(req: &Request, out: &mut Vec<u8>) {
    let op = req.opcode() as u8;
    match req {
        Request::Ping
        | Request::Stats
        | Request::Metrics
        | Request::Flush
        | Request::Health
        | Request::Shutdown => {
            put_header(out, 0, op, 0);
        }
        Request::Get { key } | Request::Delete { key } => {
            put_header(out, 8, op, 0);
            out.extend_from_slice(&key.to_le_bytes());
        }
        Request::Put { key, value } => {
            put_header(out, 8 + value.len(), op, 0);
            out.extend_from_slice(&key.to_le_bytes());
            out.extend_from_slice(value);
        }
        Request::Scan { lo, hi, limit } | Request::ScanStream { lo, hi, limit } => {
            put_header(out, 20, op, 0);
            out.extend_from_slice(&lo.to_le_bytes());
            out.extend_from_slice(&hi.to_le_bytes());
            out.extend_from_slice(&limit.to_le_bytes());
        }
    }
}

/// Encode a response frame onto `out`. `echo` is the opcode of the
/// request being answered (or `None` for errors raised before any
/// opcode was read, e.g. a bad-magic reject or a busy greeting).
pub fn encode_response(resp: &Response, echo: Option<Opcode>, out: &mut Vec<u8>) {
    let aux = echo.map_or(0, |op| op as u8);
    match resp {
        Response::Pong | Response::Stored | Response::ShutdownAck => {
            put_header(out, 0, Status::Ok as u8, aux);
        }
        Response::NotFound => put_header(out, 0, Status::NotFound as u8, aux),
        Response::Value(v) => {
            put_header(out, v.len(), Status::Ok as u8, aux);
            out.extend_from_slice(v);
        }
        Response::Deleted(existed) => {
            put_header(out, 1, Status::Ok as u8, aux);
            out.push(u8::from(*existed));
        }
        Response::Entries(entries) => {
            let body_len = 4 + entries.iter().map(|(_, v)| 12 + v.len()).sum::<usize>();
            put_header(out, body_len, Status::Ok as u8, aux);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
        }
        Response::ScanChunk { more, entries } => {
            let body_len = 5 + entries.iter().map(|(_, v)| 12 + v.len()).sum::<usize>();
            put_header(out, body_len, Status::Ok as u8, aux);
            out.push(u8::from(*more));
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (k, v) in entries {
                out.extend_from_slice(&k.to_le_bytes());
                out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                out.extend_from_slice(v);
            }
        }
        Response::Stats(text) | Response::Metrics(text) => {
            put_header(out, text.len(), Status::Ok as u8, aux);
            out.extend_from_slice(text.as_bytes());
        }
        Response::Flushed(bytes) => {
            put_header(out, 8, Status::Ok as u8, aux);
            out.extend_from_slice(&bytes.to_le_bytes());
        }
        Response::Health(wear) => {
            put_header(out, 40, Status::Ok as u8, aux);
            out.extend_from_slice(&wear.keys.to_le_bytes());
            out.extend_from_slice(&wear.free_segments.to_le_bytes());
            out.extend_from_slice(&wear.retired_segments.to_le_bytes());
            out.extend_from_slice(&wear.retired_physical.to_le_bytes());
            out.extend_from_slice(&wear.total_segments.to_le_bytes());
        }
        Response::Error {
            status,
            retired,
            message,
        } => {
            put_header(out, 8 + message.len(), *status as u8, aux);
            out.extend_from_slice(&retired.to_le_bytes());
            out.extend_from_slice(message.as_bytes());
        }
    }
}

/// Encode one SCAN_STREAM chunk frame — byte-identical to
/// `encode_response(&Response::ScanChunk { .. }, Some(Opcode::ScanStream), out)`
/// without moving the entries into a `Response`. The server's chunk
/// producer encodes each page straight from its scratch buffer.
pub fn encode_scan_chunk(more: bool, entries: &[(u64, Vec<u8>)], out: &mut Vec<u8>) {
    let body_len = 5 + entries.iter().map(|(_, v)| 12 + v.len()).sum::<usize>();
    put_header(out, body_len, Status::Ok as u8, Opcode::ScanStream as u8);
    out.push(u8::from(more));
    out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    for (k, v) in entries {
        out.extend_from_slice(&k.to_le_bytes());
        out.extend_from_slice(&(v.len() as u32).to_le_bytes());
        out.extend_from_slice(v);
    }
}

/// Encode an OK response carrying `value` — byte-identical to
/// `encode_response(&Response::Value(value.to_vec()), echo, out)`
/// without materialising the intermediate `Vec`. The server's GET
/// fast path: a cache hit encodes straight from the cached bytes.
pub fn encode_value_frame(value: &[u8], echo: Option<Opcode>, out: &mut Vec<u8>) {
    put_header(
        out,
        value.len(),
        Status::Ok as u8,
        echo.map_or(0, |op| op as u8),
    );
    out.extend_from_slice(value);
}

fn take_u64(body: &[u8], at: usize) -> Option<u64> {
    body.get(at..at + 8)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
}

fn take_u32(body: &[u8], at: usize) -> Option<u32> {
    body.get(at..at + 4)
        .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
}

/// Parse a raw frame as a request.
pub fn parse_request(frame: &RawFrame<'_>) -> Result<Request, FrameError> {
    if frame.aux != 0 {
        return Err(FrameError::NonzeroReserved(frame.aux));
    }
    let op = Opcode::from_u8(frame.code).ok_or(FrameError::UnknownOpcode(frame.code))?;
    let body = frame.body;
    match op {
        Opcode::Ping
        | Opcode::Stats
        | Opcode::Metrics
        | Opcode::Flush
        | Opcode::Health
        | Opcode::Shutdown => {
            if !body.is_empty() {
                return Err(FrameError::BadBody("expected empty body"));
            }
            Ok(match op {
                Opcode::Ping => Request::Ping,
                Opcode::Stats => Request::Stats,
                Opcode::Metrics => Request::Metrics,
                Opcode::Flush => Request::Flush,
                Opcode::Health => Request::Health,
                _ => Request::Shutdown,
            })
        }
        Opcode::Get | Opcode::Delete => {
            if body.len() != 8 {
                return Err(FrameError::BadBody("expected exactly an 8-byte key"));
            }
            let key = take_u64(body, 0).unwrap();
            Ok(if op == Opcode::Get {
                Request::Get { key }
            } else {
                Request::Delete { key }
            })
        }
        Opcode::Put => {
            if body.len() < 8 {
                return Err(FrameError::BadBody("PUT body shorter than its 8-byte key"));
            }
            Ok(Request::Put {
                key: take_u64(body, 0).unwrap(),
                value: body[8..].to_vec(),
            })
        }
        Opcode::Scan | Opcode::ScanStream => {
            if body.len() != 20 {
                return Err(FrameError::BadBody("SCAN body must be exactly 20 bytes"));
            }
            let (lo, hi, limit) = (
                take_u64(body, 0).unwrap(),
                take_u64(body, 8).unwrap(),
                take_u32(body, 16).unwrap(),
            );
            Ok(if op == Opcode::Scan {
                Request::Scan { lo, hi, limit }
            } else {
                Request::ScanStream { lo, hi, limit }
            })
        }
    }
}

/// Parse the `count u32` + `count × (key u64, len u32, value)` entry
/// list shared by SCAN and SCAN_STREAM OK bodies, starting at `at`.
/// Rejects trailing bytes: the list must consume the body exactly.
fn parse_entry_list(body: &[u8], at: usize) -> Result<Vec<(u64, Vec<u8>)>, FrameError> {
    let count = take_u32(body, at).ok_or(FrameError::BadBody("SCAN count truncated"))? as usize;
    let mut entries = Vec::with_capacity(count.min(1024));
    let mut at = at + 4;
    for _ in 0..count {
        let key = take_u64(body, at).ok_or(FrameError::BadBody("SCAN key truncated"))?;
        let len = take_u32(body, at + 8)
            .ok_or(FrameError::BadBody("SCAN value length truncated"))? as usize;
        let value = body
            .get(at + 12..at + 12 + len)
            .ok_or(FrameError::BadBody("SCAN value truncated"))?;
        entries.push((key, value.to_vec()));
        at += 12 + len;
    }
    if at != body.len() {
        return Err(FrameError::BadBody("SCAN body has trailing bytes"));
    }
    Ok(entries)
}

/// Parse a raw frame as a response. The echoed opcode in `aux`
/// determines the body shape of OK responses, which is what makes
/// pipelined responses self-describing.
pub fn parse_response(frame: &RawFrame<'_>) -> Result<Response, FrameError> {
    let status = Status::from_u8(frame.code).ok_or(FrameError::UnknownStatus(frame.code))?;
    let body = frame.body;
    match status {
        Status::Ok => {
            let op = Opcode::from_u8(frame.aux).ok_or(FrameError::UnknownOpcode(frame.aux))?;
            match op {
                Opcode::Ping => Ok(Response::Pong),
                Opcode::Put => Ok(Response::Stored),
                Opcode::Shutdown => Ok(Response::ShutdownAck),
                Opcode::Get => Ok(Response::Value(body.to_vec())),
                Opcode::Delete => match body {
                    [0] => Ok(Response::Deleted(false)),
                    [1] => Ok(Response::Deleted(true)),
                    _ => Err(FrameError::BadBody("DELETE response must be one 0/1 byte")),
                },
                Opcode::Scan => {
                    let entries = parse_entry_list(body, 0)?;
                    Ok(Response::Entries(entries))
                }
                Opcode::ScanStream => {
                    let more = match body.first() {
                        Some(0) => false,
                        Some(1) => true,
                        _ => {
                            return Err(FrameError::BadBody(
                                "SCAN_STREAM continuation byte must be 0 or 1",
                            ))
                        }
                    };
                    let entries = parse_entry_list(body, 1)?;
                    Ok(Response::ScanChunk { more, entries })
                }
                Opcode::Flush => {
                    if body.len() != 8 {
                        return Err(FrameError::BadBody(
                            "FLUSH response must be exactly 8 bytes",
                        ));
                    }
                    Ok(Response::Flushed(take_u64(body, 0).unwrap()))
                }
                Opcode::Health => {
                    if body.len() != 40 {
                        return Err(FrameError::BadBody(
                            "HEALTH response must be exactly 40 bytes",
                        ));
                    }
                    Ok(Response::Health(WearSummary {
                        keys: take_u64(body, 0).unwrap(),
                        free_segments: take_u64(body, 8).unwrap(),
                        retired_segments: take_u64(body, 16).unwrap(),
                        retired_physical: take_u64(body, 24).unwrap(),
                        total_segments: take_u64(body, 32).unwrap(),
                    }))
                }
                Opcode::Stats | Opcode::Metrics => {
                    let text = std::str::from_utf8(body)
                        .map_err(|_| FrameError::BadBody("text body is not UTF-8"))?
                        .to_string();
                    Ok(if op == Opcode::Stats {
                        Response::Stats(text)
                    } else {
                        Response::Metrics(text)
                    })
                }
            }
        }
        Status::NotFound => {
            if !body.is_empty() {
                return Err(FrameError::BadBody("NOT_FOUND body must be empty"));
            }
            Ok(Response::NotFound)
        }
        _ => {
            let retired =
                take_u64(body, 0).ok_or(FrameError::BadBody("error body shorter than 8 bytes"))?;
            let message = std::str::from_utf8(&body[8..])
                .map_err(|_| FrameError::BadBody("error detail is not UTF-8"))?
                .to_string();
            Ok(Response::Error {
                status,
                retired,
                message,
            })
        }
    }
}

/// Incremental frame decoder over a byte stream.
///
/// Feed arbitrarily-sized chunks with [`FrameDecoder::extend`] and
/// drain complete frames with [`FrameDecoder::next_frame`]; frames
/// split across reads (or many frames arriving in one read — the
/// pipelined case) both fall out of the same buffer discipline.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Bytes of `buf` already consumed by returned frames.
    consumed: usize,
    max_body: usize,
}

impl FrameDecoder {
    /// A decoder enforcing `max_body` as the `body_len` cap.
    pub fn new(max_body: usize) -> Self {
        Self {
            buf: Vec::with_capacity(4096),
            consumed: 0,
            max_body,
        }
    }

    /// Append freshly-read bytes.
    pub fn extend(&mut self, chunk: &[u8]) {
        // Reclaim consumed prefix before growing, keeping the buffer
        // bounded by one frame plus one read.
        if self.consumed > 0 && (self.consumed >= 4096 || self.consumed == self.buf.len()) {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
        self.buf.extend_from_slice(chunk);
    }

    /// Bytes buffered but not yet consumed by a returned frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Decode the next complete frame, if one is buffered.
    ///
    /// `Ok(None)` means more bytes are needed. Errors classified fatal
    /// by [`FrameError::is_fatal`] poison the stream: the caller must
    /// stop decoding and close the connection after answering.
    pub fn next_frame(&mut self) -> Result<Option<RawFrame<'_>>, FrameError> {
        let avail = &self.buf[self.consumed..];
        if avail.len() < HEADER_LEN {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes(avail[..4].try_into().unwrap()) as usize;
        let magic = avail[4];
        if magic != MAGIC {
            return Err(FrameError::BadMagic(magic));
        }
        if body_len > self.max_body {
            return Err(FrameError::TooLarge {
                len: body_len,
                max: self.max_body,
            });
        }
        let version = avail[5];
        if version != VERSION {
            return Err(FrameError::BadVersion(version));
        }
        if avail.len() < HEADER_LEN + body_len {
            return Ok(None);
        }
        let (code, aux) = (avail[6], avail[7]);
        let start = self.consumed + HEADER_LEN;
        self.consumed = start + body_len;
        Ok(Some(RawFrame {
            code,
            aux,
            body: &self.buf[start..start + body_len],
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(parse_request(&frame).unwrap(), req);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Get { key: 42 });
        roundtrip_request(Request::Put {
            key: u64::MAX,
            value: vec![1, 2, 3],
        });
        roundtrip_request(Request::Put {
            key: 0,
            value: Vec::new(),
        });
        roundtrip_request(Request::Delete { key: 7 });
        roundtrip_request(Request::Scan {
            lo: 3,
            hi: 9,
            limit: 100,
        });
        roundtrip_request(Request::ScanStream {
            lo: 0,
            hi: u64::MAX,
            limit: 0,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::Metrics);
        roundtrip_request(Request::Flush);
        roundtrip_request(Request::Health);
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn response_roundtrips() {
        let cases: Vec<(Response, Option<Opcode>)> = vec![
            (Response::Pong, Some(Opcode::Ping)),
            (Response::Value(vec![9; 30]), Some(Opcode::Get)),
            (Response::NotFound, Some(Opcode::Get)),
            (Response::Stored, Some(Opcode::Put)),
            (Response::Deleted(true), Some(Opcode::Delete)),
            (Response::Deleted(false), Some(Opcode::Delete)),
            (
                Response::Entries(vec![(1, vec![0xAA; 4]), (2, Vec::new())]),
                Some(Opcode::Scan),
            ),
            (Response::Entries(Vec::new()), Some(Opcode::Scan)),
            (
                Response::ScanChunk {
                    more: true,
                    entries: vec![(1, vec![0xAA; 4]), (2, Vec::new())],
                },
                Some(Opcode::ScanStream),
            ),
            (
                Response::ScanChunk {
                    more: false,
                    entries: Vec::new(),
                },
                Some(Opcode::ScanStream),
            ),
            (
                Response::Stats("{\"writes\":3}".into()),
                Some(Opcode::Stats),
            ),
            (Response::Flushed(0), Some(Opcode::Flush)),
            (Response::Flushed(4096), Some(Opcode::Flush)),
            (
                Response::Health(WearSummary {
                    keys: 512,
                    free_segments: 40,
                    retired_segments: 7,
                    retired_physical: 7,
                    total_segments: 2048,
                }),
                Some(Opcode::Health),
            ),
            (
                Response::Metrics("# HELP x\n".into()),
                Some(Opcode::Metrics),
            ),
            (Response::ShutdownAck, Some(Opcode::Shutdown)),
            (
                Response::Error {
                    status: Status::Degraded,
                    retired: 17,
                    message: "pool dry".into(),
                },
                Some(Opcode::Put),
            ),
            (
                Response::Error {
                    status: Status::Busy,
                    retired: 0,
                    message: String::new(),
                },
                None,
            ),
        ];
        for (resp, echo) in cases {
            let mut bytes = Vec::new();
            encode_response(&resp, echo, &mut bytes);
            let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
            dec.extend(&bytes);
            let frame = dec.next_frame().unwrap().unwrap();
            assert_eq!(parse_response(&frame).unwrap(), resp, "echo {echo:?}");
        }
    }

    #[test]
    fn split_reads_reassemble() {
        let req = Request::Put {
            key: 5,
            value: (0..100u8).collect(),
        };
        let mut bytes = Vec::new();
        encode_request(&req, &mut bytes);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        for b in &bytes[..bytes.len() - 1] {
            dec.extend(std::slice::from_ref(b));
            assert_eq!(dec.next_frame().unwrap(), None);
        }
        dec.extend(&bytes[bytes.len() - 1..]);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(parse_request(&frame).unwrap(), req);
    }

    #[test]
    fn pipelined_frames_in_one_read() {
        let mut bytes = Vec::new();
        for key in 0..10u64 {
            encode_request(&Request::Get { key }, &mut bytes);
        }
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        for key in 0..10u64 {
            let frame = dec.next_frame().unwrap().unwrap();
            assert_eq!(parse_request(&frame).unwrap(), Request::Get { key });
        }
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn bad_magic_is_fatal() {
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(b"GET / HTTP/1.1\r\n");
        let err = dec.next_frame().unwrap_err();
        assert!(matches!(err, FrameError::BadMagic(_)));
        assert!(err.is_fatal());
    }

    #[test]
    fn oversized_frame_is_fatal() {
        let mut bytes = Vec::new();
        put_header(&mut bytes, 1 << 30, Opcode::Put as u8, 0);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let err = dec.next_frame().unwrap_err();
        assert_eq!(
            err,
            FrameError::TooLarge {
                len: 1 << 30,
                max: DEFAULT_MAX_BODY
            }
        );
        assert!(err.is_fatal());
    }

    #[test]
    fn unknown_opcode_is_survivable() {
        let mut bytes = Vec::new();
        put_header(&mut bytes, 0, 0x55, 0);
        let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
        dec.extend(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        let err = parse_request(&frame).unwrap_err();
        assert_eq!(err, FrameError::UnknownOpcode(0x55));
        assert!(!err.is_fatal());
        assert_eq!(err.status(), Status::UnknownOpcode);
    }

    #[test]
    fn wrong_body_sizes_are_survivable() {
        for (op, body_len) in [
            (Opcode::Get, 4usize),
            (Opcode::Delete, 9),
            (Opcode::Scan, 19),
            (Opcode::ScanStream, 19),
            (Opcode::Put, 3),
            (Opcode::Ping, 1),
        ] {
            let mut bytes = Vec::new();
            put_header(&mut bytes, body_len, op as u8, 0);
            bytes.extend(std::iter::repeat(0u8).take(body_len));
            let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
            dec.extend(&bytes);
            let frame = dec.next_frame().unwrap().unwrap();
            let err = parse_request(&frame).unwrap_err();
            assert!(matches!(err, FrameError::BadBody(_)), "{op:?}: {err:?}");
            assert!(!err.is_fatal());
        }
    }

    #[test]
    fn continuation_classification() {
        // Only an OK frame echoing SCAN_STREAM with leading byte 1 is
        // non-terminal; a final chunk, a plain SCAN response, and an
        // error frame echoing SCAN_STREAM are all terminal.
        let chunk = |more: bool| {
            let mut bytes = Vec::new();
            encode_response(
                &Response::ScanChunk {
                    more,
                    entries: vec![(7, vec![1, 2])],
                },
                Some(Opcode::ScanStream),
                &mut bytes,
            );
            bytes
        };
        let decode_one = |bytes: &[u8]| {
            let mut dec = FrameDecoder::new(DEFAULT_MAX_BODY);
            dec.extend(bytes);
            let frame = dec.next_frame().unwrap().unwrap();
            (frame.code, frame.aux, frame.body.to_vec())
        };
        let (code, aux, body) = decode_one(&chunk(true));
        assert!(is_continuation(&RawFrame {
            code,
            aux,
            body: &body
        }));
        let (code, aux, body) = decode_one(&chunk(false));
        assert!(!is_continuation(&RawFrame {
            code,
            aux,
            body: &body
        }));
        let mut err = Vec::new();
        encode_response(
            &Response::Error {
                status: Status::ScanTooLarge,
                retired: 0,
                message: "mid-stream".into(),
            },
            Some(Opcode::ScanStream),
            &mut err,
        );
        let (code, aux, body) = decode_one(&err);
        assert!(!is_continuation(&RawFrame {
            code,
            aux,
            body: &body
        }));
    }

    #[test]
    fn opcode_and_status_bytes_roundtrip() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_u8(op as u8), Some(op));
        }
        for s in [
            Status::Ok,
            Status::NotFound,
            Status::Degraded,
            Status::PoolDepleted,
            Status::OutOfSpace,
            Status::StoreError,
            Status::ScanTooLarge,
            Status::Malformed,
            Status::UnsupportedVersion,
            Status::UnknownOpcode,
            Status::FrameTooLarge,
            Status::Busy,
            Status::ShuttingDown,
        ] {
            assert_eq!(Status::from_u8(s as u8), Some(s));
        }
    }
}
