//! Error type for the E2-NVM engine.

use crate::dap::DapError;
use e2nvm_sim::SimError;

/// Errors returned by [`crate::E2Engine`] operations.
#[derive(Debug, Clone, PartialEq)]
pub enum E2Error {
    /// The engine has not been trained yet (call
    /// [`crate::E2Engine::train`]).
    NotTrained,
    /// The dynamic address pool has no free segment left.
    OutOfSpace,
    /// The pool ran dry *and* segments have been permanently retired by
    /// wear-out: the store is in degraded mode with shrunken capacity.
    PoolDepleted {
        /// Number of segments permanently retired so far.
        retired: usize,
    },
    /// The value does not fit in one segment.
    ValueTooLarge {
        /// Bytes supplied.
        len: usize,
        /// Segment capacity.
        segment_bytes: usize,
    },
    /// The key was not found (DELETE/GET on absent key where an error is
    /// expected).
    KeyNotFound(u64),
    /// An underlying device error.
    Sim(SimError),
    /// An address-pool invariant violation.
    Dap(DapError),
    /// Invalid configuration.
    Config(String),
}

impl std::fmt::Display for E2Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            E2Error::NotTrained => write!(f, "engine not trained yet"),
            E2Error::OutOfSpace => write!(f, "no free segments in the dynamic address pool"),
            E2Error::PoolDepleted { retired } => write!(
                f,
                "address pool depleted in degraded mode ({retired} segments retired by wear-out)"
            ),
            E2Error::ValueTooLarge { len, segment_bytes } => write!(
                f,
                "value of {len} bytes exceeds segment size {segment_bytes}"
            ),
            E2Error::KeyNotFound(k) => write!(f, "key {k} not found"),
            E2Error::Sim(e) => write!(f, "device error: {e}"),
            E2Error::Dap(e) => write!(f, "address pool error: {e}"),
            E2Error::Config(msg) => write!(f, "invalid config: {msg}"),
        }
    }
}

impl std::error::Error for E2Error {}

impl From<SimError> for E2Error {
    fn from(e: SimError) -> Self {
        E2Error::Sim(e)
    }
}

impl From<DapError> for E2Error {
    fn from(e: DapError) -> Self {
        E2Error::Dap(e)
    }
}

/// Result alias for engine operations.
pub type Result<T> = std::result::Result<T, E2Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: E2Error = SimError::InvalidConfig("x".into()).into();
        assert!(matches!(e, E2Error::Sim(_)));
        assert!(e.to_string().contains("device error"));
        let e: E2Error = DapError::AlreadyFree(e2nvm_sim::LogicalSegment(3)).into();
        assert!(e.to_string().contains("address pool"));
        assert!(E2Error::OutOfSpace.to_string().contains("free segments"));
        assert!(E2Error::PoolDepleted { retired: 3 }
            .to_string()
            .contains("3 segments retired"));
        assert!(E2Error::ValueTooLarge {
            len: 10,
            segment_bytes: 4
        }
        .to_string()
        .contains("10"));
    }
}
