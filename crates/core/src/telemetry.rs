//! Engine-level telemetry sink.
//!
//! [`EngineTelemetry`] bundles the placement-path metric handles an
//! [`crate::E2Engine`] updates while serving: a prediction-latency
//! histogram, placement/fallback/exhaustion counters, per-cluster DAP
//! depth gauges, and the structured event journal shared through the
//! attached [`TelemetryRegistry`]. All hot-path updates are relaxed
//! atomics; with the `telemetry` feature off every call compiles away.
//!
//! The per-cluster gauges are rebuilt on every model install (K can
//! change across retrains), labeled `{shard="<s>",cluster="<c>"}`.

use e2nvm_telemetry::{Counter, Event, Gauge, Histogram, TelemetryRegistry};

/// Upper bounds for the padding+prediction latency histogram (ns).
const PREDICTION_BOUNDS: [u64; 8] = [500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000, 1_000_000];

/// Metric handles for one engine (one shard).
#[derive(Debug, Clone)]
pub struct EngineTelemetry {
    registry: Option<TelemetryRegistry>,
    shard: usize,
    /// Successful placements (DAP pops) performed.
    pub placements: Counter,
    /// Placements that fell back past the predicted cluster.
    pub fallbacks: Counter,
    /// Times the predicted cluster's free list was found empty.
    pub exhaustions: Counter,
    /// Models installed (synchronous trains and background swaps).
    pub retrains: Counter,
    /// Write re-programs issued after transient device failures.
    pub write_retries: Counter,
    /// Segments permanently retired from the pool by wear-out.
    pub retired_segments: Counter,
    /// Padding + model-prediction latency per placement (ns).
    pub prediction_latency_ns: Histogram,
    /// One gauge per cluster: current DAP free-list depth.
    cluster_depth: Vec<Gauge>,
}

impl Default for EngineTelemetry {
    fn default() -> Self {
        Self::disconnected()
    }
}

impl EngineTelemetry {
    /// Handles not attached to any registry (the initial state of every
    /// engine).
    pub fn disconnected() -> Self {
        EngineTelemetry {
            registry: None,
            shard: 0,
            placements: Counter::disconnected(),
            fallbacks: Counter::disconnected(),
            exhaustions: Counter::disconnected(),
            retrains: Counter::disconnected(),
            write_retries: Counter::disconnected(),
            retired_segments: Counter::disconnected(),
            prediction_latency_ns: Histogram::disconnected(&PREDICTION_BOUNDS),
            cluster_depth: Vec::new(),
        }
    }

    /// Register the engine metric family on `registry`, labeled with
    /// this engine's `shard` index. Cluster-depth gauges are created
    /// lazily by [`EngineTelemetry::refresh_clusters`].
    pub fn register(registry: &TelemetryRegistry, shard: usize) -> Self {
        let shard_label = shard.to_string();
        let labels: [(&str, &str); 1] = [("shard", &shard_label)];
        let c = |name: &str, help: &str| registry.counter_with_labels(name, help, &labels);
        EngineTelemetry {
            placements: c(
                "e2nvm_engine_placements_total",
                "Values placed via the dynamic address pool",
            ),
            fallbacks: c(
                "e2nvm_engine_fallback_placements_total",
                "Placements that fell back past the predicted cluster",
            ),
            exhaustions: c(
                "e2nvm_engine_cluster_exhausted_total",
                "Placements that found the predicted cluster empty",
            ),
            retrains: c(
                "e2nvm_engine_retrains_total",
                "Models installed (initial training and retrains)",
            ),
            write_retries: c(
                "e2nvm_engine_write_retries_total",
                "Write re-programs after transient device failures",
            ),
            retired_segments: c(
                "e2nvm_engine_retired_segments_total",
                "Segments permanently retired from the pool by wear-out",
            ),
            prediction_latency_ns: registry.histogram_with_labels(
                "e2nvm_engine_prediction_latency_ns",
                "Padding + cluster prediction latency per placement (ns)",
                &PREDICTION_BOUNDS,
                &labels,
            ),
            cluster_depth: Vec::new(),
            registry: Some(registry.clone()),
            shard,
        }
    }

    /// The shard index this sink was registered with.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Record a structured event on the attached journal (no-op while
    /// disconnected).
    pub fn record_event(&self, event: Event) {
        if let Some(registry) = &self.registry {
            registry.journal().record(event);
        }
    }

    /// Observe one padding+prediction latency sample.
    #[inline]
    pub fn observe_prediction(&self, ns: u64) {
        self.prediction_latency_ns.observe(ns);
    }

    /// Account a successful placement: `predicted` is the model's first
    /// choice, `used` the cluster that actually supplied the address.
    pub fn record_placement(&self, predicted: usize, used: usize) {
        self.placements.inc();
        if used != predicted {
            self.exhaustions.inc();
            self.fallbacks.inc();
            self.record_event(Event::ClusterExhausted {
                shard: self.shard,
                cluster: predicted,
            });
            self.record_event(Event::FallbackPlacement {
                shard: self.shard,
                predicted,
                used,
            });
        }
    }

    /// Account a permanent segment retirement: bump the counter and
    /// journal a [`Event::SegmentRetired`] so operators can see the
    /// capacity shrink. `segment` is the shard-local logical id the
    /// engine quarantined; `physical` is the device slot that actually
    /// wore out (they differ under active wear leveling).
    pub fn record_retirement(&self, segment: usize, physical: usize) {
        self.retired_segments.inc();
        self.record_event(Event::SegmentRetired {
            shard: self.shard,
            segment,
            physical,
        });
    }

    /// Update one cluster's free-list depth gauge.
    #[inline]
    pub fn set_cluster_depth(&self, cluster: usize, depth: usize) {
        if let Some(g) = self.cluster_depth.get(cluster) {
            g.set(depth as i64);
        }
    }

    /// Recreate the per-cluster depth gauges for a (possibly new) K and
    /// set them from `occupancy`. Called on every model install.
    pub fn refresh_clusters(&mut self, occupancy: &[usize]) {
        let Some(registry) = &self.registry else {
            return;
        };
        let shard_label = self.shard.to_string();
        self.cluster_depth = occupancy
            .iter()
            .enumerate()
            .map(|(cluster, &depth)| {
                let cluster_label = cluster.to_string();
                let g = registry.gauge_with_labels(
                    "e2nvm_dap_free_segments",
                    "Free segments in one cluster's address pool",
                    &[("shard", &shard_label), ("cluster", &cluster_label)],
                );
                g.set(depth as i64);
                g
            })
            .collect();
    }
}
