//! The E2-NVM engine: the storage layer of the paper's Figure 3, tying
//! together the trained model, the dynamic address pool, the data index,
//! and the NVM device behind its memory controller.
//!
//! * **Write** (Algorithm 1): pad → predict cluster → pop an address
//!   from the DAP → write only the differing bits (the device model
//!   performs the comparison) → update the index.
//! * **Delete** (Algorithm 2): look up the address → drop the index
//!   entry (the "flag bit" lives in DRAM) → re-classify the content and
//!   recycle the address into the DAP.
//! * **Read / Scan**: pure index lookups plus device reads.

use crate::config::E2Config;
use crate::dap::DynamicAddressPool;
use crate::error::{E2Error, Result};
use crate::incremental::IncrementalIndexer;
use crate::model::E2Model;
use crate::padding::Padder;
use crate::telemetry::EngineTelemetry;
use e2nvm_sim::{LogicalSegment, MemoryController, SimError, WriteReport};
use e2nvm_telemetry::{Event, TelemetryRegistry};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap};
use std::ops::RangeBounds;
use std::time::Instant;

/// An index entry: where a key's value lives — which segment, at what
/// byte offset within it (nonzero only for values packed by the
/// batched small-value path), and how long it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    seg: LogicalSegment,
    off: usize,
    len: usize,
}

/// Serving-path counters (prediction overhead, Figure 10's latency
/// comparison).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PredictionStats {
    /// Model predictions performed.
    pub predictions: u64,
    /// Wall-clock nanoseconds spent in padding + prediction.
    pub total_ns: u128,
}

impl PredictionStats {
    /// Mean prediction latency in nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.predictions as f64
        }
    }

    /// Merge another counter block into this one (cross-shard
    /// aggregation).
    pub fn merge(&mut self, other: &PredictionStats) {
        self.predictions += other.predictions;
        self.total_ns += other.total_ns;
    }
}

/// Everything an engine must remember across a restart, in a
/// serialization-friendly shape: the trained model artifact
/// ([`E2Model::to_bytes`]), the permanently retired segments, and the
/// key index. The DAP free lists and `live` reference counts are *not*
/// part of the state — they are derived (free = not retired ∧ not
/// indexed, classified by the restored model), which keeps the
/// persisted format independent of in-memory bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineState {
    /// Serialized model ([`E2Model::to_bytes`]).
    pub model: Vec<u8>,
    /// Permanently retired segments, ascending.
    pub retired: Vec<LogicalSegment>,
    /// Index entries as `(key, segment, byte offset, length)`.
    pub entries: Vec<(u64, LogicalSegment, usize, usize)>,
}

/// The E2-NVM engine.
pub struct E2Engine {
    cfg: E2Config,
    controller: MemoryController,
    model: Option<E2Model>,
    dap: DynamicAddressPool,
    padder: Padder,
    index: BTreeMap<u64, Entry>,
    /// Live-entry counts for segments holding more than one packed
    /// value (written by [`E2Engine::put_many`]). Segments absent from
    /// this map hold exactly one entry; a shared segment is recycled
    /// only once its count reaches zero.
    live: HashMap<LogicalSegment, usize>,
    rng: StdRng,
    prediction: PredictionStats,
    incremental: Option<IncrementalIndexer>,
    telemetry: EngineTelemetry,
}

impl E2Engine {
    /// Create an untrained engine over a controller. The controller's
    /// segment size must match the config.
    pub fn new(controller: MemoryController, cfg: E2Config) -> Result<Self> {
        cfg.validate()?;
        if controller.device().config().segment_bytes != cfg.segment_bytes {
            return Err(E2Error::Config(format!(
                "controller segment size {} != config segment size {}",
                controller.device().config().segment_bytes,
                cfg.segment_bytes
            )));
        }
        let num_segments = controller.num_segments();
        let padder = Padder::new(cfg.padding_location, cfg.padding_type);
        Ok(Self {
            dap: DynamicAddressPool::new(cfg.k, num_segments, cfg.retrain_min_free),
            rng: StdRng::seed_from_u64(cfg.seed),
            model: None,
            padder,
            index: BTreeMap::new(),
            live: HashMap::new(),
            prediction: PredictionStats::default(),
            incremental: None,
            telemetry: EngineTelemetry::disconnected(),
            controller,
            cfg,
        })
    }

    /// Register this engine's metrics (and its controller/device's) on
    /// `registry`, labeled with `shard`, and start feeding them. Safe to
    /// call before or after training; per-cluster gauges appear once a
    /// model is installed.
    pub fn attach_telemetry(&mut self, registry: &TelemetryRegistry, shard: usize) {
        let shard_label = shard.to_string();
        self.controller
            .attach_telemetry(registry, &[("shard", &shard_label)]);
        self.telemetry = EngineTelemetry::register(registry, shard);
        self.telemetry.refresh_clusters(&self.dap.occupancy());
    }

    /// The engine's telemetry sink (disconnected no-op handles until
    /// [`E2Engine::attach_telemetry`] is called).
    pub fn telemetry(&self) -> &EngineTelemetry {
        &self.telemetry
    }

    /// The configuration.
    pub fn config(&self) -> &E2Config {
        &self.cfg
    }

    /// Snapshot the contents of every *free* segment. Before the first
    /// training, every segment is free; afterwards the DAP's membership
    /// table is the source of truth (placements may be made through
    /// [`E2Engine::place_value`] by callers that keep their own index,
    /// e.g. the node stores in `e2nvm-kvstore`, so the key index alone
    /// cannot be trusted here).
    fn free_snapshot(&self) -> Vec<(LogicalSegment, Vec<u8>)> {
        let free: Vec<LogicalSegment> = if self.model.is_some() {
            self.dap.free_segments()
        } else {
            (0..self.controller.num_segments())
                .map(LogicalSegment)
                .filter(|&seg| !self.dap.is_retired(seg))
                .collect()
        };
        free.into_iter()
            .map(|seg| {
                let content = self
                    .controller
                    .peek(seg)
                    .expect("segment in range")
                    .to_vec();
                (seg, content)
            })
            .collect()
    }

    /// Replace the padding strategy. For [`crate::padding::PaddingType::Learned`] the
    /// generator is retrained on the current free-segment contents.
    pub fn set_padding(
        &mut self,
        location: crate::padding::PaddingLocation,
        ptype: crate::padding::PaddingType,
    ) {
        self.cfg.padding_location = location;
        self.cfg.padding_type = ptype;
        self.padder = Padder::new(location, ptype);
        if ptype == crate::padding::PaddingType::Learned && self.model.is_some() {
            let contents: Vec<Vec<u8>> = self.free_snapshot().into_iter().map(|(_, c)| c).collect();
            self.padder.train_learned(&contents, 10, &mut self.rng);
        }
    }

    /// Train (or retrain) the model on the current free-segment contents
    /// and rebuild the dynamic address pool. This is the synchronous
    /// path; see [`crate::retrain`] for the background variant.
    pub fn train(&mut self) -> Result<()> {
        let free = self.free_snapshot();
        if free.is_empty() {
            return Err(E2Error::OutOfSpace);
        }
        let shard = self.telemetry.shard();
        self.telemetry.record_event(Event::RetrainStarted { shard });
        let started = Instant::now();
        let contents: Vec<Vec<u8>> = free.iter().map(|(_, c)| c.clone()).collect();
        let model = E2Model::train(&self.cfg, &contents, &mut self.rng);
        let loss = model.history().train.last().map(|l| f64::from(l.total()));
        self.install_model(model, &free);
        self.telemetry.record_event(Event::RetrainFinished {
            shard,
            loss,
            duration_ms: started.elapsed().as_millis() as u64,
        });
        Ok(())
    }

    /// Train on only the first `initial` segments and map just those
    /// into the address pool — the paper's §4.1.4 incremental indexing
    /// ("starts by indexing a portion of the memory"). Grow coverage
    /// later with [`E2Engine::index_more`].
    pub fn train_partial(&mut self, initial: usize) -> Result<()> {
        let total = self.controller.num_segments();
        if initial == 0 || initial > total {
            return Err(E2Error::Config(format!(
                "train_partial: initial {initial} out of 1..={total}"
            )));
        }
        let indexer = IncrementalIndexer::new(total, initial);
        let free: Vec<(LogicalSegment, Vec<u8>)> = indexer
            .initial_range()
            .map(|seg| {
                let content = self.controller.peek(seg).expect("in range").to_vec();
                (seg, content)
            })
            .collect();
        let contents: Vec<Vec<u8>> = free.iter().map(|(_, c)| c.clone()).collect();
        let model = E2Model::train(&self.cfg, &contents, &mut self.rng);
        self.install_model(model, &free);
        self.incremental = Some(indexer);
        Ok(())
    }

    /// Map up to `count` previously unmapped segments into the DAP
    /// (classified with the current model). Returns how many were
    /// added. A no-op (0) once coverage is complete or when the engine
    /// was fully trained from the start.
    pub fn index_more(&mut self, count: usize) -> Result<usize> {
        let model = self.model.as_ref().ok_or(E2Error::NotTrained)?;
        let Some(indexer) = &mut self.incremental else {
            return Ok(0);
        };
        let new_segments = indexer.take_next(count);
        let contents: Vec<Vec<u8>> = new_segments
            .iter()
            .map(|&seg| self.controller.peek(seg).expect("in range").to_vec())
            .collect();
        let assignments = model.classify_segments(&contents);
        for (&seg, cluster) in new_segments.iter().zip(assignments) {
            self.dap.push(cluster, seg)?;
        }
        Ok(new_segments.len())
    }

    /// Sweep the candidate Ks on the current free contents (SSE elbow +
    /// energy valley, Figure 8) and train with the energy-optimal K.
    /// Returns the chosen K.
    pub fn train_auto_k(&mut self, candidates: &[usize], est_writes: u64) -> Result<usize> {
        let free = self.free_snapshot();
        if free.is_empty() {
            return Err(E2Error::OutOfSpace);
        }
        let contents: Vec<Vec<u8>> = free.iter().map(|(_, c)| c.clone()).collect();
        let selection = crate::kselect::sweep_k(
            &self.cfg,
            &contents,
            candidates,
            &self.controller.device().config().energy.clone(),
            est_writes,
            &mut self.rng,
        );
        self.cfg.k = selection.energy_k;
        let model = E2Model::train(&self.cfg, &contents, &mut self.rng);
        self.install_model(model, &free);
        Ok(selection.energy_k)
    }

    /// Install an externally trained model (from the background
    /// retrainer) and rebuild the DAP against the current free set.
    pub fn install_model_now(&mut self, model: E2Model) {
        let free = self.free_snapshot();
        self.install_model(model, &free);
    }

    fn install_model(&mut self, model: E2Model, free: &[(LogicalSegment, Vec<u8>)]) {
        let contents: Vec<Vec<u8>> = free.iter().map(|(_, c)| c.clone()).collect();
        let assignments = model.classify_segments(&contents);
        let pairs: Vec<(LogicalSegment, usize)> =
            free.iter().map(|(seg, _)| *seg).zip(assignments).collect();
        self.dap.rebuild(model.k(), &pairs);
        // Refresh padding state from the snapshot.
        let total_bits: u64 = contents.iter().map(|c| (c.len() * 8) as u64).sum();
        let ones: u64 = contents
            .iter()
            .map(|c| e2nvm_sim::bitops::popcount(c))
            .sum();
        if total_bits > 0 {
            self.padder
                .set_memory_ratio(ones as f32 / total_bits as f32);
        }
        if self.cfg.padding_type == crate::padding::PaddingType::Learned {
            self.padder.train_learned(&contents, 10, &mut self.rng);
        }
        self.model = Some(model);
        self.telemetry.retrains.inc();
        self.telemetry.refresh_clusters(&self.dap.occupancy());
    }

    /// Whether the model has been trained.
    pub fn is_trained(&self) -> bool {
        self.model.is_some()
    }

    /// Whether any cluster's free list has reached the retraining
    /// threshold (§4.1.4).
    pub fn needs_retrain(&self) -> bool {
        self.model.is_some() && self.dap.below_threshold().is_some()
    }

    /// Low-level placement: choose a free segment for `value`, write it,
    /// and return the segment and the device report. Does not touch the
    /// key index (the KV layer and the benchmarks both build on this).
    pub fn place_value(&mut self, value: &[u8]) -> Result<(LogicalSegment, WriteReport)> {
        self.place_at(0, value)
    }

    /// Like [`E2Engine::place_value`], but writes `value` at a byte
    /// `offset` within the chosen segment, leaving the rest of the
    /// segment's (recycled) content untouched. Integrators that append
    /// records into partially filled segments use this so the untouched
    /// region costs no flips.
    ///
    /// Fault handling (graceful degradation): a transient verify
    /// failure is re-programmed up to
    /// [`E2Config::max_write_retries`] times — each retry only touches
    /// the bits that still differ. A segment that wears out, or keeps
    /// failing after the retries, is permanently retired from the pool
    /// and the placement falls back to the next free address; capacity
    /// shrinks but no write is ever lost. When the pool runs dry *and*
    /// segments have been retired the error is
    /// [`E2Error::PoolDepleted`] rather than plain `OutOfSpace`, so
    /// callers can tell degraded mode from ordinary fill-up.
    pub fn place_at(
        &mut self,
        offset: usize,
        value: &[u8],
    ) -> Result<(LogicalSegment, WriteReport)> {
        if offset + value.len() > self.cfg.segment_bytes {
            return Err(E2Error::ValueTooLarge {
                len: offset + value.len(),
                segment_bytes: self.cfg.segment_bytes,
            });
        }
        let model = self.model.as_ref().ok_or(E2Error::NotTrained)?;
        let t0 = Instant::now();
        let order = model.cluster_order(value, &self.padder, &mut self.rng);
        let pred_ns = t0.elapsed().as_nanos();
        self.prediction.predictions += 1;
        self.prediction.total_ns += pred_ns;
        self.telemetry.observe_prediction(pred_ns as u64);
        let predicted = order.first().copied().unwrap_or(0);
        loop {
            let Some((seg, used)) = self.dap.pop_with_fallback(&order) else {
                let retired = self.dap.retired_count();
                return Err(if retired > 0 {
                    E2Error::PoolDepleted { retired }
                } else {
                    E2Error::OutOfSpace
                });
            };
            let mut attempts = 0usize;
            // Program-and-verify with bounded retry: the device reports
            // a transient failure after keeping some bits stale, so a
            // retry re-programs only what still differs.
            let result = loop {
                match self.controller.write_at(seg, offset, value) {
                    Err(SimError::WriteFailed { .. }) if attempts < self.cfg.max_write_retries => {
                        attempts += 1;
                        self.telemetry.write_retries.inc();
                    }
                    other => break other,
                }
            };
            match result {
                Ok(report) => {
                    self.telemetry.record_placement(predicted, used);
                    self.telemetry
                        .set_cluster_depth(used, self.dap.cluster_len(used));
                    self.padder.observe(value);
                    return Ok((seg, report));
                }
                Err(SimError::SegmentWornOut { .. } | SimError::WriteFailed { .. }) => {
                    // Worn out, or still failing verify after the retry
                    // budget: quarantine the address and fall back.
                    self.retire_segment(seg);
                }
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// Permanently quarantine `seg`: it leaves the address pool for
    /// good, the *physical* slot the dying write actually hit is
    /// quarantined on the controller (so later relocations route around
    /// the dead medium), and the retirement is journaled with both
    /// ids. Idempotent. Calling this from the failed write's error path
    /// is sound because the remap only mutates after *successful*
    /// writes — the failed write's translation is still live.
    fn retire_segment(&mut self, seg: LogicalSegment) {
        if self.dap.retire(seg) {
            let phys = self
                .controller
                .retire(seg)
                .expect("retired logical id must still translate");
            self.telemetry.record_retirement(seg.index(), phys.index());
        }
    }

    /// Preview where [`E2Engine::place_value`] would land `value` and
    /// how many bits the write would flip there, without consuming the
    /// address. Integrators use this to decide between relocating a
    /// node image and updating it in place. Returns `None` when the
    /// pool is empty.
    pub fn preview_placement(&mut self, value: &[u8]) -> Result<Option<(LogicalSegment, u64)>> {
        if value.len() > self.cfg.segment_bytes {
            return Err(E2Error::ValueTooLarge {
                len: value.len(),
                segment_bytes: self.cfg.segment_bytes,
            });
        }
        let model = self.model.as_ref().ok_or(E2Error::NotTrained)?;
        let order = model.cluster_order(value, &self.padder, &mut self.rng);
        for c in order {
            if let Some(seg) = self.dap.peek_head(c) {
                let content = self.controller.peek(seg)?;
                let flips = e2nvm_sim::bitops::hamming(&content[..value.len()], value);
                return Ok(Some((seg, flips)));
            }
        }
        Ok(None)
    }

    /// Low-level recycle: classify the segment's current content and
    /// return it to the DAP. Recycling a retired segment is a no-op —
    /// dead addresses never re-enter circulation.
    pub fn recycle_segment(&mut self, seg: LogicalSegment) -> Result<()> {
        if self.dap.is_retired(seg) {
            return Ok(());
        }
        let content = self.controller.peek(seg)?.to_vec();
        let model = self.model.as_ref().ok_or(E2Error::NotTrained)?;
        let cluster = model.predict_features(&e2nvm_ml::data::bytes_to_features(&content));
        self.dap.push(cluster, seg)?;
        self.telemetry
            .set_cluster_depth(cluster, self.dap.cluster_len(cluster));
        Ok(())
    }

    /// Drop one live reference to the segment behind a displaced index
    /// entry. Singly-occupied segments (every entry written by
    /// [`E2Engine::put`]) recycle immediately; segments shared by a
    /// packed batch recycle only when their last entry is released.
    fn release_entry(&mut self, entry: Entry) -> Result<()> {
        match self.live.get_mut(&entry.seg) {
            Some(count) => {
                *count -= 1;
                if *count == 0 {
                    self.live.remove(&entry.seg);
                    self.recycle_segment(entry.seg)?;
                }
            }
            None => self.recycle_segment(entry.seg)?,
        }
        Ok(())
    }

    /// Index every item of an emitted [`Batch`] against the one segment
    /// its packed bytes were placed on.
    fn commit_batch(&mut self, batch: &crate::batch::Batch) -> Result<()> {
        let (seg, _report) = self.place_value(&batch.data)?;
        // Count the whole batch up front so that releasing an
        // intra-batch duplicate (same key twice in one batch) cannot
        // drop the count to zero while later items still land here.
        self.live.insert(seg, batch.items.len());
        for &(key, off, len) in &batch.items {
            if let Some(old) = self.index.insert(key, Entry { seg, off, len }) {
                self.release_entry(old)?;
            }
        }
        Ok(())
    }

    /// PUT / UPDATE (Algorithm 1). Returns the device write report.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<WriteReport> {
        let (seg, report) = self.place_value(value)?;
        if let Some(old) = self.index.insert(
            key,
            Entry {
                seg,
                off: 0,
                len: value.len(),
            },
        ) {
            // The key's previous segment becomes free again (or loses
            // one of its packed entries).
            self.release_entry(old)?;
        }
        Ok(report)
    }

    /// Batched PUT: pack consecutive small values into shared segments
    /// via [`crate::batch::BatchAccumulator`], paying one placement
    /// (prediction + pop + device write) per *filled segment* instead
    /// of one per value. Returns one result per pair, in order; a
    /// placement failure fails every item of the affected batch and
    /// later batches are still attempted. Duplicate keys within
    /// `pairs` behave like sequential puts: the last occurrence wins.
    pub fn put_many(&mut self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        let seg_bytes = self.cfg.segment_bytes;
        let mut results: Vec<Result<()>> = (0..pairs.len()).map(|_| Ok(())).collect();
        let mut acc = crate::batch::BatchAccumulator::new(seg_bytes);
        // Indices of pairs sitting in the accumulator, awaiting commit.
        let mut pending: Vec<usize> = Vec::new();
        let commit = |this: &mut Self,
                      batch: &crate::batch::Batch,
                      pending: &mut Vec<usize>,
                      results: &mut Vec<Result<()>>| {
            if let Err(e) = this.commit_batch(batch) {
                for &i in pending.iter() {
                    results[i] = Err(e.clone());
                }
            }
            pending.clear();
        };
        for (i, &(key, value)) in pairs.iter().enumerate() {
            if value.len() > seg_bytes {
                results[i] = Err(E2Error::ValueTooLarge {
                    len: value.len(),
                    segment_bytes: seg_bytes,
                });
                continue;
            }
            if value.is_empty() {
                // Zero-length values carry no packed bytes, so the
                // accumulator cannot represent them; flush what is
                // pending (order matters for duplicate keys) and take
                // the ordinary single-put path.
                if let Some(batch) = acc.flush() {
                    commit(self, &batch, &mut pending, &mut results);
                }
                results[i] = self.put(key, value).map(|_| ());
                continue;
            }
            if let Some(batch) = acc.push(key, value) {
                commit(self, &batch, &mut pending, &mut results);
            }
            pending.push(i);
        }
        if let Some(batch) = acc.flush() {
            commit(self, &batch, &mut pending, &mut results);
        }
        results
    }

    /// Batched GET: one result per key, in order. Equivalent to calling
    /// [`E2Engine::get`] per key; exists so lock-holding wrappers can
    /// serve a whole batch under a single acquisition.
    pub fn get_many(&mut self, keys: &[u64]) -> Vec<Result<Vec<u8>>> {
        keys.iter().map(|&k| self.get(k)).collect()
    }

    /// GET: read the value back.
    pub fn get(&mut self, key: u64) -> Result<Vec<u8>> {
        let entry = *self.index.get(&key).ok_or(E2Error::KeyNotFound(key))?;
        let data = self.controller.read(entry.seg)?;
        Ok(data[entry.off..entry.off + entry.len].to_vec())
    }

    /// DELETE (Algorithm 2). Returns true if the key existed.
    pub fn delete(&mut self, key: u64) -> Result<bool> {
        let Some(entry) = self.index.remove(&key) else {
            return Ok(false);
        };
        self.release_entry(entry)?;
        Ok(true)
    }

    /// SCAN: all key/value pairs with keys in `range`, in key order.
    pub fn scan<R: RangeBounds<u64>>(&mut self, range: R) -> Result<Vec<(u64, Vec<u8>)>> {
        self.scan_limit(range, usize::MAX)
    }

    /// SCAN stopping after `limit` entries: the first `limit` key/value
    /// pairs with keys in `range`, in key order. Walks the index only
    /// as far as the limit, so a small page over a huge range costs
    /// O(limit + log n) rather than O(range).
    pub fn scan_limit<R: RangeBounds<u64>>(
        &mut self,
        range: R,
        limit: usize,
    ) -> Result<Vec<(u64, Vec<u8>)>> {
        let entries: Vec<(u64, Entry)> = self
            .index
            .range(range)
            .take(limit)
            .map(|(&k, &e)| (k, e))
            .collect();
        entries
            .into_iter()
            .map(|(k, e)| {
                let data = self.controller.read(e.seg)?;
                Ok((k, data[e.off..e.off + e.len].to_vec()))
            })
            .collect()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Free segments available for placement.
    pub fn free_count(&self) -> usize {
        self.dap.free_count()
    }

    /// Segments permanently retired by wear-out (degraded-mode
    /// capacity loss).
    pub fn retired_count(&self) -> usize {
        self.dap.retired_count()
    }

    /// The retired segments themselves, ascending.
    pub fn retired_segments(&self) -> Vec<LogicalSegment> {
        self.dap.retired_segments()
    }

    /// Physical slots quarantined on the controller — the address space
    /// wear heatmaps and the HEALTH wire summary are keyed by. Under
    /// the identity mapping this equals [`E2Engine::retired_count`];
    /// under active wear leveling only the physical set names the dead
    /// medium.
    pub fn retired_physical_count(&self) -> usize {
        self.controller.retired_physical_count()
    }

    /// Device statistics (flips, energy, latency).
    pub fn device_stats(&self) -> &e2nvm_sim::DeviceStats {
        self.controller.stats()
    }

    /// Reset device statistics (e.g. after a warm-up phase).
    pub fn reset_device_stats(&mut self) {
        self.controller.reset_stats();
    }

    /// Prediction-path counters.
    pub fn prediction_stats(&self) -> PredictionStats {
        self.prediction
    }

    /// Estimated DRAM footprint of the DAP (Figure 7's y-axis).
    pub fn dap_memory_bytes(&self) -> usize {
        self.dap.memory_bytes()
    }

    /// Modeled multiply-accumulates per prediction.
    pub fn predict_macs(&self) -> u64 {
        self.model.as_ref().map(E2Model::predict_macs).unwrap_or(0)
    }

    /// The trained model, if any.
    pub fn model(&self) -> Option<&E2Model> {
        self.model.as_ref()
    }

    /// Borrow the controller (seeding, wear inspection).
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.controller
    }

    /// Borrow the controller immutably.
    pub fn controller(&self) -> &MemoryController {
        &self.controller
    }

    /// Snapshot the free-segment contents (for the background
    /// retrainer).
    pub fn training_snapshot(&self) -> Vec<Vec<u8>> {
        self.free_snapshot().into_iter().map(|(_, c)| c).collect()
    }

    /// Export the engine's durable state (model, retirement, index) for
    /// persistence. Device contents and wear live in the device image
    /// (`e2nvm_sim::snapshot`); together the two reconstruct the engine
    /// via [`E2Engine::restore_state`]. Fails with
    /// [`E2Error::NotTrained`] before the first training — an untrained
    /// engine has nothing worth persisting.
    pub fn export_state(&self) -> Result<EngineState> {
        let model = self.model.as_ref().ok_or(E2Error::NotTrained)?;
        Ok(EngineState {
            model: model.to_bytes(),
            retired: self.dap.retired_segments(),
            entries: self
                .index
                .iter()
                .map(|(&k, e)| (k, e.seg, e.off, e.len))
                .collect(),
        })
    }

    /// Restore a previously exported state onto a *fresh* engine whose
    /// controller was rebuilt from the matching device image. Installs
    /// the model without retraining, re-retires dead segments, rebuilds
    /// the index and live counts, and reconstructs the DAP free lists
    /// from first principles (free = not retired ∧ not indexed,
    /// classified by the restored model against the device's current
    /// contents).
    pub fn restore_state(&mut self, state: &EngineState) -> Result<()> {
        if self.model.is_some() || !self.index.is_empty() {
            return Err(E2Error::Config(
                "restore_state requires a freshly constructed engine".into(),
            ));
        }
        let model = E2Model::from_bytes(&state.model)
            .map_err(|e| E2Error::Config(format!("restore_state: bad model artifact: {e}")))?;
        if model.input_bits() != self.cfg.input_bits() {
            return Err(E2Error::Config(format!(
                "restore_state: model expects {} input bits, config provides {}",
                model.input_bits(),
                self.cfg.input_bits()
            )));
        }
        let num_segments = self.controller.num_segments();
        for &seg in &state.retired {
            if seg.index() >= num_segments {
                return Err(E2Error::Config(format!(
                    "restore_state: retired {seg} out of range ({num_segments} segments)"
                )));
            }
        }
        let mut per_seg: HashMap<LogicalSegment, usize> = HashMap::new();
        for &(key, seg, off, len) in &state.entries {
            if seg.index() >= num_segments {
                return Err(E2Error::Config(format!(
                    "restore_state: key {key} on out-of-range {seg}"
                )));
            }
            if off + len > self.cfg.segment_bytes {
                return Err(E2Error::Config(format!(
                    "restore_state: key {key} spans [{off}, {}) past segment size {}",
                    off + len,
                    self.cfg.segment_bytes
                )));
            }
            if state.retired.contains(&seg) {
                return Err(E2Error::Config(format!(
                    "restore_state: key {key} lives on retired {seg}"
                )));
            }
            if self.index.insert(key, Entry { seg, off, len }).is_some() {
                self.index.clear();
                return Err(E2Error::Config(format!(
                    "restore_state: duplicate key {key}"
                )));
            }
            *per_seg.entry(seg).or_insert(0) += 1;
        }
        for &seg in &state.retired {
            self.dap.retire(seg);
        }
        // Mirror the quarantine onto the controller's physical flags
        // when the mapping is the identity (legacy snapshots carry no
        // controller section, and under identity logical == physical).
        // A controller rebuilt from a persisted `ControllerState`
        // already has authoritative flags and a possibly non-identity
        // remap — retiring through the *current* translation would mark
        // the wrong slot, so it is skipped.
        if self.controller.remap().is_identity() {
            for &seg in &state.retired {
                let _ = self.controller.retire(seg);
            }
        }
        // Singly-occupied segments are represented by *absence* from the
        // live map (see the `live` field docs), so only packed segments
        // carry a count.
        self.live = per_seg
            .iter()
            .filter(|&(_, &count)| count >= 2)
            .map(|(&seg, &count)| (seg, count))
            .collect();
        let free: Vec<(LogicalSegment, Vec<u8>)> = (0..num_segments)
            .map(LogicalSegment)
            .filter(|seg| !self.dap.is_retired(*seg) && !per_seg.contains_key(seg))
            .map(|seg| {
                let content = self.controller.peek(seg).expect("in range").to_vec();
                (seg, content)
            })
            .collect();
        self.install_model(model, &free);
        Ok(())
    }
}

impl std::fmt::Debug for E2Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("E2Engine")
            .field("trained", &self.model.is_some())
            .field("keys", &self.index.len())
            .field("free", &self.dap.free_count())
            .field("k", &self.cfg.k)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_sim::{DeviceConfig, NvmDevice};
    use rand::Rng;

    fn engine(num_segments: usize, seg_bytes: usize, k: usize) -> E2Engine {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(num_segments)
                .build()
                .unwrap(),
        );
        let cfg = E2Config::builder()
            .fast(seg_bytes, k)
            .pretrain_epochs(6)
            .joint_epochs(2)
            .padding_type(crate::padding::PaddingType::Zero)
            .build()
            .unwrap();
        E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap()
    }

    fn seed_two_families(e: &mut E2Engine, rng: &mut StdRng) {
        let n = e.controller.num_segments();
        let bytes = e.cfg.segment_bytes;
        for i in 0..n {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            e.controller_mut()
                .seed(LogicalSegment(i), &content)
                .unwrap();
        }
    }

    #[test]
    fn untrained_engine_rejects_ops() {
        let mut e = engine(8, 32, 2);
        assert_eq!(e.put(1, &[0u8; 16]), Err(E2Error::NotTrained));
        assert!(!e.is_trained());
    }

    #[test]
    fn put_get_delete_roundtrip() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        assert!(e.is_trained());
        e.put(7, b"hello world").unwrap();
        assert_eq!(e.get(7).unwrap(), b"hello world");
        assert_eq!(e.len(), 1);
        assert!(e.delete(7).unwrap());
        assert!(!e.delete(7).unwrap());
        assert_eq!(e.get(7), Err(E2Error::KeyNotFound(7)));
        assert!(e.is_empty());
    }

    #[test]
    fn update_recycles_old_segment() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut e = engine(16, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let before = e.free_count();
        e.put(1, &[0xAAu8; 32]).unwrap();
        assert_eq!(e.free_count(), before - 1);
        // Update: new segment taken, old one returned.
        e.put(1, &[0x55u8; 32]).unwrap();
        assert_eq!(e.free_count(), before - 1);
        assert_eq!(e.get(1).unwrap(), vec![0x55u8; 32]);
    }

    #[test]
    fn placement_prefers_similar_content() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut e = engine(64, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        // Writing all-zeros content must land on a zeros-family segment
        // (even index) — that is the whole point of E2-NVM.
        let (seg, report) = e.place_value(&[0u8; 32]).unwrap();
        assert_eq!(seg.index() % 2, 0, "zeros value placed on ones segment");
        // Few flips: the old content is already ~95% zeros.
        assert!(
            report.bits_flipped < 64,
            "too many flips: {}",
            report.bits_flipped
        );
        let (_, report_ones) = e.place_value(&[0xFFu8; 32]).unwrap();
        assert!(report_ones.bits_flipped < 64);
    }

    #[test]
    fn scan_returns_sorted_range() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        for k in [5u64, 1, 9, 3] {
            e.put(k, &k.to_le_bytes()).unwrap();
        }
        let result = e.scan(2..=8).unwrap();
        let keys: Vec<u64> = result.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![3, 5]);
        assert_eq!(result[0].1, 3u64.to_le_bytes().to_vec());
    }

    #[test]
    fn out_of_space_detected() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut e = engine(8, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        for k in 0..8u64 {
            e.put(k, &[1u8; 8]).unwrap();
        }
        assert_eq!(e.put(99, &[1u8; 8]), Err(E2Error::OutOfSpace));
        // Deleting frees space again.
        e.delete(0).unwrap();
        e.put(99, &[1u8; 8]).unwrap();
    }

    #[test]
    fn value_too_large_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut e = engine(8, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        assert!(matches!(
            e.put(1, &[0u8; 33]),
            Err(E2Error::ValueTooLarge { len: 33, .. })
        ));
    }

    #[test]
    fn needs_retrain_when_cluster_drains() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut e = engine(12, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        assert!(!e.needs_retrain());
        // Drain most of the pool.
        for k in 0..9u64 {
            e.put(k, &[0u8; 32]).unwrap();
        }
        assert!(e.needs_retrain());
    }

    #[test]
    fn prediction_stats_accumulate() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut e = engine(16, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        e.put(1, &[0u8; 8]).unwrap();
        e.put(2, &[0u8; 8]).unwrap();
        let s = e.prediction_stats();
        assert_eq!(s.predictions, 2);
        assert!(s.mean_ns() > 0.0);
        assert!(e.predict_macs() > 0);
    }

    fn faulty_engine(num_segments: usize, endurance_bits: u64, transient_rate: f64) -> E2Engine {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(32)
                .num_segments(num_segments)
                .fault(e2nvm_sim::FaultConfig {
                    seed: 9,
                    endurance_bits,
                    endurance_shape: 3.0,
                    transient_rate,
                })
                .build()
                .unwrap(),
        );
        let cfg = E2Config::builder()
            .fast(32, 2)
            .pretrain_epochs(6)
            .joint_epochs(2)
            .retrain_min_free(0)
            .padding_type(crate::padding::PaddingType::Zero)
            .build()
            .unwrap();
        E2Engine::new(MemoryController::without_wear_leveling(dev), cfg).unwrap()
    }

    /// Per-round pseudo-random content: ~half the bits differ from any
    /// earlier round, so content-similar placement cannot dodge the
    /// flips and endurance burns fast.
    fn burn_pattern(round: usize) -> [u8; 32] {
        let mut x = round as u64 ^ 0xB17_B17;
        let mut out = [0u8; 32];
        for b in out.iter_mut() {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            *b = (x >> 56) as u8;
        }
        out
    }

    #[test]
    fn worn_segment_is_retired_and_serving_continues() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut e = faulty_engine(16, 4_000, 0.0);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let mut round = 0usize;
        while e.retired_count() == 0 {
            assert!(round < 2_000, "no segment ever wore out");
            e.put(1, &burn_pattern(round)).unwrap();
            round += 1;
        }
        // Degraded mode: a segment died mid-write, the engine retired it
        // and fell back — the value of that very write survived intact.
        assert_eq!(e.get(1).unwrap(), burn_pattern(round - 1).to_vec());
        let retired = e.retired_segments();
        assert_eq!(retired.len(), e.retired_count());
        // Writes keep working after retirement.
        e.put(2, &[0x0Fu8; 32]).unwrap();
        assert_eq!(e.get(2).unwrap(), vec![0x0Fu8; 32]);
    }

    #[test]
    fn transient_failures_are_retried_transparently() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut e = faulty_engine(16, u64::MAX >> 8, 0.2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        for round in 0..60 {
            e.put(round as u64 % 4, &burn_pattern(round)).unwrap();
        }
        for k in 0..4u64 {
            // Every key readable: retries converged on each value.
            assert_eq!(e.get(k).unwrap().len(), 32);
        }
        // With a 20% transient rate over 60 writes, at least one retry
        // must have been needed somewhere — but none escalated to
        // retirement (endurance is unreachable, verify converges).
        assert_eq!(e.retired_count(), 0);
    }

    #[test]
    fn depleted_pool_reports_degraded_mode() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut e = faulty_engine(8, 1_500, 0.0);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let mut last = Ok(());
        for round in 0..2_000 {
            last = e.put(1, &burn_pattern(round)).map(|_| ());
            if last.is_err() {
                break;
            }
        }
        match last {
            Err(E2Error::PoolDepleted { retired }) => {
                assert!(retired > 0, "depletion must report retirements");
                assert_eq!(retired, e.retired_count());
            }
            other => panic!("expected PoolDepleted, got {other:?}"),
        }
        // The key's last successful value is still readable.
        assert_eq!(e.get(1).unwrap().len(), 32);
    }

    #[test]
    fn retrain_preserves_retirements() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut e = faulty_engine(16, 4_000, 0.0);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let mut round = 0usize;
        while e.retired_count() == 0 {
            assert!(round < 2_000, "no segment ever wore out");
            e.put(1, &burn_pattern(round)).unwrap();
            round += 1;
        }
        let retired = e.retired_segments();
        e.train().unwrap();
        assert_eq!(
            e.retired_segments(),
            retired,
            "retraining must not resurrect dead segments"
        );
        for seg in retired {
            assert!(!e.dap.is_free(seg));
        }
    }

    #[test]
    fn put_many_packs_small_values_into_shared_segments() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let free_before = e.free_count();
        // Eight 8-byte values fit four-to-a-segment: two segments total.
        let pairs: Vec<(u64, Vec<u8>)> = (0..8u64).map(|k| (k, k.to_le_bytes().to_vec())).collect();
        let borrowed: Vec<(u64, &[u8])> = pairs.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let results = e.put_many(&borrowed);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(
            free_before - e.free_count(),
            2,
            "8x8B values must occupy exactly two 32B segments"
        );
        for k in 0..8u64 {
            assert_eq!(e.get(k).unwrap(), k.to_le_bytes().to_vec());
        }
    }

    #[test]
    fn packed_segment_recycles_only_after_last_entry_dies() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let pairs: Vec<(u64, &[u8])> = vec![(1, &[0u8; 8]), (2, &[0u8; 8]), (3, &[0u8; 8])];
        assert!(e.put_many(&pairs).iter().all(Result::is_ok));
        let after_batch = e.free_count();
        // Two of three packed entries die: the shared segment stays
        // live (the survivor still points into it).
        assert!(e.delete(1).unwrap());
        assert!(e.delete(2).unwrap());
        assert_eq!(e.free_count(), after_batch);
        // The last entry dies: now the segment comes back.
        assert!(e.delete(3).unwrap());
        assert_eq!(e.free_count(), after_batch + 1);
    }

    #[test]
    fn put_many_duplicate_key_last_wins() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let pairs: Vec<(u64, &[u8])> = vec![(7, b"first"), (8, b"other"), (7, b"second")];
        assert!(e.put_many(&pairs).iter().all(Result::is_ok));
        assert_eq!(e.get(7).unwrap(), b"second");
        assert_eq!(e.get(8).unwrap(), b"other");
        assert_eq!(e.len(), 2);
    }

    #[test]
    fn put_many_mixed_sizes_and_errors() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        let big = [0u8; 33];
        let pairs: Vec<(u64, &[u8])> = vec![(1, b"ok"), (2, &big), (3, b""), (4, &[0xAA; 32])];
        let results = e.put_many(&pairs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(E2Error::ValueTooLarge { len: 33, .. })
        ));
        assert!(results[2].is_ok(), "empty value stored: {:?}", results[2]);
        assert!(results[3].is_ok());
        assert_eq!(e.get(1).unwrap(), b"ok");
        assert_eq!(e.get(2), Err(E2Error::KeyNotFound(2)));
        assert_eq!(e.get(3).unwrap(), Vec::<u8>::new());
        assert_eq!(e.get(4).unwrap(), vec![0xAA; 32]);
        let got = e.get_many(&[1, 2, 3]);
        assert_eq!(got[0].as_deref(), Ok(&b"ok"[..]));
        assert_eq!(got[1], Err(E2Error::KeyNotFound(2)));
    }

    #[test]
    fn put_many_overwrite_then_single_put_roundtrip() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut e = engine(32, 32, 2);
        seed_two_families(&mut e, &mut rng);
        e.train().unwrap();
        e.put(5, b"single").unwrap();
        let pairs: Vec<(u64, &[u8])> = vec![(5, b"batched"), (6, b"mate")];
        assert!(e.put_many(&pairs).iter().all(Result::is_ok));
        assert_eq!(e.get(5).unwrap(), b"batched");
        // Overwrite a packed entry with a single put; its batch-mate
        // must survive on the shared segment.
        e.put(5, b"again").unwrap();
        assert_eq!(e.get(5).unwrap(), b"again");
        assert_eq!(e.get(6).unwrap(), b"mate");
    }

    #[test]
    fn mismatched_segment_size_rejected() {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(64)
                .num_segments(8)
                .build()
                .unwrap(),
        );
        let cfg = E2Config::fast(32, 2);
        assert!(matches!(
            E2Engine::new(MemoryController::without_wear_leveling(dev), cfg),
            Err(E2Error::Config(_))
        ));
    }
}
