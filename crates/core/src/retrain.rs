//! Background retraining (paper §4.1.4): "we set a minimum threshold to
//! number of addresses in each cluster and will trigger the re-training
//! process in the background when one of the clusters reaches the
//! threshold. After the new model is ready, we switch to the new model."
//!
//! A worker thread receives free-segment snapshots over a crossbeam
//! channel, trains a fresh [`E2Model`], and sends it back; the engine
//! polls and installs it without ever blocking the serving path.

use crate::config::E2Config;
use crate::model::E2Model;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::thread::JoinHandle;

struct TrainRequest {
    cfg: E2Config,
    contents: Vec<Vec<u8>>,
    seed: u64,
}

/// Handle to the background training worker.
pub struct BackgroundRetrainer {
    tx: Sender<TrainRequest>,
    rx: Receiver<E2Model>,
    handle: Option<JoinHandle<()>>,
    pending: bool,
    /// Models trained so far (diagnostics).
    pub completed: u64,
}

impl BackgroundRetrainer {
    /// Spawn the worker thread.
    pub fn spawn() -> Self {
        let (req_tx, req_rx) = bounded::<TrainRequest>(1);
        let (model_tx, model_rx) = bounded::<E2Model>(1);
        let handle = std::thread::Builder::new()
            .name("e2nvm-retrainer".into())
            .spawn(move || {
                while let Ok(req) = req_rx.recv() {
                    let mut rng = StdRng::seed_from_u64(req.seed);
                    let model = E2Model::train(&req.cfg, &req.contents, &mut rng);
                    if model_tx.send(model).is_err() {
                        break;
                    }
                }
            })
            .expect("spawn retrainer thread");
        Self {
            tx: req_tx,
            rx: model_rx,
            handle: Some(handle),
            pending: false,
            completed: 0,
        }
    }

    /// Whether a retraining request is in flight.
    pub fn is_pending(&self) -> bool {
        self.pending
    }

    /// Submit a snapshot for retraining. Returns false (and does
    /// nothing) if a request is already in flight or the snapshot is
    /// empty.
    pub fn submit(&mut self, cfg: &E2Config, contents: Vec<Vec<u8>>, seed: u64) -> bool {
        if self.pending || contents.is_empty() {
            return false;
        }
        let sent = self
            .tx
            .try_send(TrainRequest {
                cfg: cfg.clone(),
                contents,
                seed,
            })
            .is_ok();
        self.pending = sent;
        sent
    }

    /// Non-blocking poll: the freshly trained model, if ready.
    pub fn try_take(&mut self) -> Option<E2Model> {
        match self.rx.try_recv() {
            Ok(model) => {
                self.pending = false;
                self.completed += 1;
                Some(model)
            }
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => {
                self.pending = false;
                None
            }
        }
    }

    /// Blocking wait for the in-flight model (tests / shutdown paths).
    pub fn wait(&mut self) -> Option<E2Model> {
        if !self.pending {
            return None;
        }
        match self.rx.recv() {
            Ok(model) => {
                self.pending = false;
                self.completed += 1;
                Some(model)
            }
            Err(_) => {
                self.pending = false;
                None
            }
        }
    }
}

impl Drop for BackgroundRetrainer {
    fn drop(&mut self) {
        // Close the request channel so the worker exits, then join.
        let (dead_tx, _) = bounded(0);
        self.tx = dead_tx;
        if let Some(handle) = self.handle.take() {
            // Drain a possibly in-flight model so the worker's send
            // doesn't block forever on the bounded channel.
            let _ = self.rx.try_recv();
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for BackgroundRetrainer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BackgroundRetrainer")
            .field("pending", &self.pending)
            .field("completed", &self.completed)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn contents(n: usize, bytes: usize) -> Vec<Vec<u8>> {
        let mut rng = StdRng::seed_from_u64(1);
        (0..n)
            .map(|i| {
                let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
                (0..bytes)
                    .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                    .collect()
            })
            .collect()
    }

    fn quick_cfg() -> E2Config {
        E2Config::builder()
            .fast(16, 2)
            .pretrain_epochs(3)
            .joint_epochs(1)
            .build()
            .unwrap()
    }

    #[test]
    fn train_in_background_and_take() {
        let mut bg = BackgroundRetrainer::spawn();
        assert!(!bg.is_pending());
        assert!(bg.submit(&quick_cfg(), contents(24, 16), 7));
        assert!(bg.is_pending());
        // Duplicate submissions are rejected while pending.
        assert!(!bg.submit(&quick_cfg(), contents(24, 16), 8));
        let model = bg.wait().expect("model trained");
        assert_eq!(model.k(), 2);
        assert!(!bg.is_pending());
        assert_eq!(bg.completed, 1);
    }

    #[test]
    fn empty_snapshot_rejected() {
        let mut bg = BackgroundRetrainer::spawn();
        assert!(!bg.submit(&quick_cfg(), Vec::new(), 1));
    }

    #[test]
    fn try_take_eventually_succeeds() {
        let mut bg = BackgroundRetrainer::spawn();
        bg.submit(&quick_cfg(), contents(24, 16), 3);
        let mut model = None;
        for _ in 0..500 {
            if let Some(m) = bg.try_take() {
                model = Some(m);
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(model.is_some(), "model never arrived");
    }

    #[test]
    fn sequential_retrains() {
        let mut bg = BackgroundRetrainer::spawn();
        for round in 0..2 {
            assert!(bg.submit(&quick_cfg(), contents(24, 16), round));
            assert!(bg.wait().is_some());
        }
        assert_eq!(bg.completed, 2);
    }

    #[test]
    fn drop_while_pending_does_not_hang() {
        let mut bg = BackgroundRetrainer::spawn();
        bg.submit(&quick_cfg(), contents(24, 16), 5);
        drop(bg); // must not deadlock
    }
}
