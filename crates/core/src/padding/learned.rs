//! Learned padding (paper §4.1.3): an LSTM with a sliding window that
//! "takes as input 64 bits and predicts 8 bits in a single step", then
//! slides by 8 bits to generate as many padding bits as needed.
//!
//! The window is fed to the LSTM as 8 timesteps of 8 bits each; the
//! dense sigmoid head emits the next byte's 8 bit probabilities, which
//! are thresholded at 0.5.

use e2nvm_ml::matrix::Matrix;
use e2nvm_ml::{Lstm, LstmConfig};
use rand::Rng;

/// Window size in bits (paper Figure 6).
pub const WINDOW_BITS: usize = 64;
/// Bits predicted per step (paper Figure 6).
pub const STEP_BITS: usize = 8;

const WINDOW_STEPS: usize = WINDOW_BITS / STEP_BITS;

/// The sliding-window LSTM padding generator.
#[derive(Debug)]
pub struct LearnedPadder {
    lstm: Lstm,
}

impl LearnedPadder {
    /// A fresh, untrained generator.
    pub fn new<R: Rng>(rng: &mut R) -> Self {
        Self {
            lstm: Lstm::new(
                LstmConfig {
                    input_dim: STEP_BITS,
                    hidden: 24,
                    output_dim: STEP_BITS,
                    lr: 1e-2,
                },
                rng,
            ),
        }
    }

    /// Train on resident memory contents: every 72-bit window of every
    /// segment yields one (64-bit input → next 8 bits) example.
    pub fn train<R: Rng>(&mut self, segments: &[Vec<u8>], epochs: usize, rng: &mut R) {
        // Collect (window, next-byte) examples at byte granularity.
        let mut windows: Vec<(&[u8], u8)> = Vec::new();
        for seg in segments {
            if seg.len() <= WINDOW_BITS / 8 {
                continue;
            }
            for start in 0..seg.len() - WINDOW_BITS / 8 {
                windows.push((
                    &seg[start..start + WINDOW_BITS / 8],
                    seg[start + WINDOW_BITS / 8],
                ));
            }
        }
        if windows.is_empty() {
            return;
        }
        // Cap the training set to keep retraining cheap.
        const CAP: usize = 2048;
        if windows.len() > CAP {
            for i in 0..CAP {
                let j = rng.gen_range(i..windows.len());
                windows.swap(i, j);
            }
            windows.truncate(CAP);
        }
        let batch = 64usize;
        for _ in 0..epochs.max(1) {
            for chunk in windows.chunks(batch) {
                let seq = Self::windows_to_sequence(chunk.iter().map(|(w, _)| *w));
                let targets = Matrix::from_fn(chunk.len(), STEP_BITS, |r, c| {
                    ((chunk[r].1 >> (7 - c)) & 1) as f32
                });
                self.lstm.train_batch(&seq, &targets);
            }
        }
    }

    fn windows_to_sequence<'a>(windows: impl Iterator<Item = &'a [u8]> + Clone) -> Vec<Matrix> {
        let rows: Vec<&[u8]> = windows.collect();
        (0..WINDOW_STEPS)
            .map(|step| {
                Matrix::from_fn(rows.len(), STEP_BITS, |r, c| {
                    ((rows[r][step] >> (7 - c)) & 1) as f32
                })
            })
            .collect()
    }

    /// Generate `q` padding bits (0.0/1.0) conditioned on `data`.
    ///
    /// The window is seeded with the last 8 bytes of `data` (cycled if
    /// the value is shorter) and slides by one predicted byte per step.
    pub fn generate(&self, data: &[u8], q: usize) -> Vec<f32> {
        let mut window = [0u8; WINDOW_BITS / 8];
        if data.is_empty() {
            // Nothing to condition on: a zero window.
        } else if data.len() >= WINDOW_BITS / 8 {
            window.copy_from_slice(&data[data.len() - WINDOW_BITS / 8..]);
        } else {
            // Cycle the short value to fill the window.
            for (i, w) in window.iter_mut().enumerate() {
                *w = data[i % data.len()];
            }
        }
        let mut out = Vec::with_capacity(q);
        while out.len() < q {
            let seq = Self::windows_to_sequence(std::iter::once(&window[..]));
            let pred = self.lstm.predict(&seq);
            let mut byte = 0u8;
            for c in 0..STEP_BITS {
                let bit = pred.get(0, c) > 0.5;
                byte = (byte << 1) | u8::from(bit);
                if out.len() < q {
                    out.push(f32::from(bit));
                }
            }
            // Slide the window by one byte.
            window.rotate_left(1);
            window[WINDOW_BITS / 8 - 1] = byte;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_ml::rng::seeded;

    #[test]
    fn generates_requested_length() {
        let mut rng = seeded(1);
        let padder = LearnedPadder::new(&mut rng);
        for q in [1, 7, 8, 9, 64, 100] {
            let out = padder.generate(&[0xAB, 0xCD], q);
            assert_eq!(out.len(), q);
            assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
        }
    }

    #[test]
    fn learns_constant_continuation() {
        // Memory full of all-ones segments: the LSTM must learn that
        // the next byte after any window is 0xFF.
        let mut rng = seeded(2);
        let segments: Vec<Vec<u8>> = (0..8).map(|_| vec![0xFFu8; 24]).collect();
        let mut padder = LearnedPadder::new(&mut rng);
        padder.train(&segments, 30, &mut rng);
        let out = padder.generate(&[0xFFu8; 8], 32);
        let ones: f32 = out.iter().sum();
        assert!(ones >= 30.0, "expected ~all ones, got {ones}/32");
    }

    #[test]
    fn learns_alternating_pattern() {
        // Segments alternate 0x00/0xFF bytes; after a window ending in
        // 0xFF the next byte is 0x00 and vice versa.
        let mut rng = seeded(3);
        let segments: Vec<Vec<u8>> = (0..8)
            .map(|_| {
                (0..32)
                    .map(|i| if i % 2 == 0 { 0x00 } else { 0xFF })
                    .collect()
            })
            .collect();
        let mut padder = LearnedPadder::new(&mut rng);
        padder.train(&segments, 60, &mut rng);
        // Window ends ... 0x00 0xFF -> next byte should be 0x00.
        let data: Vec<u8> = (0..8)
            .map(|i| if i % 2 == 0 { 0x00 } else { 0xFF })
            .collect();
        let out = padder.generate(&data, 16);
        let first_byte_ones: f32 = out[..8].iter().sum();
        let second_byte_ones: f32 = out[8..16].iter().sum();
        assert!(
            first_byte_ones <= 2.0 && second_byte_ones >= 6.0,
            "pattern not learned: {out:?}"
        );
    }

    #[test]
    fn short_and_empty_values_handled() {
        let mut rng = seeded(4);
        let padder = LearnedPadder::new(&mut rng);
        assert_eq!(padder.generate(&[], 8).len(), 8);
        assert_eq!(padder.generate(&[0x01], 8).len(), 8);
    }

    #[test]
    fn training_on_tiny_segments_is_safe() {
        let mut rng = seeded(5);
        let mut padder = LearnedPadder::new(&mut rng);
        // Segments not longer than the window: no examples, no panic.
        padder.train(&[vec![0u8; 8], vec![1u8; 4]], 5, &mut rng);
        assert_eq!(padder.generate(&[0u8; 4], 16).len(), 16);
    }
}
