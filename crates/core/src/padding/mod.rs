//! Padding strategies (paper §4): fitting variable-size values into the
//! fixed model input.
//!
//! The model is trained on `w`-bit inputs; a value of `p < w` bits is
//! padded with `q = w − p` synthetic bits *for prediction only* — padded
//! bits are never written to NVM. Two axes (Figure 5):
//!
//! * **Location**: before the data (beginning), split around it
//!   (middle/edges), or after it (end).
//! * **Type**: universal data-agnostic (zero / one / random), universal
//!   data-aware (input-based IB, dataset-based DB, memory-based MB), or
//!   **learned** (an LSTM that slides a 64-bit window and predicts 8
//!   bits per step, §4.1.3).

pub mod learned;

pub use learned::LearnedPadder;

use e2nvm_ml::data::bytes_to_features;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Where the padding bits go relative to the value (paper Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PaddingLocation {
    /// `[pad..., data]`
    Beginning,
    /// `[pad/2..., data, pad/2...]` ("padding in the edges").
    Middle,
    /// `[data, pad...]`
    #[default]
    End,
}

impl PaddingLocation {
    /// All locations, in the paper's presentation order.
    pub const ALL: [PaddingLocation; 3] = [
        PaddingLocation::Beginning,
        PaddingLocation::Middle,
        PaddingLocation::End,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            PaddingLocation::Beginning => "beginning",
            PaddingLocation::Middle => "middle",
            PaddingLocation::End => "end",
        }
    }
}

/// How the padding bits are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PaddingType {
    /// All zeros.
    Zero,
    /// All ones.
    One,
    /// Uniform random bits.
    Random,
    /// Input-based: 1-bits with the probability of 1s in the input item.
    InputBased,
    /// Dataset-based: probability from all items observed so far.
    DatasetBased,
    /// Memory-based: probability from the resident memory contents.
    MemoryBased,
    /// LSTM-generated (the paper's best performer).
    #[default]
    Learned,
}

impl PaddingType {
    /// All types, in the paper's presentation order.
    pub const ALL: [PaddingType; 7] = [
        PaddingType::Zero,
        PaddingType::One,
        PaddingType::Random,
        PaddingType::InputBased,
        PaddingType::DatasetBased,
        PaddingType::MemoryBased,
        PaddingType::Learned,
    ];

    /// Display name (paper's abbreviations).
    pub fn name(&self) -> &'static str {
        match self {
            PaddingType::Zero => "zero",
            PaddingType::One => "one",
            PaddingType::Random => "rand",
            PaddingType::InputBased => "IB",
            PaddingType::DatasetBased => "DB",
            PaddingType::MemoryBased => "MB",
            PaddingType::Learned => "LB",
        }
    }
}

/// Stateful padder: tracks dataset/memory bit statistics and (for the
/// learned type) owns the LSTM generator.
#[derive(Debug)]
pub struct Padder {
    location: PaddingLocation,
    ptype: PaddingType,
    dataset_ones: u64,
    dataset_bits: u64,
    memory_ones_ratio: f32,
    learned: Option<LearnedPadder>,
}

impl Padder {
    /// Create a padder. For [`PaddingType::Learned`], call
    /// [`Padder::train_learned`] before padding (an untrained padder
    /// falls back to dataset-based generation).
    pub fn new(location: PaddingLocation, ptype: PaddingType) -> Self {
        Self {
            location,
            ptype,
            dataset_ones: 0,
            dataset_bits: 0,
            memory_ones_ratio: 0.5,
            learned: None,
        }
    }

    /// The configured location.
    pub fn location(&self) -> PaddingLocation {
        self.location
    }

    /// The configured type.
    pub fn padding_type(&self) -> PaddingType {
        self.ptype
    }

    /// Record one observed item (updates the dataset distribution used
    /// by [`PaddingType::DatasetBased`]).
    pub fn observe(&mut self, data: &[u8]) {
        self.dataset_ones += e2nvm_sim::bitops::popcount(data);
        self.dataset_bits += (data.len() * 8) as u64;
    }

    /// Set the resident-memory ones ratio used by
    /// [`PaddingType::MemoryBased`] (computed from a pool snapshot).
    pub fn set_memory_ratio(&mut self, ratio: f32) {
        self.memory_ones_ratio = ratio.clamp(0.0, 1.0);
    }

    /// Train the learned (LSTM) generator on resident memory contents.
    pub fn train_learned<R: Rng>(&mut self, segments: &[Vec<u8>], epochs: usize, rng: &mut R) {
        let mut padder = LearnedPadder::new(rng);
        padder.train(segments, epochs, rng);
        self.learned = Some(padder);
    }

    /// Whether the learned generator has been trained.
    pub fn is_learned_ready(&self) -> bool {
        self.learned.is_some()
    }

    /// Pad `data` to exactly `target_bits` bit-features for the model.
    /// Returns the feature vector; stored bytes are unaffected (padding
    /// is prediction-only).
    ///
    /// # Panics
    /// Panics if `data` is longer than `target_bits` allows.
    pub fn pad<R: Rng>(&self, data: &[u8], target_bits: usize, rng: &mut R) -> Vec<f32> {
        let data_bits = bytes_to_features(data);
        assert!(
            data_bits.len() <= target_bits,
            "pad: data ({} bits) exceeds model input ({target_bits} bits)",
            data_bits.len()
        );
        let q = target_bits - data_bits.len();
        if q == 0 {
            return data_bits;
        }
        let pad_bits = self.generate(data, &data_bits, q, rng);
        debug_assert_eq!(pad_bits.len(), q);
        let mut out = Vec::with_capacity(target_bits);
        match self.location {
            PaddingLocation::Beginning => {
                out.extend_from_slice(&pad_bits);
                out.extend_from_slice(&data_bits);
            }
            PaddingLocation::End => {
                out.extend_from_slice(&data_bits);
                out.extend_from_slice(&pad_bits);
            }
            PaddingLocation::Middle => {
                let half = q / 2;
                out.extend_from_slice(&pad_bits[..half]);
                out.extend_from_slice(&data_bits);
                out.extend_from_slice(&pad_bits[half..]);
            }
        }
        out
    }

    fn generate<R: Rng>(&self, data: &[u8], data_bits: &[f32], q: usize, rng: &mut R) -> Vec<f32> {
        match self.ptype {
            PaddingType::Zero => vec![0.0; q],
            PaddingType::One => vec![1.0; q],
            PaddingType::Random => (0..q).map(|_| f32::from(rng.gen::<bool>())).collect(),
            PaddingType::InputBased => {
                let ones: f32 = data_bits.iter().sum();
                let p = if data_bits.is_empty() {
                    0.5
                } else {
                    ones / data_bits.len() as f32
                };
                bernoulli(p, q, rng)
            }
            PaddingType::DatasetBased => {
                let p = if self.dataset_bits == 0 {
                    0.5
                } else {
                    self.dataset_ones as f32 / self.dataset_bits as f32
                };
                bernoulli(p, q, rng)
            }
            PaddingType::MemoryBased => bernoulli(self.memory_ones_ratio, q, rng),
            PaddingType::Learned => match &self.learned {
                Some(padder) => padder.generate(data, q),
                // Untrained learned padder: degrade gracefully to the
                // dataset distribution rather than panic mid-workload.
                None => {
                    let p = if self.dataset_bits == 0 {
                        0.5
                    } else {
                        self.dataset_ones as f32 / self.dataset_bits as f32
                    };
                    bernoulli(p, q, rng)
                }
            },
        }
    }
}

fn bernoulli<R: Rng>(p: f32, q: usize, rng: &mut R) -> Vec<f32> {
    (0..q).map(|_| f32::from(rng.gen::<f32>() < p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_ml::rng::seeded;

    #[test]
    fn exact_size_passthrough() {
        let padder = Padder::new(PaddingLocation::End, PaddingType::Zero);
        let mut rng = seeded(1);
        let out = padder.pad(&[0xFF], 8, &mut rng);
        assert_eq!(out, vec![1.0f32; 8]);
    }

    #[test]
    fn locations_place_data_correctly() {
        let mut rng = seeded(2);
        let data = [0xFFu8]; // 8 one-bits
        for (loc, data_range) in [
            (PaddingLocation::Beginning, 8..16),
            (PaddingLocation::End, 0..8),
            (PaddingLocation::Middle, 4..12),
        ] {
            let padder = Padder::new(loc, PaddingType::Zero);
            let out = padder.pad(&data, 16, &mut rng);
            assert_eq!(out.len(), 16);
            for (i, v) in out.iter().enumerate() {
                let expect = if data_range.contains(&i) { 1.0 } else { 0.0 };
                assert_eq!(*v, expect, "{}: bit {i}", loc.name());
            }
        }
    }

    #[test]
    fn zero_one_random_types() {
        let mut rng = seeded(3);
        let data = [0x0Fu8];
        let zero = Padder::new(PaddingLocation::End, PaddingType::Zero).pad(&data, 32, &mut rng);
        assert!(zero[8..].iter().all(|&v| v == 0.0));
        let one = Padder::new(PaddingLocation::End, PaddingType::One).pad(&data, 32, &mut rng);
        assert!(one[8..].iter().all(|&v| v == 1.0));
        let rand = Padder::new(PaddingLocation::End, PaddingType::Random).pad(&data, 512, &mut rng);
        let ones: f32 = rand[8..].iter().sum();
        assert!((ones / 504.0 - 0.5).abs() < 0.1, "random not balanced");
    }

    #[test]
    fn input_based_matches_input_distribution() {
        let mut rng = seeded(4);
        // Input 25% ones, like the paper's d1 = [0,0,0,1] example.
        let data = [0b0001_0001u8, 0b0000_0000];
        let padder = Padder::new(PaddingLocation::End, PaddingType::InputBased);
        let out = padder.pad(&data, 16 + 4096, &mut rng);
        let p = out[16..].iter().sum::<f32>() / 4096.0;
        assert!((p - 2.0 / 16.0).abs() < 0.03, "p={p}");
    }

    #[test]
    fn dataset_based_tracks_observations() {
        let mut rng = seeded(5);
        let mut padder = Padder::new(PaddingLocation::End, PaddingType::DatasetBased);
        // Observe 75%-ones data.
        padder.observe(&[0xFF, 0xFF, 0xFF, 0x00]);
        let out = padder.pad(&[0x00], 8 + 4096, &mut rng);
        let p = out[8..].iter().sum::<f32>() / 4096.0;
        assert!((p - 0.75).abs() < 0.03, "p={p}");
    }

    #[test]
    fn memory_based_uses_set_ratio() {
        let mut rng = seeded(6);
        let mut padder = Padder::new(PaddingLocation::End, PaddingType::MemoryBased);
        padder.set_memory_ratio(0.9);
        let out = padder.pad(&[0x00], 8 + 4096, &mut rng);
        let p = out[8..].iter().sum::<f32>() / 4096.0;
        assert!((p - 0.9).abs() < 0.03, "p={p}");
    }

    #[test]
    fn untrained_learned_falls_back() {
        let mut rng = seeded(7);
        let padder = Padder::new(PaddingLocation::End, PaddingType::Learned);
        assert!(!padder.is_learned_ready());
        let out = padder.pad(&[0xAA], 64, &mut rng);
        assert_eq!(out.len(), 64);
        assert!(out.iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    #[should_panic(expected = "exceeds model input")]
    fn oversized_data_panics() {
        let padder = Padder::new(PaddingLocation::End, PaddingType::Zero);
        let mut rng = seeded(8);
        padder.pad(&[0u8; 10], 8, &mut rng);
    }

    #[test]
    fn all_enums_have_unique_names() {
        let names: std::collections::HashSet<_> =
            PaddingType::ALL.iter().map(|t| t.name()).collect();
        assert_eq!(names.len(), 7);
        let locs: std::collections::HashSet<_> =
            PaddingLocation::ALL.iter().map(|l| l.name()).collect();
        assert_eq!(locs.len(), 3);
    }
}
