//! The E2-NVM model: a trained VAE encoder + K-means centroids, with
//! byte-level prediction helpers that route values through the padder.

use crate::config::E2Config;
use crate::padding::Padder;
use e2nvm_ml::data::{segments_to_matrix, subsample_rows, train_val_split};
use e2nvm_ml::persist::{Persist, PersistError, Reader, Writer};
use e2nvm_ml::{ClusterModel, Matrix, TrainingHistory};
use rand::Rng;
use std::path::Path;

/// A trained placement model.
#[derive(Debug, Clone)]
pub struct E2Model {
    cluster: ClusterModel,
    input_bits: usize,
    history: TrainingHistory,
}

impl E2Model {
    /// Train on a snapshot of memory-segment contents. Honors the
    /// config's `train_sample_cap` and holds out 10 % for validation
    /// loss curves.
    ///
    /// # Panics
    /// Panics if `contents` is empty or segment sizes disagree with the
    /// config.
    pub fn train<R: Rng>(cfg: &E2Config, contents: &[Vec<u8>], rng: &mut R) -> Self {
        assert!(!contents.is_empty(), "E2Model::train: no training data");
        assert!(
            contents.iter().all(|c| c.len() == cfg.segment_bytes),
            "E2Model::train: contents must be whole segments"
        );
        let all = segments_to_matrix(contents);
        let capped = subsample_rows(&all, cfg.train_sample_cap, rng);
        let (train, val) = train_val_split(&capped, 0.1, rng);
        let val_opt: Option<&Matrix> = (val.rows() > 0).then_some(&val);
        let (cluster, history) = ClusterModel::train(&cfg.dec_config(), &train, val_opt, rng);
        Self {
            cluster,
            input_bits: cfg.input_bits(),
            history,
        }
    }

    /// Predict the cluster for a (padded) feature vector.
    pub fn predict_features(&self, features: &[f32]) -> usize {
        debug_assert_eq!(features.len(), self.input_bits);
        self.cluster.predict(features)
    }

    /// Pad a value and predict its cluster (Algorithm 1, step 1).
    pub fn predict_value<R: Rng>(&self, value: &[u8], padder: &Padder, rng: &mut R) -> usize {
        let features = padder.pad(value, self.input_bits, rng);
        self.cluster.predict(&features)
    }

    /// Pad a value and return the clusters in nearest-first order — the
    /// order the DAP uses for fallback.
    pub fn cluster_order<R: Rng>(&self, value: &[u8], padder: &Padder, rng: &mut R) -> Vec<usize> {
        let features = padder.pad(value, self.input_bits, rng);
        self.cluster.clusters_by_distance(&features)
    }

    /// Classify whole segments (no padding needed).
    pub fn classify_segments(&self, contents: &[Vec<u8>]) -> Vec<usize> {
        if contents.is_empty() {
            return Vec::new();
        }
        let m = segments_to_matrix(contents);
        self.cluster.predict_batch(&m)
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.cluster.k()
    }

    /// Model input width in bit-features.
    pub fn input_bits(&self) -> usize {
        self.input_bits
    }

    /// Training history (loss curves for Figure 9).
    pub fn history(&self) -> &TrainingHistory {
        &self.history
    }

    /// Multiply-accumulates per prediction (CPU-energy model input).
    pub fn predict_macs(&self) -> u64 {
        self.cluster.predict_macs()
    }

    /// Multiply-accumulates for one retraining epoch on `n` samples.
    pub fn train_macs_per_epoch(&self, n: usize) -> u64 {
        self.cluster.vae().train_macs_per_epoch(n)
    }

    /// Serialize the serving artifact (encoder + centroids + input
    /// width). The training history is not persisted — a loaded model
    /// serves predictions.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header();
        w.u64(self.input_bits as u64);
        Persist::encode(&self.cluster, &mut w);
        w.into_bytes()
    }

    /// Deserialize a model previously produced by [`E2Model::to_bytes`].
    pub fn from_bytes(buf: &[u8]) -> Result<Self, PersistError> {
        let mut r = Reader::with_header(buf)?;
        let input_bits = r.u64()? as usize;
        let cluster = <ClusterModel as Persist>::decode(&mut r)?;
        if cluster.input_dim() != input_bits {
            return Err(PersistError::BadLength(input_bits as u64));
        }
        Ok(Self {
            cluster,
            input_bits,
            history: TrainingHistory::default(),
        })
    }

    /// Save to a file.
    #[deprecated(
        note = "use the unified persistence facade: `e2nvm_persist::save_model` \
                (re-exported as `e2nvm::persist::save_model`)"
    )]
    pub fn save(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_bytes())
    }

    /// Load from a file.
    #[deprecated(
        note = "use the unified persistence facade: `e2nvm_persist::load_model` \
                (re-exported as `e2nvm::persist::load_model`)"
    )]
    pub fn load(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let bytes = std::fs::read(path)?;
        Self::from_bytes(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::padding::{PaddingLocation, PaddingType};
    use e2nvm_ml::rng::seeded;

    fn clustered_segments(n_per: usize, seg_bytes: usize, rng: &mut impl Rng) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for cls in 0..2u8 {
            let base = if cls == 0 { 0x00 } else { 0xFF };
            for _ in 0..n_per {
                out.push(
                    (0..seg_bytes)
                        .map(|_| if rng.gen::<f32>() < 0.08 { !base } else { base })
                        .collect(),
                );
            }
        }
        out
    }

    fn quick_cfg() -> E2Config {
        E2Config::builder()
            .fast(16, 2)
            .pretrain_epochs(8)
            .joint_epochs(2)
            .build()
            .unwrap()
    }

    #[test]
    fn train_and_separate() {
        let mut rng = seeded(1);
        let contents = clustered_segments(40, 16, &mut rng);
        let model = E2Model::train(&quick_cfg(), &contents, &mut rng);
        assert_eq!(model.k(), 2);
        assert_eq!(model.input_bits(), 128);
        let assigns = model.classify_segments(&contents);
        // The two families must land in different clusters (majority).
        let zeros_cluster = assigns[..40].iter().fold([0usize; 2], |mut acc, &c| {
            acc[c] += 1;
            acc
        });
        let ones_cluster = assigns[40..].iter().fold([0usize; 2], |mut acc, &c| {
            acc[c] += 1;
            acc
        });
        let zmaj = if zeros_cluster[0] > zeros_cluster[1] {
            0
        } else {
            1
        };
        let omaj = if ones_cluster[0] > ones_cluster[1] {
            0
        } else {
            1
        };
        assert_ne!(zmaj, omaj, "families not separated");
    }

    #[test]
    fn padded_prediction_consistent_with_full() {
        let mut rng = seeded(2);
        let contents = clustered_segments(40, 16, &mut rng);
        let model = E2Model::train(&quick_cfg(), &contents, &mut rng);
        let padder = Padder::new(PaddingLocation::End, PaddingType::Zero);
        // A full-size mostly-zero value and a half-size one (zero-padded)
        // should map to the same cluster.
        let full = model.predict_value(&[0u8; 16], &padder, &mut rng);
        let half = model.predict_value(&[0u8; 8], &padder, &mut rng);
        assert_eq!(full, half);
    }

    #[test]
    fn cluster_order_starts_with_prediction() {
        let mut rng = seeded(3);
        let contents = clustered_segments(30, 16, &mut rng);
        let model = E2Model::train(&quick_cfg(), &contents, &mut rng);
        let padder = Padder::new(PaddingLocation::End, PaddingType::Zero);
        let value = vec![0xFFu8; 16];
        let pred = model.predict_value(&value, &padder, &mut rng);
        let order = model.cluster_order(&value, &padder, &mut rng);
        assert_eq!(order[0], pred);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn persistence_roundtrip_preserves_predictions() {
        let mut rng = seeded(9);
        let contents = clustered_segments(30, 16, &mut rng);
        let model = E2Model::train(&quick_cfg(), &contents, &mut rng);
        let loaded = E2Model::from_bytes(&model.to_bytes()).unwrap();
        assert_eq!(loaded.k(), model.k());
        assert_eq!(loaded.input_bits(), model.input_bits());
        assert_eq!(
            loaded.classify_segments(&contents),
            model.classify_segments(&contents)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn save_load_file_roundtrip() {
        let mut rng = seeded(10);
        let contents = clustered_segments(20, 16, &mut rng);
        let model = E2Model::train(&quick_cfg(), &contents, &mut rng);
        let path = std::env::temp_dir().join("e2nvm_model_test.bin");
        model.save(&path).unwrap();
        let loaded = E2Model::load(&path).unwrap();
        assert_eq!(
            loaded.classify_segments(&contents),
            model.classify_segments(&contents)
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn history_recorded() {
        let mut rng = seeded(4);
        let contents = clustered_segments(30, 16, &mut rng);
        let cfg = quick_cfg();
        let model = E2Model::train(&cfg, &contents, &mut rng);
        assert_eq!(
            model.history().train.len(),
            cfg.pretrain_epochs + cfg.joint_epochs
        );
        assert!(!model.history().validation.is_empty());
    }
}
