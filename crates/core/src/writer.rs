//! Batched small-value writes (paper §4.1.4): "batching can be applied
//! so that small writes are grouped together to form larger writes to
//! memory segments. This way, E2-NVM needs to map the free memory
//! locations based on the batch size rather than the key-value pair
//! size."
//!
//! [`BatchedWriter`] owns an [`E2Engine`] and an accumulator; small
//! puts buffer in DRAM until a segment-sized batch is full, then one
//! placement decision stores the whole batch.

use crate::batch::BatchAccumulator;
use crate::engine::E2Engine;
use crate::error::{E2Error, Result};
use e2nvm_sim::LogicalSegment;
use std::collections::HashMap;

#[derive(Debug, Clone, Copy)]
struct ItemLoc {
    seg: LogicalSegment,
    offset: usize,
    len: usize,
}

/// Batching layer over the engine for values much smaller than a
/// segment.
pub struct BatchedWriter {
    engine: E2Engine,
    acc: BatchAccumulator,
    /// key -> placed location.
    placed: HashMap<u64, ItemLoc>,
    /// Live item count per segment (for recycling fully dead segments).
    live: HashMap<LogicalSegment, usize>,
    /// Keys currently in the open (unplaced) batch.
    pending: HashMap<u64, (usize, usize)>,
}

impl BatchedWriter {
    /// Wrap a *trained* engine.
    ///
    /// # Panics
    /// Panics if the engine has not been trained.
    pub fn new(engine: E2Engine) -> Self {
        assert!(engine.is_trained(), "BatchedWriter: engine must be trained");
        let capacity = engine.config().segment_bytes;
        Self {
            engine,
            acc: BatchAccumulator::new(capacity),
            placed: HashMap::new(),
            live: HashMap::new(),
            pending: HashMap::new(),
        }
    }

    /// Buffer one small value; places a full batch as a single
    /// segment-sized write when the buffer fills.
    pub fn put(&mut self, key: u64, value: &[u8]) -> Result<()> {
        if value.len() > self.engine.config().segment_bytes {
            return Err(E2Error::ValueTooLarge {
                len: value.len(),
                segment_bytes: self.engine.config().segment_bytes,
            });
        }
        self.remove_key(key)?;
        if let Some(batch) = self.acc.push(key, value) {
            self.place_batch(batch)?;
        }
        let (_, off, len) = *self.acc.items().last().expect("push appended the item");
        self.pending.insert(key, (off, len));
        Ok(())
    }

    /// Force the open batch out to NVM (e.g. before shutdown).
    pub fn flush(&mut self) -> Result<()> {
        if let Some(batch) = self.acc.flush() {
            self.place_batch(batch)?;
        }
        Ok(())
    }

    fn place_batch(&mut self, batch: crate::batch::Batch) -> Result<()> {
        let (seg, _report) = self.engine.place_value(&batch.data)?;
        let mut live = 0;
        for &(key, offset, len) in &batch.items {
            // Only keys still current (not overwritten while pending).
            if self.pending.remove(&key) == Some((offset, len)) {
                self.placed.insert(key, ItemLoc { seg, offset, len });
                live += 1;
            }
        }
        if live > 0 {
            self.live.insert(seg, live);
        } else {
            self.engine.recycle_segment(seg)?;
        }
        Ok(())
    }

    fn remove_key(&mut self, key: u64) -> Result<()> {
        self.pending.remove(&key);
        if let Some(loc) = self.placed.remove(&key) {
            let count = self
                .live
                .get_mut(&loc.seg)
                .expect("live count tracks placed segments");
            *count -= 1;
            if *count == 0 {
                self.live.remove(&loc.seg);
                self.engine.recycle_segment(loc.seg)?;
            }
        }
        Ok(())
    }

    /// Read a value back (from the open batch or from NVM).
    pub fn get(&mut self, key: u64) -> Result<Vec<u8>> {
        if let Some(&(offset, len)) = self.pending.get(&key) {
            return Ok(self.acc.peek()[offset..offset + len].to_vec());
        }
        let loc = *self.placed.get(&key).ok_or(E2Error::KeyNotFound(key))?;
        let data = self.engine.controller_mut().read(loc.seg)?;
        Ok(data[loc.offset..loc.offset + loc.len].to_vec())
    }

    /// Delete a key; returns whether it existed. Fully dead segments go
    /// back to the address pool.
    pub fn delete(&mut self, key: u64) -> Result<bool> {
        let existed = self.pending.contains_key(&key) || self.placed.contains_key(&key);
        self.remove_key(key)?;
        Ok(existed)
    }

    /// Number of live keys.
    pub fn len(&self) -> usize {
        self.pending.len() + self.placed.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow the engine (stats).
    pub fn engine(&self) -> &E2Engine {
        &self.engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::E2Config;
    use crate::padding::PaddingType;
    use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn writer(segments: usize, seg_bytes: usize) -> BatchedWriter {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        let mut controller = MemoryController::without_wear_leveling(dev);
        let mut rng = StdRng::seed_from_u64(5);
        for i in 0..segments {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..seg_bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            controller
                .seed(e2nvm_sim::LogicalSegment(i), &content)
                .unwrap();
        }
        let cfg = E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .padding_type(PaddingType::Zero)
            .build()
            .unwrap();
        let mut engine = E2Engine::new(controller, cfg).unwrap();
        engine.train().unwrap();
        BatchedWriter::new(engine)
    }

    #[test]
    fn small_puts_amortize_into_few_placements() {
        let mut w = writer(32, 64);
        // 16 values of 14 bytes -> 4 segments (4 per 64B batch), not 16.
        for key in 0..16u64 {
            w.put(key, &[key as u8; 14]).unwrap();
        }
        w.flush().unwrap();
        let writes = w.engine().device_stats().writes;
        assert!(writes <= 5, "expected ~4 batch writes, got {writes}");
        for key in 0..16u64 {
            assert_eq!(w.get(key).unwrap(), vec![key as u8; 14], "key {key}");
        }
    }

    #[test]
    fn pending_values_readable_before_flush() {
        let mut w = writer(16, 64);
        w.put(7, b"unflushed").unwrap();
        assert_eq!(w.get(7).unwrap(), b"unflushed");
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn overwrite_supersedes_old_copy() {
        let mut w = writer(32, 64);
        w.put(1, &[0xAAu8; 20]).unwrap();
        w.flush().unwrap();
        w.put(1, &[0xBBu8; 20]).unwrap();
        assert_eq!(w.get(1).unwrap(), vec![0xBBu8; 20]);
        w.flush().unwrap();
        assert_eq!(w.get(1).unwrap(), vec![0xBBu8; 20]);
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn dead_segments_recycled() {
        let mut w = writer(16, 64);
        let free_before = w.engine().free_count();
        for key in 0..4u64 {
            w.put(key, &[1u8; 14]).unwrap();
        }
        w.flush().unwrap();
        assert_eq!(w.engine().free_count(), free_before - 1);
        for key in 0..4u64 {
            assert!(w.delete(key).unwrap());
        }
        assert_eq!(w.engine().free_count(), free_before);
        assert!(w.is_empty());
        assert!(!w.delete(0).unwrap());
    }

    #[test]
    fn oversized_value_rejected() {
        let mut w = writer(16, 64);
        assert!(matches!(
            w.put(1, &[0u8; 65]),
            Err(E2Error::ValueTooLarge { .. })
        ));
    }
}
