//! The Cluster-to-Memory **Dynamic Address Pool** (paper §3.3.1): a map
//! from cluster id to the list of free memory segments belonging to that
//! cluster.
//!
//! PUT pops the *first* available address of the predicted cluster (the
//! paper deliberately does not search within a cluster: "we just take
//! the first available address in the cluster knowing that it will have
//! a very similar content"); DELETE recycles addresses back. A
//! membership table enforces that no address is ever in two pools or
//! handed out twice, and a minimum-threshold check drives the
//! background-retraining trigger of §4.1.4.

use e2nvm_sim::LogicalSegment;
use std::collections::VecDeque;

/// Error type for pool misuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DapError {
    /// The segment is already in the pool (double free).
    AlreadyFree(LogicalSegment),
    /// The cluster id is out of range.
    BadCluster {
        /// The offending cluster id.
        cluster: usize,
        /// Number of clusters in the pool.
        k: usize,
    },
    /// The segment has been permanently retired (worn out) and can
    /// never re-enter a free pool.
    Retired(LogicalSegment),
}

impl std::fmt::Display for DapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DapError::AlreadyFree(seg) => write!(f, "segment {seg} is already free"),
            DapError::BadCluster { cluster, k } => {
                write!(f, "cluster {cluster} out of range (k = {k})")
            }
            DapError::Retired(seg) => write!(f, "segment {seg} is retired (worn out)"),
        }
    }
}

impl std::error::Error for DapError {}

/// The dynamic address pool.
#[derive(Debug, Clone)]
pub struct DynamicAddressPool {
    pools: VecVecDeque,
    /// `membership[seg] == Some(cluster)` iff the segment is free and
    /// parked in that cluster's pool.
    membership: Vec<Option<u32>>,
    /// The quarantine list: `retired[seg]` is permanently true once the
    /// segment wears out. Retired segments are barred from `push` and
    /// filtered out of `rebuild`, so the pool can never hand one out.
    retired: Vec<bool>,
    min_threshold: usize,
}

type VecVecDeque = Vec<VecDeque<LogicalSegment>>;

impl DynamicAddressPool {
    /// An empty pool with `k` clusters covering `num_segments` segment
    /// ids. `min_threshold` is the per-cluster low-water mark that
    /// triggers retraining.
    pub fn new(k: usize, num_segments: usize, min_threshold: usize) -> Self {
        assert!(k > 0, "DynamicAddressPool: k must be >= 1");
        Self {
            pools: (0..k).map(|_| VecDeque::new()).collect(),
            membership: vec![None; num_segments],
            retired: vec![false; num_segments],
            min_threshold,
        }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.pools.len()
    }

    /// Total free segments.
    pub fn free_count(&self) -> usize {
        self.pools.iter().map(VecDeque::len).sum()
    }

    /// Free segments in one cluster.
    pub fn cluster_len(&self, cluster: usize) -> usize {
        self.pools.get(cluster).map(VecDeque::len).unwrap_or(0)
    }

    /// Park a free segment in `cluster`'s pool.
    pub fn push(&mut self, cluster: usize, seg: LogicalSegment) -> Result<(), DapError> {
        if cluster >= self.pools.len() {
            return Err(DapError::BadCluster {
                cluster,
                k: self.pools.len(),
            });
        }
        if self.is_retired(seg) {
            return Err(DapError::Retired(seg));
        }
        let slot = &mut self.membership[seg.index()];
        if slot.is_some() {
            return Err(DapError::AlreadyFree(seg));
        }
        *slot = Some(cluster as u32);
        self.pools[cluster].push_back(seg);
        Ok(())
    }

    /// The first free address of `cluster` without removing it.
    pub fn peek_head(&self, cluster: usize) -> Option<LogicalSegment> {
        self.pools.get(cluster)?.front().copied()
    }

    /// Take the first free address of `cluster`, if any.
    pub fn pop(&mut self, cluster: usize) -> Option<LogicalSegment> {
        let seg = self.pools.get_mut(cluster)?.pop_front()?;
        self.membership[seg.index()] = None;
        Some(seg)
    }

    /// Take the first free address following a nearest-first cluster
    /// order (fallback when the predicted cluster is empty). Returns the
    /// segment together with the cluster that supplied it, so callers
    /// can tell a first-choice hit from a fallback.
    pub fn pop_with_fallback(&mut self, order: &[usize]) -> Option<(LogicalSegment, usize)> {
        order.iter().find_map(|&c| self.pop(c).map(|seg| (seg, c)))
    }

    /// The first cluster whose free list is at or below the threshold,
    /// if any — the retraining trigger.
    pub fn below_threshold(&self) -> Option<usize> {
        self.pools
            .iter()
            .position(|p| p.len() <= self.min_threshold)
    }

    /// Permanently retire a segment (quarantine: it wore out). Removes
    /// it from its free pool if currently parked; after this, `push`
    /// rejects it and `rebuild` silently drops it. Returns `true` if
    /// the segment was newly retired.
    pub fn retire(&mut self, seg: LogicalSegment) -> bool {
        let Some(flag) = self.retired.get_mut(seg.index()) else {
            return false;
        };
        if *flag {
            return false;
        }
        *flag = true;
        if let Some(cluster) = self.membership[seg.index()].take() {
            self.pools[cluster as usize].retain(|&s| s != seg);
        }
        true
    }

    /// Whether `seg` has been permanently retired.
    pub fn is_retired(&self, seg: LogicalSegment) -> bool {
        self.retired.get(seg.index()).copied().unwrap_or(false)
    }

    /// Number of retired segments.
    pub fn retired_count(&self) -> usize {
        self.retired.iter().filter(|&&r| r).count()
    }

    /// All retired segments, ascending.
    pub fn retired_segments(&self) -> Vec<LogicalSegment> {
        self.retired
            .iter()
            .enumerate()
            .filter_map(|(i, &r)| r.then_some(LogicalSegment(i)))
            .collect()
    }

    /// Rebuild the pool from scratch with a new cluster count and
    /// assignment list (after retraining). Retirement is permanent:
    /// retired segments in `assignments` are dropped, so a retrain can
    /// classify every segment without resurrecting dead ones.
    pub fn rebuild(&mut self, k: usize, assignments: &[(LogicalSegment, usize)]) {
        assert!(k > 0, "rebuild: k must be >= 1");
        self.pools = (0..k).map(|_| VecDeque::new()).collect();
        self.membership.iter_mut().for_each(|m| *m = None);
        for &(seg, cluster) in assignments {
            if self.is_retired(seg) {
                continue;
            }
            self.push(cluster, seg)
                .expect("rebuild: duplicate segment in assignments");
        }
    }

    /// Estimated DRAM footprint of the pool in bytes: one address slot
    /// per free segment plus the membership table — the quantity the
    /// paper's Figure 7 plots against segment count.
    pub fn memory_bytes(&self) -> usize {
        let slots: usize = self
            .pools
            .iter()
            .map(|p| p.capacity() * std::mem::size_of::<LogicalSegment>())
            .sum();
        slots
            + self.membership.len() * std::mem::size_of::<Option<u32>>()
            + self.retired.len() * std::mem::size_of::<bool>()
    }

    /// Whether `seg` is currently free.
    pub fn is_free(&self, seg: LogicalSegment) -> bool {
        self.membership
            .get(seg.index())
            .map(Option::is_some)
            .unwrap_or(false)
    }

    /// Per-cluster occupancy snapshot.
    pub fn occupancy(&self) -> Vec<usize> {
        self.pools.iter().map(VecDeque::len).collect()
    }

    /// All currently free segments (order unspecified).
    pub fn free_segments(&self) -> Vec<LogicalSegment> {
        self.membership
            .iter()
            .enumerate()
            .filter_map(|(i, m)| m.map(|_| LogicalSegment(i)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(i: usize) -> LogicalSegment {
        LogicalSegment(i)
    }

    #[test]
    fn push_pop_fifo() {
        let mut dap = DynamicAddressPool::new(2, 10, 0);
        dap.push(0, seg(3)).unwrap();
        dap.push(0, seg(5)).unwrap();
        assert_eq!(dap.pop(0), Some(seg(3)));
        assert_eq!(dap.pop(0), Some(seg(5)));
        assert_eq!(dap.pop(0), None);
    }

    #[test]
    fn double_free_rejected() {
        let mut dap = DynamicAddressPool::new(2, 10, 0);
        dap.push(0, seg(1)).unwrap();
        assert_eq!(dap.push(1, seg(1)), Err(DapError::AlreadyFree(seg(1))));
        assert_eq!(dap.push(0, seg(1)), Err(DapError::AlreadyFree(seg(1))));
        // After pop it can be pushed again (possibly elsewhere).
        dap.pop(0);
        dap.push(1, seg(1)).unwrap();
        assert_eq!(dap.cluster_len(1), 1);
    }

    #[test]
    fn bad_cluster_rejected() {
        let mut dap = DynamicAddressPool::new(2, 4, 0);
        assert!(matches!(
            dap.push(7, seg(0)),
            Err(DapError::BadCluster { cluster: 7, k: 2 })
        ));
    }

    #[test]
    fn fallback_order_respected() {
        let mut dap = DynamicAddressPool::new(3, 10, 0);
        dap.push(2, seg(9)).unwrap();
        // Cluster 0 and 1 empty; order [0, 1, 2] must reach cluster 2.
        assert_eq!(dap.pop_with_fallback(&[0, 1, 2]), Some((seg(9), 2)));
        assert_eq!(dap.pop_with_fallback(&[0, 1, 2]), None);
    }

    #[test]
    fn threshold_detection() {
        let mut dap = DynamicAddressPool::new(2, 10, 1);
        dap.push(0, seg(0)).unwrap();
        dap.push(0, seg(1)).unwrap();
        dap.push(1, seg(2)).unwrap();
        dap.push(1, seg(3)).unwrap();
        // Both clusters above threshold (2 > 1).
        assert_eq!(dap.below_threshold(), None);
        dap.pop(1);
        // Cluster 1 now at threshold.
        assert_eq!(dap.below_threshold(), Some(1));
    }

    #[test]
    fn rebuild_replaces_everything() {
        let mut dap = DynamicAddressPool::new(2, 10, 0);
        dap.push(0, seg(0)).unwrap();
        dap.push(1, seg(1)).unwrap();
        dap.rebuild(3, &[(seg(5), 2), (seg(6), 0)]);
        assert_eq!(dap.k(), 3);
        assert_eq!(dap.free_count(), 2);
        assert!(!dap.is_free(seg(0)));
        assert!(dap.is_free(seg(5)));
        assert_eq!(dap.occupancy(), vec![1, 0, 1]);
    }

    #[test]
    fn memory_bytes_grows_with_segments() {
        let small = DynamicAddressPool::new(4, 1_000, 0);
        let large = DynamicAddressPool::new(4, 100_000, 0);
        assert!(large.memory_bytes() > small.memory_bytes());
    }

    #[test]
    fn retire_removes_from_pool_and_blocks_push() {
        let mut dap = DynamicAddressPool::new(2, 10, 0);
        dap.push(0, seg(3)).unwrap();
        dap.push(0, seg(4)).unwrap();
        assert!(dap.retire(seg(3)));
        assert!(!dap.retire(seg(3)), "second retire is a no-op");
        assert!(dap.is_retired(seg(3)));
        assert!(!dap.is_free(seg(3)));
        assert_eq!(dap.free_count(), 1);
        assert_eq!(dap.pop(0), Some(seg(4)));
        assert_eq!(dap.pop(0), None, "retired segment must never be handed out");
        assert_eq!(dap.push(1, seg(3)), Err(DapError::Retired(seg(3))));
        assert_eq!(dap.retired_count(), 1);
        assert_eq!(dap.retired_segments(), vec![seg(3)]);
    }

    #[test]
    fn retire_while_in_flight_blocks_recycle() {
        // A segment popped (in use) then retired cannot be recycled.
        let mut dap = DynamicAddressPool::new(1, 4, 0);
        dap.push(0, seg(2)).unwrap();
        let s = dap.pop(0).unwrap();
        assert!(dap.retire(s));
        assert_eq!(dap.push(0, s), Err(DapError::Retired(s)));
        assert_eq!(dap.free_count(), 0);
    }

    #[test]
    fn rebuild_filters_retired() {
        let mut dap = DynamicAddressPool::new(2, 10, 0);
        dap.push(0, seg(0)).unwrap();
        dap.retire(seg(5));
        dap.rebuild(3, &[(seg(5), 2), (seg(6), 0), (seg(0), 1)]);
        assert_eq!(dap.free_count(), 2, "retired seg 5 dropped from rebuild");
        assert!(!dap.is_free(seg(5)));
        assert!(dap.is_retired(seg(5)), "retirement survives rebuild");
        assert_eq!(dap.pop(2), None);
    }

    #[test]
    fn conservation_under_interleaving() {
        let mut dap = DynamicAddressPool::new(4, 64, 0);
        for i in 0..64 {
            dap.push(i % 4, seg(i)).unwrap();
        }
        let mut held = Vec::new();
        // Interleave pops and recycles.
        for round in 0..200 {
            if round % 3 == 0 && !held.is_empty() {
                let s: LogicalSegment = held.pop().unwrap();
                dap.push(round % 4, s).unwrap();
            } else if let Some((s, _)) = dap.pop_with_fallback(&[0, 1, 2, 3]) {
                held.push(s);
            }
            assert_eq!(dap.free_count() + held.len(), 64, "round {round}");
        }
    }
}
