//! Choosing the number of clusters K (paper §4.1.4, Figure 8): the SSE
//! elbow plus the *energy valley* — training energy grows with K while
//! NVM write energy shrinks, so the total has a minimum at a moderate K.

use crate::config::E2Config;
use crate::model::E2Model;
use e2nvm_sim::bitops::hamming;
use e2nvm_sim::EnergyParams;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One point of a K sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSweepPoint {
    /// The candidate K.
    pub k: usize,
    /// Final latent-space SSE (Eq. 1).
    pub sse: f32,
    /// Mean intra-cluster hamming distance of the training contents —
    /// the expected flips of one same-cluster overwrite.
    pub expected_flips: f64,
    /// Modeled training energy, pJ.
    pub train_energy_pj: f64,
    /// Modeled NVM write energy for the assumed write volume, pJ.
    pub write_energy_pj: f64,
}

impl KSweepPoint {
    /// Total modeled energy (the "valley" quantity).
    pub fn total_energy_pj(&self) -> f64 {
        self.train_energy_pj + self.write_energy_pj
    }
}

/// Result of [`sweep_k`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KSelection {
    /// The sweep points in K order.
    pub points: Vec<KSweepPoint>,
    /// K chosen by the SSE elbow.
    pub elbow_k: usize,
    /// K with minimum total modeled energy.
    pub energy_k: usize,
}

/// Sweep candidate Ks: train a model per K on `contents`, compute SSE,
/// expected same-cluster flips, and the modeled energy split assuming
/// `est_writes` future writes.
///
/// # Panics
/// Panics if `ks` or `contents` is empty.
pub fn sweep_k<R: Rng>(
    base: &E2Config,
    contents: &[Vec<u8>],
    ks: &[usize],
    energy: &EnergyParams,
    est_writes: u64,
    rng: &mut R,
) -> KSelection {
    assert!(!ks.is_empty(), "sweep_k: no candidate Ks");
    assert!(!contents.is_empty(), "sweep_k: no contents");
    let mut points = Vec::with_capacity(ks.len());
    let lines = base.segment_bytes.div_ceil(64) as u64;
    for &k in ks {
        let cfg = E2Config { k, ..base.clone() };
        let model = E2Model::train(&cfg, contents, rng);
        let assignments = model.classify_segments(contents);
        let expected_flips = mean_intra_cluster_hamming(contents, &assignments, model.k());
        // Training energy: VAE epochs plus the K-dependent K-means
        // refits (one after pretraining, one per joint epoch) — the
        // reason the paper's Figure 8 shows rising system energy at
        // large K.
        let epochs = (cfg.pretrain_epochs + cfg.joint_epochs) as u64;
        let n = contents.len().min(cfg.train_sample_cap);
        let vae_macs = model.train_macs_per_epoch(n) * epochs;
        let kmeans_macs = (cfg.joint_epochs as u64 + 1)
            * 25 // Lloyd iterations per refit
            * n as u64
            * (model.k() * cfg.latent_dim) as u64;
        let train_energy_pj = energy.cpu_energy_pj(vae_macs + kmeans_macs);
        // Write energy: per-write cost with the expected flips.
        let write_energy_pj =
            energy.write_energy_pj(lines, expected_flips.round() as u64) * est_writes as f64;
        let sse = model.history().sse.last().copied().unwrap_or(f32::NAN);
        points.push(KSweepPoint {
            k: model.k(),
            sse,
            expected_flips,
            train_energy_pj,
            write_energy_pj,
        });
    }
    let curve: Vec<(usize, f32)> = points.iter().map(|p| (p.k, p.sse)).collect();
    let elbow_k = e2nvm_ml::elbow_k(&curve);
    let energy_k = points
        .iter()
        .min_by(|a, b| {
            a.total_energy_pj()
                .partial_cmp(&b.total_energy_pj())
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|p| p.k)
        .unwrap_or(ks[0]);
    KSelection {
        points,
        elbow_k,
        energy_k,
    }
}

/// Mean pairwise hamming distance within clusters (sampled: up to 64
/// pairs per cluster to stay cheap on large pools).
fn mean_intra_cluster_hamming(contents: &[Vec<u8>], assignments: &[usize], k: usize) -> f64 {
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &c) in assignments.iter().enumerate() {
        groups[c].push(i);
    }
    let mut total = 0.0f64;
    let mut count = 0u64;
    for group in &groups {
        if group.len() < 2 {
            continue;
        }
        // Deterministic sampling of *distant* pairs (stride of half the
        // group): consecutive indices are often generated back-to-back
        // from the same source and would bias the estimate low.
        let pairs = group.len().min(64);
        let stride = (group.len() / 2).max(1);
        for p in 0..pairs {
            let a = group[p % group.len()];
            let b = group[(p + stride) % group.len()];
            total += hamming(&contents[a], &contents[b]) as f64;
            count += 1;
        }
    }
    if count == 0 {
        // Single-member clusters everywhere: fall back to the global
        // mean pairwise distance.
        if contents.len() < 2 {
            return 0.0;
        }
        let mut t = 0.0;
        let mut c = 0u64;
        for w in contents.windows(2).take(64) {
            t += hamming(&w[0], &w[1]) as f64;
            c += 1;
        }
        return t / c as f64;
    }
    total / count as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2nvm_ml::rng::seeded;
    use rand::Rng;

    fn families(n_per: usize, bytes: usize, classes: usize, rng: &mut impl Rng) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for cls in 0..classes {
            let template: Vec<u8> = (0..bytes)
                .map(|b| {
                    if (b + cls) % classes < classes / 2 {
                        0xFF
                    } else {
                        0x00
                    }
                })
                .collect();
            for _ in 0..n_per {
                out.push(
                    template
                        .iter()
                        .map(|&v| if rng.gen::<f32>() < 0.05 { !v } else { v })
                        .collect(),
                );
            }
        }
        out
    }

    fn quick_cfg() -> E2Config {
        E2Config::builder()
            .fast(16, 2)
            .pretrain_epochs(5)
            .joint_epochs(1)
            .build()
            .unwrap()
    }

    #[test]
    fn sweep_produces_monotone_ish_sse() {
        let mut rng = seeded(1);
        let contents = families(20, 16, 4, &mut rng);
        let sel = sweep_k(
            &quick_cfg(),
            &contents,
            &[1, 2, 4, 8],
            &EnergyParams::default(),
            1000,
            &mut rng,
        );
        assert_eq!(sel.points.len(), 4);
        // SSE at k=8 must be well below k=1.
        assert!(sel.points[3].sse < sel.points[0].sse);
        // Expected flips shrink as clustering refines.
        assert!(sel.points[3].expected_flips <= sel.points[0].expected_flips);
        assert!(sel.points.iter().all(|p| p.train_energy_pj > 0.0));
    }

    #[test]
    fn energy_valley_prefers_small_k_when_training_dominates() {
        let mut rng = seeded(2);
        let contents = families(15, 16, 2, &mut rng);
        // No writes at all -> training energy is the only term; it
        // grows with K (K-means refits), so the smallest K wins.
        let sel_few = sweep_k(
            &quick_cfg(),
            &contents,
            &[1, 2, 6],
            &EnergyParams::default(),
            0,
            &mut rng,
        );
        assert_eq!(sel_few.energy_k, 1);
        // Training energy is monotone in K.
        let te: Vec<f64> = sel_few.points.iter().map(|p| p.train_energy_pj).collect();
        assert!(
            te[0] < te[1] && te[1] < te[2],
            "train energy not rising: {te:?}"
        );
    }

    #[test]
    fn intra_cluster_distance_zero_for_identical() {
        let contents = vec![vec![7u8; 8]; 6];
        let assignments = vec![0usize; 6];
        assert_eq!(mean_intra_cluster_hamming(&contents, &assignments, 1), 0.0);
    }

    #[test]
    fn singleton_clusters_fall_back_to_global() {
        let contents = vec![vec![0u8; 4], vec![0xFFu8; 4]];
        let assignments = vec![0usize, 1];
        let d = mean_intra_cluster_hamming(&contents, &assignments, 2);
        assert_eq!(d, 32.0);
    }
}
