//! E2-NVM engine configuration.

use crate::padding::{PaddingLocation, PaddingType};
use e2nvm_ml::{DecConfig, VaeConfig};
use serde::{Deserialize, Serialize};

/// Configuration of an [`crate::E2Engine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2Config {
    /// Number of clusters K (see [`crate::kselect`] for choosing it).
    pub k: usize,
    /// Segment size in bytes — must match the device the engine runs on.
    pub segment_bytes: usize,
    /// Latent dimensionality of the VAE (paper: ~10).
    pub latent_dim: usize,
    /// Encoder hidden layer widths.
    pub hidden: Vec<usize>,
    /// VAE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Joint VAE+K-means fine-tuning epochs.
    pub joint_epochs: usize,
    /// Cluster-loss weight γ.
    pub gamma: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// KL weight β.
    pub beta: f32,
    /// Cap on training-set size: at most this many free segments are
    /// sampled for (re)training (§4.1.4's incremental indexing).
    pub train_sample_cap: usize,
    /// Retraining trigger: retrain when any cluster's free list drops
    /// below this many addresses (§4.1.4 "minimum threshold").
    pub retrain_min_free: usize,
    /// Number of independent serving shards for
    /// [`crate::sharded::ShardedEngine`] — each shard owns a disjoint
    /// slice of the device's segment space with its own model, address
    /// pool, and retrainer. `1` means unsharded.
    pub num_shards: usize,
    /// Where padding bits are placed for sub-segment values.
    pub padding_location: PaddingLocation,
    /// How padding bits are generated.
    pub padding_type: PaddingType,
    /// RNG seed for model init, shuffling, and padding randomness.
    pub seed: u64,
}

impl Default for E2Config {
    fn default() -> Self {
        Self {
            k: 10,
            segment_bytes: 256,
            latent_dim: 10,
            hidden: vec![128],
            pretrain_epochs: 15,
            joint_epochs: 5,
            gamma: 0.1,
            batch: 64,
            lr: 2e-3,
            beta: 0.3,
            train_sample_cap: 4096,
            retrain_min_free: 2,
            num_shards: 1,
            padding_location: PaddingLocation::End,
            padding_type: PaddingType::Learned,
            seed: 0xE211,
        }
    }
}

impl E2Config {
    /// Model input width in bit-features.
    pub fn input_bits(&self) -> usize {
        self.segment_bytes * 8
    }

    /// The derived joint-training configuration.
    pub fn dec_config(&self) -> DecConfig {
        DecConfig {
            vae: VaeConfig {
                input_dim: self.input_bits(),
                hidden: self.hidden.clone(),
                latent_dim: self.latent_dim,
                lr: self.lr,
                beta: self.beta,
            },
            k: self.k,
            pretrain_epochs: self.pretrain_epochs,
            joint_epochs: self.joint_epochs,
            gamma: self.gamma,
            batch: self.batch,
            kmeans_iters: 25,
            soft_assignment: false,
        }
    }

    /// Validate basic constraints.
    pub fn validate(&self) -> Result<(), String> {
        if self.k == 0 {
            return Err("k must be >= 1".into());
        }
        if self.segment_bytes == 0 {
            return Err("segment_bytes must be > 0".into());
        }
        if self.latent_dim == 0 {
            return Err("latent_dim must be > 0".into());
        }
        if self.batch == 0 {
            return Err("batch must be > 0".into());
        }
        if self.num_shards == 0 {
            return Err("num_shards must be >= 1".into());
        }
        Ok(())
    }

    /// A small/fast configuration for tests and quick demos.
    pub fn fast(segment_bytes: usize, k: usize) -> Self {
        Self {
            k,
            segment_bytes,
            latent_dim: 4,
            hidden: vec![32],
            pretrain_epochs: 8,
            joint_epochs: 3,
            train_sample_cap: 1024,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(E2Config::default().validate().is_ok());
    }

    #[test]
    fn invalid_fields_caught() {
        for cfg in [
            E2Config {
                k: 0,
                ..E2Config::default()
            },
            E2Config {
                segment_bytes: 0,
                ..E2Config::default()
            },
            E2Config {
                latent_dim: 0,
                ..E2Config::default()
            },
            E2Config {
                batch: 0,
                ..E2Config::default()
            },
            E2Config {
                num_shards: 0,
                ..E2Config::default()
            },
        ] {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn dec_config_derives_dims() {
        let cfg = E2Config::fast(64, 5);
        let dec = cfg.dec_config();
        assert_eq!(dec.vae.input_dim, 512);
        assert_eq!(dec.k, 5);
        assert_eq!(cfg.input_bits(), 512);
    }
}
