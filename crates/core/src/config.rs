//! E2-NVM engine configuration.
//!
//! [`E2Config::builder`] is the canonical construction path: it
//! validates on [`E2ConfigBuilder::build`], so an invalid configuration
//! is caught at the call site instead of surfacing later inside
//! [`crate::E2Engine::new`]. The struct's fields stay `pub` for
//! experiment code that sweeps parameters in place.

use crate::error::{E2Error, Result};
use crate::padding::{PaddingLocation, PaddingType};
use e2nvm_ml::{DecConfig, VaeConfig};
use serde::{Deserialize, Serialize};

/// Configuration of an [`crate::E2Engine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct E2Config {
    /// Number of clusters K (see [`crate::kselect`] for choosing it).
    pub k: usize,
    /// Segment size in bytes — must match the device the engine runs on.
    pub segment_bytes: usize,
    /// Latent dimensionality of the VAE (paper: ~10).
    pub latent_dim: usize,
    /// Encoder hidden layer widths.
    pub hidden: Vec<usize>,
    /// VAE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Joint VAE+K-means fine-tuning epochs.
    pub joint_epochs: usize,
    /// Cluster-loss weight γ.
    pub gamma: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// KL weight β.
    pub beta: f32,
    /// Cap on training-set size: at most this many free segments are
    /// sampled for (re)training (§4.1.4's incremental indexing).
    pub train_sample_cap: usize,
    /// Retraining trigger: retrain when any cluster's free list drops
    /// below this many addresses (§4.1.4 "minimum threshold").
    pub retrain_min_free: usize,
    /// Number of independent serving shards for
    /// [`crate::sharded::ShardedEngine`] — each shard owns a disjoint
    /// slice of the device's segment space with its own model, address
    /// pool, and retrainer. `1` means unsharded.
    pub num_shards: usize,
    /// How many times a placement re-programs a segment after a
    /// transient write failure before the engine retires the segment
    /// and falls back to another address (graceful degradation; only
    /// relevant when the device injects faults).
    pub max_write_retries: usize,
    /// Where padding bits are placed for sub-segment values.
    pub padding_location: PaddingLocation,
    /// How padding bits are generated.
    pub padding_type: PaddingType,
    /// RNG seed for model init, shuffling, and padding randomness.
    pub seed: u64,
}

impl Default for E2Config {
    fn default() -> Self {
        Self {
            k: 10,
            segment_bytes: 256,
            latent_dim: 10,
            hidden: vec![128],
            pretrain_epochs: 15,
            joint_epochs: 5,
            gamma: 0.1,
            batch: 64,
            lr: 2e-3,
            beta: 0.3,
            train_sample_cap: 4096,
            retrain_min_free: 2,
            num_shards: 1,
            max_write_retries: 2,
            padding_location: PaddingLocation::End,
            padding_type: PaddingType::Learned,
            seed: 0xE211,
        }
    }
}

impl E2Config {
    /// Model input width in bit-features.
    pub fn input_bits(&self) -> usize {
        self.segment_bytes * 8
    }

    /// The derived joint-training configuration.
    pub fn dec_config(&self) -> DecConfig {
        DecConfig {
            vae: VaeConfig {
                input_dim: self.input_bits(),
                hidden: self.hidden.clone(),
                latent_dim: self.latent_dim,
                lr: self.lr,
                beta: self.beta,
            },
            k: self.k,
            pretrain_epochs: self.pretrain_epochs,
            joint_epochs: self.joint_epochs,
            gamma: self.gamma,
            batch: self.batch,
            kmeans_iters: 25,
            soft_assignment: false,
        }
    }

    /// A builder starting from [`E2Config::default`] — the canonical way
    /// to construct a validated configuration.
    pub fn builder() -> E2ConfigBuilder {
        E2ConfigBuilder::default()
    }

    /// Validate basic constraints.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: &str| Err(E2Error::Config(msg.into()));
        if self.k == 0 {
            return fail("k must be >= 1");
        }
        if self.segment_bytes == 0 {
            return fail("segment_bytes must be > 0");
        }
        if self.latent_dim == 0 {
            return fail("latent_dim must be > 0");
        }
        if self.hidden.is_empty() || self.hidden.contains(&0) {
            return fail("hidden layer widths must be non-empty and > 0");
        }
        if self.batch == 0 {
            return fail("batch must be > 0");
        }
        if self.num_shards == 0 {
            return fail("num_shards must be >= 1");
        }
        if !(self.lr.is_finite() && self.lr > 0.0) {
            return fail("lr must be finite and > 0");
        }
        if !(self.gamma.is_finite() && self.gamma >= 0.0) {
            return fail("gamma must be finite and >= 0");
        }
        if !(self.beta.is_finite() && self.beta >= 0.0) {
            return fail("beta must be finite and >= 0");
        }
        if self.train_sample_cap == 0 {
            return fail("train_sample_cap must be > 0");
        }
        Ok(())
    }

    /// A small/fast configuration for tests and quick demos.
    pub fn fast(segment_bytes: usize, k: usize) -> Self {
        Self {
            k,
            segment_bytes,
            latent_dim: 4,
            hidden: vec![32],
            pretrain_epochs: 8,
            joint_epochs: 3,
            train_sample_cap: 1024,
            ..Self::default()
        }
    }
}

/// Builder for [`E2Config`] with validation at [`E2ConfigBuilder::build`].
///
/// Starts from [`E2Config::default`]; [`E2ConfigBuilder::fast`] switches
/// the base to the small test/demo profile before applying the
/// individual setters.
///
/// ```
/// use e2nvm_core::E2Config;
///
/// let cfg = E2Config::builder()
///     .segment_bytes(64)
///     .k(4)
///     .retrain_min_free(1)
///     .build()
///     .unwrap();
/// assert_eq!(cfg.k, 4);
/// assert!(E2Config::builder().k(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct E2ConfigBuilder {
    cfg: E2Config,
}

macro_rules! builder_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),* $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, value: $ty) -> Self {
                self.cfg.$field = value;
                self
            }
        )*
    };
}

impl E2ConfigBuilder {
    /// Replace the base with [`E2Config::fast`] (small/fast profile for
    /// tests and quick demos), keeping any setters applied afterwards.
    pub fn fast(mut self, segment_bytes: usize, k: usize) -> Self {
        self.cfg = E2Config::fast(segment_bytes, k);
        self
    }

    builder_setters! {
        /// Number of clusters K.
        k: usize,
        /// Segment size in bytes (must match the device).
        segment_bytes: usize,
        /// Latent dimensionality of the VAE.
        latent_dim: usize,
        /// Encoder hidden layer widths.
        hidden: Vec<usize>,
        /// VAE pretraining epochs.
        pretrain_epochs: usize,
        /// Joint VAE+K-means fine-tuning epochs.
        joint_epochs: usize,
        /// Cluster-loss weight γ.
        gamma: f32,
        /// Mini-batch size.
        batch: usize,
        /// Adam learning rate.
        lr: f32,
        /// KL weight β.
        beta: f32,
        /// Cap on training-set size.
        train_sample_cap: usize,
        /// Per-cluster low-water mark that triggers retraining.
        retrain_min_free: usize,
        /// Number of independent serving shards.
        num_shards: usize,
        /// Write retries after a transient failure before retiring.
        max_write_retries: usize,
        /// Where padding bits are placed.
        padding_location: PaddingLocation,
        /// How padding bits are generated.
        padding_type: PaddingType,
        /// RNG seed.
        seed: u64,
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<E2Config> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        assert!(E2Config::default().validate().is_ok());
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(E2Config::builder().build().unwrap(), E2Config::default());
    }

    #[test]
    fn builder_sets_fields_over_fast_profile() {
        let cfg = E2Config::builder()
            .fast(64, 2)
            .pretrain_epochs(4)
            .joint_epochs(1)
            .padding_type(PaddingType::Zero)
            .seed(7)
            .build()
            .unwrap();
        assert_eq!(cfg.segment_bytes, 64);
        assert_eq!(cfg.k, 2);
        assert_eq!(cfg.pretrain_epochs, 4);
        assert_eq!(cfg.joint_epochs, 1);
        assert_eq!(cfg.padding_type, PaddingType::Zero);
        assert_eq!(cfg.seed, 7);
        // Untouched fields keep the fast-profile values.
        assert_eq!(cfg.latent_dim, E2Config::fast(64, 2).latent_dim);
    }

    #[test]
    fn builder_rejects_invalid() {
        assert!(matches!(
            E2Config::builder().k(0).build(),
            Err(E2Error::Config(_))
        ));
        assert!(E2Config::builder().batch(0).build().is_err());
        assert!(E2Config::builder().lr(0.0).build().is_err());
        assert!(E2Config::builder().lr(f32::NAN).build().is_err());
        assert!(E2Config::builder().hidden(vec![]).build().is_err());
        assert!(E2Config::builder().hidden(vec![32, 0]).build().is_err());
        assert!(E2Config::builder().train_sample_cap(0).build().is_err());
    }

    #[test]
    fn invalid_fields_caught() {
        for cfg in [
            E2Config {
                k: 0,
                ..E2Config::default()
            },
            E2Config {
                segment_bytes: 0,
                ..E2Config::default()
            },
            E2Config {
                latent_dim: 0,
                ..E2Config::default()
            },
            E2Config {
                batch: 0,
                ..E2Config::default()
            },
            E2Config {
                num_shards: 0,
                ..E2Config::default()
            },
        ] {
            assert!(cfg.validate().is_err());
        }
    }

    #[test]
    fn dec_config_derives_dims() {
        let cfg = E2Config::fast(64, 5);
        let dec = cfg.dec_config();
        assert_eq!(dec.vae.input_dim, 512);
        assert_eq!(dec.k, 5);
        assert_eq!(cfg.input_bits(), 512);
    }
}
