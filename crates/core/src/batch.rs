//! Batching small key-value pairs into segment-sized writes
//! (paper §4.1.4: "batching can be applied so that small writes are
//! grouped together to form larger writes to memory segments ...
//! E2-NVM needs to map the free memory locations based on the batch
//! size rather than the key-value pair size").

use bytes::{BufMut, Bytes, BytesMut};

/// A filled batch ready to be written as one segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Concatenated payload (≤ the configured batch size).
    pub data: Bytes,
    /// Per-item `(key, offset, len)` locations inside `data`.
    pub items: Vec<(u64, usize, usize)>,
}

impl Batch {
    /// Extract one item's bytes.
    pub fn item(&self, idx: usize) -> &[u8] {
        let (_, off, len) = self.items[idx];
        &self.data[off..off + len]
    }
}

/// Accumulates small values until a segment-sized batch is full.
#[derive(Debug)]
pub struct BatchAccumulator {
    capacity: usize,
    buf: BytesMut,
    items: Vec<(u64, usize, usize)>,
}

impl BatchAccumulator {
    /// A new accumulator for batches of `capacity` bytes (the segment
    /// size).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "BatchAccumulator: zero capacity");
        Self {
            capacity,
            buf: BytesMut::with_capacity(capacity),
            items: Vec::new(),
        }
    }

    /// Bytes currently buffered.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The `(key, offset, len)` items buffered so far.
    pub fn items(&self) -> &[(u64, usize, usize)] {
        &self.items
    }

    /// The buffered bytes (for reads of not-yet-flushed items).
    pub fn peek(&self) -> &[u8] {
        &self.buf
    }

    /// Push one key/value. Returns a completed [`Batch`] when the value
    /// does not fit in the remaining space (the full buffer is emitted
    /// and the value starts the next batch).
    ///
    /// # Panics
    /// Panics if a single value exceeds the batch capacity.
    pub fn push(&mut self, key: u64, value: &[u8]) -> Option<Batch> {
        assert!(
            value.len() <= self.capacity,
            "value of {} bytes exceeds batch capacity {}",
            value.len(),
            self.capacity
        );
        let emitted = if self.buf.len() + value.len() > self.capacity {
            Some(self.flush().expect("buffer nonempty"))
        } else {
            None
        };
        self.items.push((key, self.buf.len(), value.len()));
        self.buf.put_slice(value);
        emitted
    }

    /// Emit whatever is buffered, if anything.
    pub fn flush(&mut self) -> Option<Batch> {
        if self.buf.is_empty() {
            return None;
        }
        let data = self.buf.split().freeze();
        let items = std::mem::take(&mut self.items);
        Some(Batch { data, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_until_full() {
        let mut acc = BatchAccumulator::new(10);
        assert!(acc.push(1, b"abc").is_none());
        assert!(acc.push(2, b"defg").is_none());
        // 3 + 4 + 4 > 10 -> emits the first batch.
        let batch = acc.push(3, b"hijk").expect("batch emitted");
        assert_eq!(batch.data.as_ref(), b"abcdefg");
        assert_eq!(batch.items, vec![(1, 0, 3), (2, 3, 4)]);
        assert_eq!(batch.item(1), b"defg");
        // Third value started the next batch.
        let rest = acc.flush().unwrap();
        assert_eq!(rest.data.as_ref(), b"hijk");
        assert_eq!(rest.items, vec![(3, 0, 4)]);
    }

    #[test]
    fn flush_empty_returns_none() {
        let mut acc = BatchAccumulator::new(8);
        assert!(acc.flush().is_none());
        acc.push(1, b"x");
        assert!(acc.flush().is_some());
        assert!(acc.flush().is_none());
        assert!(acc.is_empty());
    }

    #[test]
    fn exact_fit_does_not_emit_early() {
        let mut acc = BatchAccumulator::new(6);
        assert!(acc.push(1, b"abc").is_none());
        assert!(acc.push(2, b"def").is_none());
        assert_eq!(acc.len(), 6);
        let b = acc.flush().unwrap();
        assert_eq!(b.items.len(), 2);
    }

    #[test]
    #[should_panic(expected = "exceeds batch capacity")]
    fn oversized_value_panics() {
        let mut acc = BatchAccumulator::new(4);
        acc.push(1, b"too long");
    }
}
