//! Incremental indexing (paper §4.1.4): "instead of indexing the whole
//! NVM device at the beginning, a dynamic incremental approach can be
//! adopted, which starts by indexing a portion of the memory, and as
//! time progresses, more addresses that were not initially mapped can
//! be added incrementally to DAP."
//!
//! [`IncrementalIndexer`] tracks which segments the engine has mapped
//! and feeds unmapped ones in batches.

use e2nvm_sim::LogicalSegment;

/// Tracks the frontier between mapped and not-yet-mapped segments.
#[derive(Debug, Clone)]
pub struct IncrementalIndexer {
    total: usize,
    mapped: usize,
}

impl IncrementalIndexer {
    /// Start with the first `initial` of `total` segments mapped.
    ///
    /// # Panics
    /// Panics if `initial > total`.
    pub fn new(total: usize, initial: usize) -> Self {
        assert!(initial <= total, "IncrementalIndexer: initial > total");
        Self {
            total,
            mapped: initial,
        }
    }

    /// Segments mapped so far.
    pub fn mapped(&self) -> usize {
        self.mapped
    }

    /// Segments not yet mapped.
    pub fn remaining(&self) -> usize {
        self.total - self.mapped
    }

    /// Whether everything is mapped.
    pub fn is_complete(&self) -> bool {
        self.mapped == self.total
    }

    /// The initially-mapped id range.
    pub fn initial_range(&self) -> impl Iterator<Item = LogicalSegment> {
        (0..self.mapped).map(LogicalSegment)
    }

    /// Take up to `count` previously unmapped segment ids, advancing the
    /// frontier.
    pub fn take_next(&mut self, count: usize) -> Vec<LogicalSegment> {
        let take = count.min(self.remaining());
        let start = self.mapped;
        self.mapped += take;
        (start..start + take).map(LogicalSegment).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_advances() {
        let mut ix = IncrementalIndexer::new(10, 4);
        assert_eq!(ix.mapped(), 4);
        assert_eq!(ix.remaining(), 6);
        assert_eq!(ix.initial_range().count(), 4);
        let batch = ix.take_next(3);
        assert_eq!(
            batch,
            vec![LogicalSegment(4), LogicalSegment(5), LogicalSegment(6)]
        );
        assert_eq!(ix.mapped(), 7);
        // Over-asking is clamped.
        let rest = ix.take_next(100);
        assert_eq!(rest.len(), 3);
        assert!(ix.is_complete());
        assert!(ix.take_next(5).is_empty());
    }

    #[test]
    #[should_panic(expected = "initial > total")]
    fn bad_initial_rejected() {
        IncrementalIndexer::new(3, 4);
    }
}
