//! Thread-safe serving (paper §5.1: "We utilize thread-safe methods in
//! E2-NVM. This is the case for the data structures that we utilize to
//! maintain address pools and mapping") with lazy background retraining
//! (§4.1.4): when a cluster's free list hits the low-water mark, a
//! snapshot goes to the [`BackgroundRetrainer`]; the serving path keeps
//! answering from the old model until the new one is ready, then swaps.

use crate::engine::E2Engine;
use crate::error::Result;
use crate::model::E2Model;
use crate::retrain::BackgroundRetrainer;
use e2nvm_sim::{DeviceStats, WriteReport};
use e2nvm_telemetry::{Event, TelemetryRegistry};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A clonable, thread-safe handle to an engine plus its background
/// retrainer.
///
/// Lock granularity: one mutex over the engine. The engine's hot path
/// (pad → predict → pop → device write) is microseconds, and the
/// expensive part — retraining — runs outside the lock on the worker
/// thread; only the snapshot and the model swap hold it.
#[derive(Clone)]
pub struct SharedEngine {
    inner: Arc<Inner>,
}

struct Inner {
    engine: Mutex<E2Engine>,
    retrainer: Mutex<BackgroundRetrainer>,
    retrain_seed: AtomicU64,
    /// Models installed via the background path (diagnostics).
    swaps: AtomicU64,
    /// When the in-flight background retrain was submitted (for the
    /// journal's retrain duration).
    retrain_started: Mutex<Option<Instant>>,
}

impl SharedEngine {
    /// Wrap a *trained* engine and spawn the retraining worker.
    ///
    /// # Panics
    /// Panics if the engine has not been trained.
    pub fn new(engine: E2Engine) -> Self {
        assert!(engine.is_trained(), "SharedEngine: engine must be trained");
        let seed = engine.config().seed ^ 0xBACC_6E55;
        Self {
            inner: Arc::new(Inner {
                engine: Mutex::new(engine),
                retrainer: Mutex::new(BackgroundRetrainer::spawn()),
                retrain_seed: AtomicU64::new(seed),
                swaps: AtomicU64::new(0),
                retrain_started: Mutex::new(None),
            }),
        }
    }

    /// Register the wrapped engine's metrics on `registry`, labeled with
    /// `shard`.
    pub fn attach_telemetry(&self, registry: &TelemetryRegistry, shard: usize) {
        self.inner.engine.lock().attach_telemetry(registry, shard);
    }

    /// Install a background-trained model and journal the swap.
    fn install_background_model(&self, model: E2Model) {
        let loss = model.history().train.last().map(|l| f64::from(l.total()));
        let duration_ms = self
            .inner
            .retrain_started
            .lock()
            .take()
            .map(|t| t.elapsed().as_millis() as u64)
            .unwrap_or(0);
        let mut engine = self.inner.engine.lock();
        engine.install_model_now(model);
        let telemetry = engine.telemetry();
        telemetry.record_event(Event::RetrainFinished {
            shard: telemetry.shard(),
            loss,
            duration_ms,
        });
        self.inner.swaps.fetch_add(1, Ordering::Relaxed);
    }

    /// PUT/UPDATE (Algorithm 1), then drive the retraining state
    /// machine: install a finished model if one is waiting, and submit a
    /// snapshot if a cluster just hit the threshold.
    pub fn put(&self, key: u64, value: &[u8]) -> Result<WriteReport> {
        let report = {
            let mut engine = self.inner.engine.lock();
            engine.put(key, value)?
        };
        self.pump_retraining();
        Ok(report)
    }

    /// Batched PUT: the whole batch runs through the engine's
    /// segment-packing path ([`E2Engine::put_many`]) under a single
    /// lock acquisition, and the retraining state machine is pumped
    /// once at the end instead of per key.
    pub fn put_many(&self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        let results = {
            let mut engine = self.inner.engine.lock();
            engine.put_many(pairs)
        };
        self.pump_retraining();
        results
    }

    /// GET.
    pub fn get(&self, key: u64) -> Result<Vec<u8>> {
        self.inner.engine.lock().get(key)
    }

    /// Batched GET under a single lock acquisition.
    pub fn get_many(&self, keys: &[u64]) -> Vec<Result<Vec<u8>>> {
        self.inner.engine.lock().get_many(keys)
    }

    /// DELETE (Algorithm 2).
    pub fn delete(&self, key: u64) -> Result<bool> {
        let existed = self.inner.engine.lock().delete(key)?;
        self.pump_retraining();
        Ok(existed)
    }

    /// SCAN over an inclusive key range.
    pub fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        self.inner.engine.lock().scan(lo..=hi)
    }

    /// SCAN over an inclusive key range, stopping after `limit` entries.
    pub fn scan_limit(&self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        self.inner.engine.lock().scan_limit(lo..=hi, limit)
    }

    /// Advance the lazy-retraining state machine. Called automatically
    /// after mutations; callable explicitly from a maintenance loop.
    pub fn pump_retraining(&self) {
        let mut retrainer = self.inner.retrainer.lock();
        // Install a finished model first (frees the worker).
        if let Some(model) = retrainer.try_take() {
            self.install_background_model(model);
        }
        if retrainer.is_pending() {
            return;
        }
        // Snapshot under the engine lock only if the threshold tripped.
        let (needs, cfg, snapshot, shard) = {
            let engine = self.inner.engine.lock();
            if !engine.needs_retrain() {
                return;
            }
            (
                true,
                engine.config().clone(),
                engine.training_snapshot(),
                engine.telemetry().shard(),
            )
        };
        if needs {
            let seed = self.inner.retrain_seed.fetch_add(1, Ordering::Relaxed);
            if retrainer.submit(&cfg, snapshot, seed) {
                *self.inner.retrain_started.lock() = Some(Instant::now());
                self.inner
                    .engine
                    .lock()
                    .telemetry()
                    .record_event(Event::RetrainStarted { shard });
            }
        }
    }

    /// Block until any in-flight retraining completes and is installed
    /// (tests / shutdown).
    pub fn finish_retraining(&self) {
        let model = {
            let mut retrainer = self.inner.retrainer.lock();
            retrainer.wait()
        };
        if let Some(model) = model {
            self.install_background_model(model);
        }
    }

    /// Background model swaps performed so far.
    pub fn model_swaps(&self) -> u64 {
        self.inner.swaps.load(Ordering::Relaxed)
    }

    /// Keys stored.
    pub fn len(&self) -> usize {
        self.inner.engine.lock().len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free segments available.
    pub fn free_count(&self) -> usize {
        self.inner.engine.lock().free_count()
    }

    /// Segments permanently retired by wear-out.
    pub fn retired_count(&self) -> usize {
        self.inner.engine.lock().retired_count()
    }

    /// Physical slots quarantined on the controller (equals
    /// [`SharedEngine::retired_count`] under the identity mapping).
    pub fn retired_physical_count(&self) -> usize {
        self.inner.engine.lock().retired_physical_count()
    }

    /// Total segments this engine's controller manages (free + in use +
    /// retired) — the stable denominator for wear fractions.
    pub fn num_segments(&self) -> usize {
        self.inner.engine.lock().controller().num_segments()
    }

    /// Snapshot of the device statistics.
    pub fn device_stats(&self) -> DeviceStats {
        self.inner.engine.lock().device_stats().clone()
    }

    /// Reset the device statistics (e.g. after a warm-up phase).
    pub fn reset_device_stats(&self) {
        self.inner.engine.lock().reset_device_stats();
    }

    /// Snapshot of the serving-path prediction counters.
    pub fn prediction_stats(&self) -> crate::engine::PredictionStats {
        self.inner.engine.lock().prediction_stats()
    }

    /// Run a closure with exclusive engine access (admin operations).
    pub fn with_engine<T>(&self, f: impl FnOnce(&mut E2Engine) -> T) -> T {
        f(&mut self.inner.engine.lock())
    }
}

impl std::fmt::Debug for SharedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEngine")
            .field("keys", &self.len())
            .field("model_swaps", &self.model_swaps())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::E2Config;
    use crate::padding::PaddingType;
    use e2nvm_sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn shared(segments: usize, seg_bytes: usize) -> SharedEngine {
        let dev = NvmDevice::new(
            DeviceConfig::builder()
                .segment_bytes(seg_bytes)
                .num_segments(segments)
                .build()
                .unwrap(),
        );
        let mut controller = MemoryController::without_wear_leveling(dev);
        let mut rng = StdRng::seed_from_u64(3);
        for i in 0..segments {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..seg_bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            controller.seed(LogicalSegment(i), &content).unwrap();
        }
        let cfg = E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(4)
            .joint_epochs(1)
            .retrain_min_free(2)
            .padding_type(PaddingType::Zero)
            .build()
            .unwrap();
        let mut engine = E2Engine::new(controller, cfg).unwrap();
        engine.train().unwrap();
        SharedEngine::new(engine)
    }

    #[test]
    fn concurrent_puts_and_gets_are_consistent() {
        let shared = shared(128, 32);
        let threads: Vec<_> = (0..4u64)
            .map(|t| {
                let s = shared.clone();
                std::thread::spawn(move || {
                    // Disjoint key ranges per thread.
                    for i in 0..24u64 {
                        let key = t * 100 + i;
                        let value = vec![(t as u8) ^ (i as u8); 24];
                        s.put(key, &value).unwrap();
                        assert_eq!(s.get(key).unwrap(), value, "t{t} key{key}");
                        if i % 3 == 0 {
                            assert!(s.delete(key).unwrap());
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        // 24 - 8 deleted per thread.
        assert_eq!(shared.len(), 4 * 16);
        // Every surviving key reads back.
        for t in 0..4u64 {
            for i in 0..24u64 {
                if i % 3 != 0 {
                    let key = t * 100 + i;
                    assert_eq!(shared.get(key).unwrap(), vec![(t as u8) ^ (i as u8); 24]);
                }
            }
        }
    }

    #[test]
    fn background_retraining_triggers_and_swaps() {
        let shared = shared(48, 32);
        // Drain the pool enough to trip the per-cluster threshold.
        for key in 0..40u64 {
            if shared.put(key, &[0u8; 32]).is_err() {
                break;
            }
        }
        // Pump until the worker finishes and the swap lands.
        shared.finish_retraining();
        shared.pump_retraining();
        assert!(
            shared.model_swaps() >= 1,
            "no background swap happened (swaps={})",
            shared.model_swaps()
        );
        // Data still intact after the swap.
        assert_eq!(shared.get(0).unwrap(), vec![0u8; 32]);
    }

    #[test]
    fn clones_share_state() {
        let a = shared(32, 32);
        let b = a.clone();
        a.put(5, b"via a").unwrap();
        assert_eq!(b.get(5).unwrap(), b"via a");
        assert_eq!(b.len(), 1);
        b.delete(5).unwrap();
        assert!(a.is_empty());
    }

    #[test]
    fn scan_under_shared_handle() {
        let s = shared(32, 32);
        for k in [3u64, 1, 7] {
            s.put(k, &k.to_le_bytes()).unwrap();
        }
        let keys: Vec<u64> = s.scan(1, 5).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![1, 3]);
    }
}
