//! # e2nvm-core — the E2-NVM storage layer (the paper's contribution)
//!
//! E2-NVM reduces NVM bit flips — and with them write energy and wear —
//! by *choosing where to write*: free memory segments are clustered by
//! content similarity with a jointly trained VAE + K-means model, and
//! each incoming value is routed to a free segment whose resident
//! content already resembles it, so the data-comparison write programs
//! only a few bits.
//!
//! The moving parts, matching the paper's Figure 3:
//!
//! * [`E2Model`] — the trained encoder + centroids ([`model`]).
//! * [`DynamicAddressPool`] — cluster → free-address lists ([`dap`]).
//! * [`Padder`] — fitting variable-size values to the fixed model input
//!   ([`padding`]; 7 types × 3 locations, §4 of the paper).
//! * [`E2Engine`] — Algorithms 1 & 2 (write/delete) plus GET/SCAN over a
//!   simulated NVM device ([`engine`]).
//! * [`retrain::BackgroundRetrainer`] — lazy retraining when a cluster's
//!   free list runs low (§4.1.4).
//! * [`SharedEngine`] / [`ShardedEngine`] — thread-safe serving (§5.1):
//!   one mutex-guarded engine, or N independent engines over disjoint
//!   segment partitions with hash-routed keys ([`concurrent`],
//!   [`sharded`]).
//! * [`kselect`] — SSE elbow + energy valley for picking K (Figure 8).
//! * [`batch`] — grouping small writes into segment-sized batches.
//!
//! ```no_run
//! use e2nvm_core::{E2Config, E2Engine};
//! use e2nvm_sim::{DeviceConfig, MemoryController, NvmDevice};
//!
//! let device = NvmDevice::new(
//!     DeviceConfig::builder().segment_bytes(256).num_segments(1024).build().unwrap(),
//! );
//! let mut engine = E2Engine::new(
//!     MemoryController::without_wear_leveling(device),
//!     E2Config::default(),
//! ).unwrap();
//! engine.train().unwrap();
//! engine.put(42, b"value").unwrap();
//! assert_eq!(engine.get(42).unwrap(), b"value");
//! ```

pub mod batch;
pub mod concurrent;
pub mod config;
pub mod dap;
pub mod engine;
pub mod error;
pub mod incremental;
pub mod kselect;
pub mod model;
pub mod padding;
pub mod retrain;
pub mod sharded;
pub mod telemetry;
pub mod writer;

pub use batch::{Batch, BatchAccumulator};
pub use concurrent::SharedEngine;
pub use config::{E2Config, E2ConfigBuilder};
pub use dap::{DapError, DynamicAddressPool};
pub use engine::{E2Engine, EngineState, PredictionStats};
pub use error::{E2Error, Result};
pub use incremental::IncrementalIndexer;
pub use kselect::{sweep_k, KSelection, KSweepPoint};
pub use model::E2Model;
pub use padding::{Padder, PaddingLocation, PaddingType};
pub use retrain::BackgroundRetrainer;
pub use sharded::ShardedEngine;
pub use telemetry::EngineTelemetry;
pub use writer::BatchedWriter;
