//! Sharded serving: N independent engines over disjoint slices of the
//! device's segment space.
//!
//! [`SharedEngine`] serialises every operation on
//! one mutex, which caps throughput at one core no matter how many
//! clients call in (the paper's §5.1 thread-safe serving). A
//! [`ShardedEngine`] removes that cap structurally: the segment space is
//! partitioned with [`e2nvm_sim::partition_controllers`], each shard
//! gets a *private* [`E2Engine`] — its own VAE+K-means model, dynamic
//! address pool, padder, RNG, and background retrainer — and keys are
//! routed to shards by hash. Operations on different shards share no
//! locks, so they proceed in parallel; operations on the same key
//! always hit the same shard, preserving per-key linearizability.
//!
//! Cross-shard observability is by aggregation: device counters merge
//! with [`DeviceStats::merge`] and serving-path counters with
//! [`PredictionStats::merge`], so the paper's metrics (bit flips,
//! energy, latency) remain exact sums of per-shard accounting.

use crate::concurrent::SharedEngine;
use crate::config::E2Config;
use crate::engine::{E2Engine, PredictionStats};
use crate::error::{E2Error, Result};
use e2nvm_sim::{DeviceStats, MemoryController, WriteReport};
use e2nvm_telemetry::TelemetryRegistry;

/// SplitMix64 finalizer: decorrelates adjacent keys before routing.
#[inline]
fn hash64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A clonable handle to N independent shards, each a [`SharedEngine`]
/// over its own partition of the segment space.
#[derive(Clone)]
pub struct ShardedEngine {
    shards: Vec<SharedEngine>,
}

impl ShardedEngine {
    /// Wrap already-trained engines, one per shard.
    ///
    /// # Panics
    /// Panics if `engines` is empty or any engine is untrained.
    pub fn new(engines: Vec<E2Engine>) -> Self {
        assert!(!engines.is_empty(), "ShardedEngine: need >= 1 shard");
        Self {
            shards: engines.into_iter().map(SharedEngine::new).collect(),
        }
    }

    /// Assemble from existing shared handles (e.g. to reuse engines that
    /// were trained elsewhere).
    ///
    /// # Panics
    /// Panics if `shards` is empty.
    pub fn from_shared(shards: Vec<SharedEngine>) -> Self {
        assert!(!shards.is_empty(), "ShardedEngine: need >= 1 shard");
        Self { shards }
    }

    /// Build and train one engine per controller. `cfg.num_shards` is
    /// ignored in favour of `controllers.len()` (the partition is the
    /// source of truth); each shard trains on its own resident contents
    /// with a seed derived from `cfg.seed` so the shards' models are
    /// decorrelated. Shard 0 uses `cfg.seed` itself, so a single-shard
    /// build is bit-identical to an unsharded [`E2Engine`] with the same
    /// configuration.
    pub fn train(controllers: Vec<MemoryController>, cfg: &E2Config) -> Result<Self> {
        if controllers.is_empty() {
            return Err(E2Error::Config("ShardedEngine: need >= 1 shard".into()));
        }
        let engines = controllers
            .into_iter()
            .enumerate()
            .map(|(i, controller)| {
                let shard_cfg = E2Config {
                    // Golden-ratio stride: shard 0 keeps cfg.seed, later
                    // shards get decorrelated streams.
                    seed: cfg
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ..cfg.clone()
                };
                let mut engine = E2Engine::new(controller, shard_cfg)?;
                engine.train()?;
                Ok(engine)
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(Self::new(engines))
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Register every shard's metrics on one shared `registry`, each
    /// labeled with its shard index. Aggregate across shards at read
    /// time with [`e2nvm_telemetry::TelemetryRegistry::counter_total`]
    /// (label-summed counters are exact, mirroring
    /// [`ShardedEngine::device_stats`]'s merge).
    pub fn attach_telemetry(&self, registry: &TelemetryRegistry) {
        for (i, shard) in self.shards.iter().enumerate() {
            shard.attach_telemetry(registry, i);
        }
    }

    /// The shard a key routes to. Deterministic, uniform over shards.
    #[inline]
    pub fn shard_for(&self, key: u64) -> usize {
        ((hash64(key) as u128 * self.shards.len() as u128) >> 64) as usize
    }

    /// Borrow one shard's shared handle.
    pub fn shard(&self, i: usize) -> &SharedEngine {
        &self.shards[i]
    }

    /// Iterate over the shard handles.
    pub fn shards(&self) -> impl Iterator<Item = &SharedEngine> {
        self.shards.iter()
    }

    /// PUT/UPDATE, routed to the key's shard.
    pub fn put(&self, key: u64, value: &[u8]) -> Result<WriteReport> {
        self.shards[self.shard_for(key)].put(key, value)
    }

    /// GET, routed to the key's shard.
    pub fn get(&self, key: u64) -> Result<Vec<u8>> {
        self.shards[self.shard_for(key)].get(key)
    }

    /// DELETE, routed to the key's shard.
    pub fn delete(&self, key: u64) -> Result<bool> {
        self.shards[self.shard_for(key)].delete(key)
    }

    /// Batched PUT: pairs are grouped by destination shard and each
    /// group runs through that shard's segment-packing batch path
    /// ([`SharedEngine::put_many`]) under one lock acquisition.
    /// Results come back in the order of `pairs`. Within a shard the
    /// shard's batch order follows `pairs` order, so duplicate keys
    /// still resolve last-occurrence-wins.
    pub fn put_many(&self, pairs: &[(u64, &[u8])]) -> Vec<Result<()>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &(key, _)) in pairs.iter().enumerate() {
            by_shard[self.shard_for(key)].push(i);
        }
        let mut out: Vec<Option<Result<()>>> = (0..pairs.len()).map(|_| None).collect();
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let group: Vec<(u64, &[u8])> = idxs.iter().map(|&i| pairs[i]).collect();
            let results = self.shards[shard].put_many(&group);
            for (&i, r) in idxs.iter().zip(results) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every pair routed to exactly one shard"))
            .collect()
    }

    /// Batched GET: keys are grouped by shard, served under one lock
    /// acquisition per shard, and reassembled into `keys` order.
    pub fn get_many(&self, keys: &[u64]) -> Vec<Result<Vec<u8>>> {
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        for (i, &key) in keys.iter().enumerate() {
            by_shard[self.shard_for(key)].push(i);
        }
        let mut out: Vec<Option<Result<Vec<u8>>>> = (0..keys.len()).map(|_| None).collect();
        for (shard, idxs) in by_shard.iter().enumerate() {
            if idxs.is_empty() {
                continue;
            }
            let group: Vec<u64> = idxs.iter().map(|&i| keys[i]).collect();
            let results = self.shards[shard].get_many(&group);
            for (&i, r) in idxs.iter().zip(results) {
                out[i] = Some(r);
            }
        }
        out.into_iter()
            .map(|r| r.expect("every key routed to exactly one shard"))
            .collect()
    }

    /// SCAN over an inclusive key range: every shard contributes its
    /// matches (keys are hash-routed, so any shard may hold any part of
    /// the range), merged into key order.
    pub fn scan(&self, lo: u64, hi: u64) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.scan(lo, hi)?);
        }
        // Shards hold disjoint keys, so an unstable sort is safe.
        out.sort_unstable_by_key(|(k, _)| *k);
        Ok(out)
    }

    /// SCAN stopping after `limit` entries in global key order. Keys
    /// are hash-routed, so any shard may hold any of the `limit`
    /// smallest matches: each shard contributes up to `limit` entries
    /// (early-stopped inside its index walk), then the merged result is
    /// truncated.
    pub fn scan_limit(&self, lo: u64, hi: u64, limit: usize) -> Result<Vec<(u64, Vec<u8>)>> {
        let mut out: Vec<(u64, Vec<u8>)> = Vec::new();
        for shard in &self.shards {
            out.extend(shard.scan_limit(lo, hi, limit)?);
        }
        out.sort_unstable_by_key(|(k, _)| *k);
        out.truncate(limit);
        Ok(out)
    }

    /// Advance every shard's lazy-retraining state machine.
    pub fn pump_retraining(&self) {
        for shard in &self.shards {
            shard.pump_retraining();
        }
    }

    /// Block until every shard's in-flight retraining (if any) completes
    /// and is installed.
    pub fn finish_retraining(&self) {
        for shard in &self.shards {
            shard.finish_retraining();
        }
    }

    /// Background model swaps across all shards.
    pub fn model_swaps(&self) -> u64 {
        self.shards.iter().map(SharedEngine::model_swaps).sum()
    }

    /// Keys stored across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(SharedEngine::len).sum()
    }

    /// Whether no shard holds any key.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Free segments available across all shards.
    pub fn free_count(&self) -> usize {
        self.shards.iter().map(SharedEngine::free_count).sum()
    }

    /// Segments permanently retired by wear-out across all shards.
    pub fn retired_count(&self) -> usize {
        self.shards.iter().map(SharedEngine::retired_count).sum()
    }

    /// Physical slots quarantined across all shard controllers — what
    /// the HEALTH wire summary reports.
    pub fn retired_physical_count(&self) -> usize {
        self.shards
            .iter()
            .map(SharedEngine::retired_physical_count)
            .sum()
    }

    /// Total segments across all shards (free + in use + retired) —
    /// the stable denominator for wear fractions.
    pub fn num_segments(&self) -> usize {
        self.shards.iter().map(SharedEngine::num_segments).sum()
    }

    /// Device statistics aggregated over all shards.
    pub fn device_stats(&self) -> DeviceStats {
        let mut total = DeviceStats::default();
        for shard in &self.shards {
            total.merge(&shard.device_stats());
        }
        total
    }

    /// Reset every shard's device statistics.
    pub fn reset_device_stats(&self) {
        for shard in &self.shards {
            shard.reset_device_stats();
        }
    }

    /// Serving-path prediction counters aggregated over all shards.
    pub fn prediction_stats(&self) -> PredictionStats {
        let mut total = PredictionStats::default();
        for shard in &self.shards {
            total.merge(&shard.prediction_stats());
        }
        total
    }

    /// Run a closure with exclusive access to one shard's engine.
    pub fn with_shard_engine<T>(&self, i: usize, f: impl FnOnce(&mut E2Engine) -> T) -> T {
        self.shards[i].with_engine(f)
    }
}

impl std::fmt::Debug for ShardedEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngine")
            .field("shards", &self.shards.len())
            .field("keys", &self.len())
            .field("free", &self.free_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::padding::PaddingType;
    use e2nvm_sim::{partition_controllers, DeviceConfig, LogicalSegment};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn test_config(seg_bytes: usize) -> E2Config {
        E2Config::builder()
            .fast(seg_bytes, 2)
            .pretrain_epochs(4)
            .joint_epochs(1)
            .retrain_min_free(0)
            .padding_type(PaddingType::Zero)
            .build()
            .unwrap()
    }

    fn seed_families(mc: &mut MemoryController, seg_bytes: usize, rng: &mut StdRng) {
        for i in 0..mc.num_segments() {
            let base = if i % 2 == 0 { 0x00u8 } else { 0xFF };
            let content: Vec<u8> = (0..seg_bytes)
                .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
                .collect();
            mc.seed(LogicalSegment(i), &content).unwrap();
        }
    }

    fn sharded(num_shards: usize, total_segments: usize, seg_bytes: usize) -> ShardedEngine {
        let dev_cfg = DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(total_segments)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let controllers: Vec<MemoryController> = partition_controllers(&dev_cfg, num_shards)
            .unwrap()
            .into_iter()
            .map(|(_, mut mc)| {
                seed_families(&mut mc, seg_bytes, &mut rng);
                mc
            })
            .collect();
        ShardedEngine::train(controllers, &test_config(seg_bytes)).unwrap()
    }

    #[test]
    fn routing_is_deterministic_and_in_range() {
        let s = sharded(4, 64, 32);
        for key in 0..256u64 {
            let a = s.shard_for(key);
            assert_eq!(a, s.shard_for(key));
            assert!(a < 4);
        }
    }

    #[test]
    fn routing_spreads_keys() {
        let s = sharded(4, 64, 32);
        let mut counts = [0usize; 4];
        for key in 0..1000u64 {
            counts[s.shard_for(key)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (150..=350).contains(&c),
                "shard {i} got {c}/1000 keys — router badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn crud_roundtrip_across_shards() {
        let s = sharded(4, 128, 32);
        for key in 0..48u64 {
            s.put(key, &key.to_le_bytes()).unwrap();
        }
        assert_eq!(s.len(), 48);
        for key in 0..48u64 {
            assert_eq!(s.get(key).unwrap(), key.to_le_bytes());
        }
        for key in (0..48u64).step_by(2) {
            assert!(s.delete(key).unwrap());
        }
        assert_eq!(s.len(), 24);
        assert_eq!(s.get(2), Err(E2Error::KeyNotFound(2)));
        assert_eq!(s.get(3).unwrap(), 3u64.to_le_bytes());
    }

    #[test]
    fn batch_ops_roundtrip_across_shards_in_input_order() {
        let s = sharded(4, 128, 32);
        let values: Vec<(u64, Vec<u8>)> =
            (0..40u64).map(|k| (k, k.to_le_bytes().to_vec())).collect();
        let pairs: Vec<(u64, &[u8])> = values.iter().map(|(k, v)| (*k, v.as_slice())).collect();
        let results = s.put_many(&pairs);
        assert_eq!(results.len(), 40);
        assert!(results.iter().all(Result::is_ok));
        // get_many must return results aligned with the *request*
        // order, not shard order — interleave hits and misses.
        let keys: Vec<u64> = vec![39, 1000, 0, 17, 1001, 23];
        let got = s.get_many(&keys);
        assert_eq!(got[0].as_deref(), Ok(&39u64.to_le_bytes()[..]));
        assert_eq!(got[1], Err(E2Error::KeyNotFound(1000)));
        assert_eq!(got[2].as_deref(), Ok(&0u64.to_le_bytes()[..]));
        assert_eq!(got[3].as_deref(), Ok(&17u64.to_le_bytes()[..]));
        assert_eq!(got[4], Err(E2Error::KeyNotFound(1001)));
        assert_eq!(got[5].as_deref(), Ok(&23u64.to_le_bytes()[..]));
    }

    #[test]
    fn scan_merges_shards_in_key_order() {
        let s = sharded(3, 96, 32);
        for key in [9u64, 1, 5, 30, 12, 7] {
            s.put(key, &key.to_le_bytes()).unwrap();
        }
        let keys: Vec<u64> = s.scan(2, 29).unwrap().into_iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec![5, 7, 9, 12]);
    }

    #[test]
    fn single_shard_matches_unsharded_engine() {
        // With one shard, ShardedEngine::train must be bit-identical to
        // an unsharded E2Engine on the same device content and seed.
        let seg_bytes = 32;
        let dev_cfg = DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(48)
            .build()
            .unwrap();
        let cfg = test_config(seg_bytes);

        let mut rng = StdRng::seed_from_u64(7);
        let mut mc = partition_controllers(&dev_cfg, 1).unwrap().remove(0).1;
        seed_families(&mut mc, seg_bytes, &mut rng);
        let sharded = ShardedEngine::train(vec![mc], &cfg).unwrap();

        let mut rng = StdRng::seed_from_u64(7);
        let mut mc = partition_controllers(&dev_cfg, 1).unwrap().remove(0).1;
        seed_families(&mut mc, seg_bytes, &mut rng);
        let mut single = E2Engine::new(mc, cfg).unwrap();
        single.train().unwrap();

        for key in 0..20u64 {
            let a = sharded.put(key, &[key as u8; 24]).unwrap();
            let b = single.put(key, &[key as u8; 24]).unwrap();
            assert_eq!(a.bits_flipped, b.bits_flipped, "key {key}");
        }
        assert_eq!(sharded.device_stats(), *single.device_stats());
    }

    #[test]
    fn free_count_and_stats_aggregate() {
        let s = sharded(4, 64, 32);
        let free_before = s.free_count();
        assert_eq!(free_before, 64);
        s.put(1, &[0u8; 32]).unwrap();
        s.put(2, &[0xFFu8; 32]).unwrap();
        assert_eq!(s.free_count(), free_before - 2);
        let stats = s.device_stats();
        assert_eq!(stats.writes, 2);
        assert_eq!(s.prediction_stats().predictions, 2);
    }
}
