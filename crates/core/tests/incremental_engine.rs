//! Integration tests for the §4.1.4 features: incremental indexing and
//! automatic K selection.

use e2nvm_core::{E2Config, E2Engine, E2Error, PaddingType};
use e2nvm_sim::{DeviceConfig, LogicalSegment, MemoryController, NvmDevice};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn engine(segments: usize, seg_bytes: usize, k: usize) -> E2Engine {
    let dev = NvmDevice::new(
        DeviceConfig::builder()
            .segment_bytes(seg_bytes)
            .num_segments(segments)
            .build()
            .unwrap(),
    );
    let mut controller = MemoryController::without_wear_leveling(dev);
    let mut rng = StdRng::seed_from_u64(11);
    for i in 0..segments {
        let base = if i % 2 == 0 { 0x0Fu8 } else { 0xF0 };
        let content: Vec<u8> = (0..seg_bytes)
            .map(|_| if rng.gen::<f32>() < 0.05 { !base } else { base })
            .collect();
        controller.seed(LogicalSegment(i), &content).unwrap();
    }
    let cfg = E2Config::builder()
        .fast(seg_bytes, k)
        .pretrain_epochs(6)
        .joint_epochs(1)
        .padding_type(PaddingType::Zero)
        .build()
        .unwrap();
    E2Engine::new(controller, cfg).unwrap()
}

#[test]
fn partial_training_limits_pool_then_grows() {
    let mut e = engine(64, 32, 2);
    e.train_partial(16).unwrap();
    assert_eq!(e.free_count(), 16);
    // Writes only land on mapped segments.
    for key in 0..16u64 {
        e.put(key, &[0x0Fu8; 32]).unwrap();
    }
    assert_eq!(e.put(99, &[0x0Fu8; 32]), Err(E2Error::OutOfSpace));
    // Extend coverage; capacity appears without retraining.
    assert_eq!(e.index_more(20).unwrap(), 20);
    assert_eq!(e.free_count(), 20);
    e.put(99, &[0x0Fu8; 32]).unwrap();
    // Remaining frontier: 64 - 16 - 20 = 28.
    assert_eq!(e.index_more(100).unwrap(), 28);
    assert_eq!(e.index_more(100).unwrap(), 0);
}

#[test]
fn partial_training_validates_bounds() {
    let mut e = engine(16, 32, 2);
    assert!(matches!(e.train_partial(0), Err(E2Error::Config(_))));
    assert!(matches!(e.train_partial(17), Err(E2Error::Config(_))));
}

#[test]
fn index_more_without_partial_is_noop() {
    let mut e = engine(16, 32, 2);
    e.train().unwrap();
    assert_eq!(e.index_more(8).unwrap(), 0);
    assert_eq!(e.free_count(), 16);
}

#[test]
fn incrementally_indexed_segments_are_classified() {
    let mut e = engine(64, 32, 2);
    e.train_partial(32).unwrap();
    e.index_more(32).unwrap();
    // The placement must still route by content: an 0x0F-ish value goes
    // to an even (0x0F-family) segment.
    let (seg, report) = e.place_value(&[0x0Fu8; 32]).unwrap();
    assert_eq!(seg.index() % 2, 0, "wrong family segment {seg}");
    assert!(report.bits_flipped < 40);
}

#[test]
fn auto_k_trains_with_selected_k() {
    let mut e = engine(48, 32, 1);
    let chosen = e.train_auto_k(&[2, 4], 10_000).unwrap();
    assert!(chosen == 2 || chosen == 4, "chosen {chosen}");
    assert_eq!(e.config().k, chosen);
    assert!(e.is_trained());
    assert_eq!(e.model().unwrap().k(), chosen);
    // Engine serves normally afterwards.
    e.put(1, &[0xF0u8; 32]).unwrap();
    assert_eq!(e.get(1).unwrap(), vec![0xF0u8; 32]);
}
