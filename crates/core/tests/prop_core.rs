//! Property tests for the core invariants DESIGN.md calls out:
//! padding output width and stored-bytes neutrality, DAP conservation
//! under interleaved traffic, and batch accumulator integrity.

use e2nvm_core::{BatchAccumulator, DynamicAddressPool, Padder, PaddingLocation, PaddingType};
use e2nvm_sim::LogicalSegment;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn any_location() -> impl Strategy<Value = PaddingLocation> {
    prop_oneof![
        Just(PaddingLocation::Beginning),
        Just(PaddingLocation::Middle),
        Just(PaddingLocation::End),
    ]
}

fn any_type() -> impl Strategy<Value = PaddingType> {
    prop_oneof![
        Just(PaddingType::Zero),
        Just(PaddingType::One),
        Just(PaddingType::Random),
        Just(PaddingType::InputBased),
        Just(PaddingType::DatasetBased),
        Just(PaddingType::MemoryBased),
        Just(PaddingType::Learned), // untrained: falls back gracefully
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Padding always produces exactly the model width, values are
    /// bits, and the data bits appear intact at the configured
    /// location.
    #[test]
    fn padding_width_and_data_intact(
        data in proptest::collection::vec(any::<u8>(), 1..24),
        extra_bytes in 0usize..16,
        loc in any_location(),
        ptype in any_type(),
        ratio in 0.0f32..1.0,
        seed in 0u64..1000,
    ) {
        let target_bits = (data.len() + extra_bytes) * 8;
        let mut padder = Padder::new(loc, ptype);
        padder.observe(&data);
        padder.set_memory_ratio(ratio);
        let mut rng = StdRng::seed_from_u64(seed);
        let out = padder.pad(&data, target_bits, &mut rng);
        prop_assert_eq!(out.len(), target_bits);
        prop_assert!(out.iter().all(|&b| b == 0.0 || b == 1.0));
        // Locate the data bits.
        let q = target_bits - data.len() * 8;
        let start = match loc {
            PaddingLocation::Beginning => q,
            PaddingLocation::Middle => q / 2,
            PaddingLocation::End => 0,
        };
        let expect = e2nvm_ml::data::bytes_to_features(&data);
        prop_assert_eq!(
            &out[start..start + expect.len()],
            &expect[..],
            "data bits not intact at {:?}", loc
        );
    }

    /// DAP conservation: across arbitrary interleavings of push/pop, no
    /// address is lost, duplicated, or handed out twice.
    #[test]
    fn dap_conservation(
        ops in proptest::collection::vec((any::<bool>(), 0usize..8), 1..200),
        k in 1usize..6,
    ) {
        let n = 64;
        let mut dap = DynamicAddressPool::new(k, n, 0);
        for i in 0..n {
            dap.push(i % k, LogicalSegment(i)).unwrap();
        }
        let mut held: Vec<LogicalSegment> = Vec::new();
        for (is_pop, c) in ops {
            let cluster = c % k;
            if is_pop {
                if let Some(seg) = dap.pop(cluster) {
                    prop_assert!(!dap.is_free(seg), "popped segment still free");
                    held.push(seg);
                }
            } else if let Some(seg) = held.pop() {
                dap.push(cluster, seg).unwrap();
            }
            prop_assert_eq!(dap.free_count() + held.len(), n);
        }
        // Every held segment is distinct.
        let mut ids: Vec<usize> = held.iter().map(|s| s.index()).collect();
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), held.len());
        // Double free is always rejected.
        if let Some(&seg) = held.first() {
            dap.push(0, seg).unwrap();
            prop_assert!(dap.push(0, seg).is_err());
        }
    }

    /// Quarantine invariant: once a segment is retired, the pool never
    /// hands it out again — not from `pop`, not after recycling
    /// attempts, not across a `rebuild` — and conservation holds over
    /// the shrunken capacity.
    #[test]
    fn dap_never_hands_out_retired(
        ops in proptest::collection::vec((0u8..4, 0usize..16), 1..250),
        k in 1usize..5,
    ) {
        let n = 32;
        let mut dap = DynamicAddressPool::new(k, n, 0);
        for i in 0..n {
            dap.push(i % k, LogicalSegment(i)).unwrap();
        }
        let mut held: Vec<LogicalSegment> = Vec::new();
        let mut retired: Vec<LogicalSegment> = Vec::new();
        for (op, x) in ops {
            match op {
                // Pop from some cluster.
                0 | 1 => {
                    if let Some(seg) = dap.pop(x % k) {
                        prop_assert!(!dap.is_retired(seg), "pop handed out a retired segment");
                        held.push(seg);
                    }
                }
                // Recycle a held segment.
                2 => {
                    if let Some(seg) = held.pop() {
                        dap.push(x % k, seg).unwrap();
                    }
                }
                // Retire: either a held segment (wore out mid-write) or
                // a free one (proactive scrubbing).
                _ => {
                    let seg = if x % 2 == 0 {
                        held.pop()
                    } else {
                        dap.pop_with_fallback(&(0..k).collect::<Vec<_>>()).map(|(s, _)| s)
                    };
                    if let Some(seg) = seg {
                        prop_assert!(dap.retire(seg));
                        prop_assert!(dap.push(0, seg).is_err(), "retired segment re-entered pool");
                        retired.push(seg);
                    }
                }
            }
            prop_assert_eq!(
                dap.free_count() + held.len() + retired.len(),
                n,
                "capacity not conserved under retirement"
            );
            prop_assert_eq!(dap.retired_count(), retired.len());
        }
        // A retrain-style rebuild classifying *every* segment must drop
        // exactly the retired ones.
        let assignments: Vec<(LogicalSegment, usize)> =
            (0..n).map(|i| (LogicalSegment(i), i % k)).collect();
        dap.rebuild(k, &assignments);
        prop_assert_eq!(dap.free_count(), n - retired.len());
        for seg in &retired {
            prop_assert!(!dap.is_free(*seg), "rebuild resurrected a retired segment");
            prop_assert!(dap.is_retired(*seg));
        }
    }

    /// Batch accumulator: items never overlap, never cross the
    /// capacity, and every pushed byte is recoverable.
    #[test]
    fn batch_items_tile_the_buffer(
        values in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..12), 1..40),
    ) {
        let capacity = 32;
        let mut acc = BatchAccumulator::new(capacity);
        let mut batches = Vec::new();
        for (i, v) in values.iter().enumerate() {
            if let Some(b) = acc.push(i as u64, v) {
                batches.push(b);
            }
        }
        if let Some(b) = acc.flush() {
            batches.push(b);
        }
        let mut seen = 0usize;
        for batch in &batches {
            prop_assert!(batch.data.len() <= capacity);
            let mut cursor = 0;
            for &(key, off, len) in &batch.items {
                prop_assert_eq!(off, cursor, "gap or overlap in batch");
                prop_assert_eq!(batch.data[off..off + len].to_vec(),
                    values[key as usize].clone());
                cursor = off + len;
                seen += 1;
            }
            prop_assert_eq!(cursor, batch.data.len());
        }
        prop_assert_eq!(seen, values.len(), "items lost or duplicated");
    }
}
