//! Random-number utilities: seeded construction and Gaussian sampling
//! (Box–Muller; the `rand` crate alone ships no normal distribution).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create the workspace-standard deterministic RNG from a seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// One standard-normal sample via Box–Muller.
pub fn normal<R: Rng>(rng: &mut R) -> f32 {
    // Avoid ln(0).
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Fill a slice with N(0, std²) samples.
pub fn fill_normal<R: Rng>(rng: &mut R, out: &mut [f32], std: f32) {
    for v in out {
        *v = normal(rng) * std;
    }
}

/// Sample an index in `0..weights.len()` proportionally to `weights`.
/// Falls back to uniform if all weights are zero.
///
/// # Panics
/// Panics if `weights` is empty.
pub fn weighted_index<R: Rng>(rng: &mut R, weights: &[f32]) -> usize {
    assert!(!weights.is_empty(), "weighted_index: empty weights");
    let total: f32 = weights.iter().sum();
    if total <= 0.0 {
        return rng.gen_range(0..weights.len());
    }
    let mut target = rng.gen_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_moments_roughly_standard() {
        let mut rng = seeded(1);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn fill_normal_respects_std() {
        let mut rng = seeded(2);
        let mut buf = vec![0.0f32; 10_000];
        fill_normal(&mut rng, &mut buf, 0.1);
        let var: f32 = buf.iter().map(|v| v * v).sum::<f32>() / buf.len() as f32;
        assert!((var - 0.01).abs() < 0.002, "var={var}");
    }

    #[test]
    fn weighted_index_prefers_heavy_weight() {
        let mut rng = seeded(3);
        let weights = [0.0, 0.0, 10.0, 0.1];
        let mut counts = [0usize; 4];
        for _ in 0..1000 {
            counts[weighted_index(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[1], 0);
        assert!(counts[2] > 900);
    }

    #[test]
    fn weighted_index_zero_weights_uniform() {
        let mut rng = seeded(4);
        let weights = [0.0f32; 5];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(weighted_index(&mut rng, &weights));
        }
        assert!(seen.len() > 1);
    }

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<f32> = {
            let mut r = seeded(9);
            (0..5).map(|_| normal(&mut r)).collect()
        };
        let b: Vec<f32> = {
            let mut r = seeded(9);
            (0..5).map(|_| normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
