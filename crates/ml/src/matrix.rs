//! A small dense row-major `f32` matrix — the only tensor type the ML
//! substrate needs. Operations are written cache-consciously (ikj
//! matmul, fused map/zip) following the Rust Performance Book's advice
//! to keep hot loops allocation-free.

use std::fmt;

/// Dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Take ownership of a row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} != {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Build from row slices (each must have the same length).
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: empty input");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The raw row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// The raw row-major buffer, mutably.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Matrix product `self · other` (ikj loop order).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
            for (k, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ · other` without materializing the transpose.
    pub fn t_matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "t_matmul: ({}x{})ᵀ · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for r in 0..self.rows {
            let a_row = self.row(r);
            let b_row = other.row(r);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose.
    pub fn matmul_t(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_t: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let dot: f32 = a_row.iter().zip(b_row).map(|(&a, &b)| a * b).sum();
                out.data[i * other.rows + j] = dot;
            }
        }
        out
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise in-place map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= b;
        }
    }

    /// `self * scalar`, in place.
    pub fn scale(&mut self, s: f32) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Elementwise product (Hadamard) into a new matrix.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| a * b)
                .collect(),
        }
    }

    /// Elementwise binary zip into a new matrix.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Add a row vector to every row (broadcast).
    pub fn add_row_broadcast(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols);
        for r in 0..self.rows {
            for (v, b) in self.row_mut(r).iter_mut().zip(row) {
                *v += b;
            }
        }
    }

    /// Column sums (length = cols).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for r in 0..self.rows {
            for (o, v) in out.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        out
    }

    /// Column means.
    pub fn col_means(&self) -> Vec<f32> {
        let mut s = self.col_sums();
        let n = self.rows.max(1) as f32;
        for v in &mut s {
            *v /= n;
        }
        s
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Extract a contiguous block of rows `[start, end)`.
    pub fn rows_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows);
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Extract a contiguous block of columns `[start, end)`.
    pub fn cols_range(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.cols);
        let mut out = Matrix::zeros(self.rows, end - start);
        for r in 0..self.rows {
            out.row_mut(r).copy_from_slice(&self.row(r)[start..end]);
        }
        out
    }

    /// Horizontally concatenate two matrices with equal row counts.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat: row count mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            let dst = out.row_mut(r);
            dst[..self.cols].copy_from_slice(self.row(r));
            dst[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Gather a subset of rows by index.
    pub fn select_rows(&self, idx: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(idx.len(), self.cols);
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(6) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:8.4} ", self.get(r, c))?;
            }
            writeln!(f, "{}", if self.cols > 8 { "..." } else { "" })?;
        }
        if self.rows > 6 {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(rows: usize, cols: usize, v: &[f32]) -> Matrix {
        Matrix::from_vec(rows, cols, v.to_vec())
    }

    #[test]
    fn matmul_small() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(3, 2, &[7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c, m(2, 2, &[58., 64., 139., 154.]));
    }

    #[test]
    fn matmul_identity() {
        let a = m(2, 2, &[1., 2., 3., 4.]);
        let i = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_variants_agree() {
        let a = m(2, 3, &[1., 2., 3., 4., 5., 6.]);
        let b = m(2, 4, &[1., 0., 2., -1., 3., 1., 0., 2.]);
        // aᵀ·b via t_matmul == transpose().matmul
        assert_eq!(a.t_matmul(&b), a.transpose().matmul(&b));
        // a·cᵀ via matmul_t == matmul(transpose)
        let c = m(4, 3, &[1., 2., 0., 0., 1., 1., 2., 0., 1., 1., 1., 1.]);
        assert_eq!(a.matmul_t(&c), a.matmul(&c.transpose()));
    }

    #[test]
    fn transpose_involution() {
        let a = m(3, 2, &[1., 2., 3., 4., 5., 6.]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    #[should_panic(expected = "matmul")]
    fn matmul_dim_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn broadcast_and_sums() {
        let mut a = Matrix::zeros(2, 3);
        a.add_row_broadcast(&[1., 2., 3.]);
        assert_eq!(a.col_sums(), vec![2., 4., 6.]);
        assert_eq!(a.col_means(), vec![1., 2., 3.]);
        assert_eq!(a.sum(), 12.0);
    }

    #[test]
    fn hadamard_and_zip() {
        let a = m(1, 3, &[1., 2., 3.]);
        let b = m(1, 3, &[4., 5., 6.]);
        assert_eq!(a.hadamard(&b), m(1, 3, &[4., 10., 18.]));
        assert_eq!(a.zip(&b, |x, y| y - x), m(1, 3, &[3., 3., 3.]));
    }

    #[test]
    fn slicing() {
        let a = m(3, 4, &(0..12).map(|v| v as f32).collect::<Vec<_>>());
        assert_eq!(a.rows_range(1, 3).row(0), &[4., 5., 6., 7.]);
        assert_eq!(a.cols_range(1, 3).row(2), &[9., 10.]);
        assert_eq!(a.select_rows(&[2, 0]).row(0), &[8., 9., 10., 11.]);
    }

    #[test]
    fn hcat_widths_add() {
        let a = m(2, 1, &[1., 2.]);
        let b = m(2, 2, &[3., 4., 5., 6.]);
        let c = a.hcat(&b);
        assert_eq!(c.cols(), 3);
        assert_eq!(c.row(1), &[2., 5., 6.]);
    }

    #[test]
    fn norms() {
        let a = m(1, 2, &[3., 4.]);
        assert!((a.frobenius() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn map_and_scale() {
        let mut a = m(1, 3, &[1., -2., 3.]);
        let abs = a.map(f32::abs);
        assert_eq!(abs.row(0), &[1., 2., 3.]);
        a.scale(2.0);
        assert_eq!(a.row(0), &[2., -4., 6.]);
        a.map_inplace(|v| v + 1.0);
        assert_eq!(a.row(0), &[3., -3., 7.]);
    }

    #[test]
    fn add_sub_assign() {
        let mut a = m(1, 2, &[1., 2.]);
        let b = m(1, 2, &[3., 4.]);
        a.add_assign(&b);
        assert_eq!(a.row(0), &[4., 6.]);
        a.sub_assign(&b);
        assert_eq!(a.row(0), &[1., 2.]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
