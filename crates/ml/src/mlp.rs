//! A sequential stack of [`Dense`] layers.

use crate::activation::Activation;
use crate::dense::Dense;
use crate::matrix::Matrix;
use rand::Rng;

/// A multi-layer perceptron.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Dense>,
}

impl Mlp {
    /// Build from a layer-size list `dims` (e.g. `[784, 256, 20]`) with
    /// `hidden_act` on all but the last layer and `out_act` on the last.
    ///
    /// # Panics
    /// Panics if `dims` has fewer than two entries.
    pub fn new<R: Rng>(
        dims: &[usize],
        hidden_act: Activation,
        out_act: Activation,
        lr: f32,
        rng: &mut R,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "Mlp::new: need at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, pair)| {
                let act = if i + 2 == dims.len() {
                    out_act
                } else {
                    hidden_act
                };
                Dense::new(pair[0], pair[1], act, lr, rng)
            })
            .collect();
        Self { layers }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers.first().expect("Mlp has layers").in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("Mlp has layers").out_dim()
    }

    /// Total trainable parameters.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(Dense::param_count).sum()
    }

    /// Multiply-accumulates of one forward pass over `n` rows.
    pub fn forward_macs(&self, n: usize) -> u64 {
        self.layers.iter().map(|l| l.forward_macs(n)).sum()
    }

    /// Forward with caches (training path).
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        self.layers
            .iter_mut()
            .fold(x.clone(), |h, layer| layer.forward(&h))
    }

    /// Forward without caches (serving path).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        self.layers
            .iter()
            .fold(x.clone(), |h, layer| layer.forward_inference(&h))
    }

    /// Backward from the gradient w.r.t. the network *output*.
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let mut grad = d_out.clone();
        for layer in self.layers.iter_mut().rev() {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Backward where the last layer receives a *pre-activation*
    /// gradient (fused loss+activation), earlier layers the usual chain.
    pub fn backward_preact_last(&mut self, dz_last: &Matrix) -> Matrix {
        let mut iter = self.layers.iter_mut().rev();
        let last = iter.next().expect("Mlp has layers");
        let mut grad = last.backward_preact(dz_last);
        for layer in iter {
            grad = layer.backward(&grad);
        }
        grad
    }

    /// Adam step on every layer.
    pub fn step(&mut self) {
        for layer in &mut self.layers {
            layer.step();
        }
    }

    /// Zero all gradients.
    pub fn zero_grad(&mut self) {
        for layer in &mut self.layers {
            layer.zero_grad();
        }
    }

    /// The layer stack (diagnostics/persistence).
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Rebuild from persisted layers, validating that adjacent layer
    /// dimensions chain.
    pub fn from_layers(layers: Vec<Dense>) -> Result<Self, String> {
        if layers.is_empty() {
            return Err("Mlp::from_layers: no layers".into());
        }
        for pair in layers.windows(2) {
            if pair[0].out_dim() != pair[1].in_dim() {
                return Err(format!(
                    "Mlp::from_layers: layer widths do not chain ({} -> {})",
                    pair[0].out_dim(),
                    pair[1].in_dim()
                ));
            }
        }
        Ok(Self { layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn shapes_chain() {
        let mut rng = seeded(1);
        let mlp = Mlp::new(
            &[8, 4, 2],
            Activation::Relu,
            Activation::Linear,
            0.01,
            &mut rng,
        );
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 2);
        assert_eq!(mlp.param_count(), 8 * 4 + 4 + 4 * 2 + 2);
        let y = mlp.forward_inference(&Matrix::zeros(3, 8));
        assert_eq!((y.rows(), y.cols()), (3, 2));
    }

    #[test]
    fn learns_xor() {
        // XOR is the canonical non-linear sanity check.
        let mut rng = seeded(7);
        let mut mlp = Mlp::new(
            &[2, 8, 1],
            Activation::Tanh,
            Activation::Sigmoid,
            0.05,
            &mut rng,
        );
        let x = Matrix::from_rows(&[
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ]);
        let t = [0.0f32, 1.0, 1.0, 0.0];
        for _ in 0..800 {
            let y = mlp.forward(&x);
            // Fused sigmoid+BCE gradient: dz = y - t.
            let dz = Matrix::from_fn(4, 1, |r, _| y.get(r, 0) - t[r]);
            mlp.backward_preact_last(&dz);
            mlp.step();
        }
        let y = mlp.forward_inference(&x);
        for (r, &target) in t.iter().enumerate() {
            let out = y.get(r, 0);
            assert!(
                (out - target).abs() < 0.2,
                "xor row {r}: out={out} target={target}"
            );
        }
    }

    #[test]
    fn inference_matches_forward() {
        let mut rng = seeded(3);
        let mut mlp = Mlp::new(
            &[4, 3, 2],
            Activation::Relu,
            Activation::Sigmoid,
            0.01,
            &mut rng,
        );
        let x = Matrix::from_fn(2, 4, |r, c| (r + c) as f32 * 0.1);
        let a = mlp.forward(&x);
        let b = mlp.forward_inference(&x);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn single_dim_rejected() {
        let mut rng = seeded(1);
        Mlp::new(&[4], Activation::Relu, Activation::Linear, 0.01, &mut rng);
    }
}
