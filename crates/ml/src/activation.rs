//! Activation functions and their derivatives.

use serde::{Deserialize, Serialize};

/// Supported layer activations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Activation {
    /// Identity.
    Linear,
    /// max(0, x).
    Relu,
    /// 1 / (1 + e^-x).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Apply the activation to a pre-activation value.
    #[inline]
    pub fn apply(&self, x: f32) -> f32 {
        match self {
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
            Activation::Sigmoid => sigmoid(x),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative expressed in terms of the *output* `y = f(x)` (cheaper
    /// than recomputing from x for sigmoid/tanh; exact for all four).
    #[inline]
    pub fn derivative_from_output(&self, y: f32) -> f32 {
        match self {
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
        }
    }
}

/// Numerically-stable logistic sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_basics() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.9999);
        assert!(sigmoid(-10.0) < 0.0001);
        // Extreme inputs stay finite (stability).
        assert!(sigmoid(1000.0).is_finite());
        assert!(sigmoid(-1000.0).is_finite());
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(3.0), 3.0);
    }

    #[test]
    fn derivatives_match_numeric() {
        let h = 1e-3f32;
        for act in [
            Activation::Linear,
            Activation::Relu,
            Activation::Sigmoid,
            Activation::Tanh,
        ] {
            for &x in &[-1.5f32, -0.2, 0.3, 1.7] {
                if act == Activation::Relu && x.abs() < 2.0 * h {
                    continue; // kink
                }
                let numeric = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let analytic = act.derivative_from_output(act.apply(x));
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "{act:?} at {x}: numeric={numeric} analytic={analytic}"
                );
            }
        }
    }
}
