//! K-means clustering with k-means++ initialization, Lloyd iterations,
//! SSE, and the elbow method for choosing K (paper §4.1.4, Eq. 1).

use crate::matrix::Matrix;
use crate::rng::weighted_index;
use rand::Rng;

/// A fitted K-means model: `k` centroids in feature space.
#[derive(Debug, Clone)]
pub struct KMeans {
    centroids: Matrix,
}

/// Result of one [`KMeans::fit`] call.
#[derive(Debug, Clone)]
pub struct KMeansFit {
    /// The fitted model.
    pub model: KMeans,
    /// Final cluster assignment of each training row.
    pub assignments: Vec<usize>,
    /// Final sum of squared errors (Eq. 1 of the paper).
    pub sse: f32,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Fit on `data` (rows = samples) with k-means++ seeding and at most
    /// `max_iters` Lloyd iterations (stops early on convergence).
    ///
    /// # Panics
    /// Panics if `k == 0` or `data` has no rows.
    #[allow(clippy::needless_range_loop)] // index style is clearer here
    pub fn fit<R: Rng>(data: &Matrix, k: usize, max_iters: usize, rng: &mut R) -> KMeansFit {
        assert!(k > 0, "KMeans: k must be >= 1");
        assert!(data.rows() > 0, "KMeans: empty data");
        let k = k.min(data.rows());
        let mut centroids = kmeans_pp_init(data, k, rng);
        let mut assignments = vec![0usize; data.rows()];
        let mut iterations = 0;
        for _ in 0..max_iters.max(1) {
            iterations += 1;
            // Assignment step.
            let mut changed = false;
            for r in 0..data.rows() {
                let c = nearest(&centroids, data.row(r)).0;
                if assignments[r] != c {
                    assignments[r] = c;
                    changed = true;
                }
            }
            // Update step.
            let mut sums = Matrix::zeros(k, data.cols());
            let mut counts = vec![0usize; k];
            for (r, &c) in assignments.iter().enumerate() {
                counts[c] += 1;
                for (s, v) in sums.row_mut(c).iter_mut().zip(data.row(r)) {
                    *s += v;
                }
            }
            for c in 0..k {
                if counts[c] == 0 {
                    // Re-seed an empty cluster at the point farthest from
                    // its centroid.
                    let far = (0..data.rows())
                        .max_by(|&a, &b| {
                            let da = dist2(centroids.row(assignments[a]), data.row(a));
                            let db = dist2(centroids.row(assignments[b]), data.row(b));
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .expect("data nonempty");
                    centroids.row_mut(c).copy_from_slice(data.row(far));
                    changed = true;
                } else {
                    let inv = 1.0 / counts[c] as f32;
                    for (dst, s) in centroids.row_mut(c).iter_mut().zip(sums.row(c)) {
                        *dst = s * inv;
                    }
                }
            }
            if !changed && iterations > 1 {
                break;
            }
        }
        let model = KMeans { centroids };
        let sse = model.sse(data);
        KMeansFit {
            model,
            assignments,
            sse,
            iterations,
        }
    }

    /// Construct directly from centroids (used by the joint trainer).
    pub fn from_centroids(centroids: Matrix) -> Self {
        Self { centroids }
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.rows()
    }

    /// The centroid matrix (`k × dim`).
    pub fn centroids(&self) -> &Matrix {
        &self.centroids
    }

    /// Nearest cluster for one sample.
    pub fn predict(&self, x: &[f32]) -> usize {
        nearest(&self.centroids, x).0
    }

    /// Nearest cluster and its squared distance.
    pub fn predict_with_distance(&self, x: &[f32]) -> (usize, f32) {
        nearest(&self.centroids, x)
    }

    /// Clusters ordered by distance from `x` (closest first) — the
    /// fallback order the dynamic address pool uses when a cluster's
    /// free list is empty.
    pub fn clusters_by_distance(&self, x: &[f32]) -> Vec<usize> {
        let mut order: Vec<(usize, f32)> = (0..self.k())
            .map(|c| (c, dist2(self.centroids.row(c), x)))
            .collect();
        order.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        order.into_iter().map(|(c, _)| c).collect()
    }

    /// Sum of squared errors of `data` under this model (Eq. 1).
    pub fn sse(&self, data: &Matrix) -> f32 {
        (0..data.rows())
            .map(|r| nearest(&self.centroids, data.row(r)).1)
            .sum()
    }
}

fn dist2(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(&x, &y)| (x - y) * (x - y)).sum()
}

fn nearest(centroids: &Matrix, x: &[f32]) -> (usize, f32) {
    let mut best = (0usize, f32::INFINITY);
    for c in 0..centroids.rows() {
        let d = dist2(centroids.row(c), x);
        if d < best.1 {
            best = (c, d);
        }
    }
    best
}

#[allow(clippy::needless_range_loop)] // index style is clearer here
fn kmeans_pp_init<R: Rng>(data: &Matrix, k: usize, rng: &mut R) -> Matrix {
    let n = data.rows();
    let mut centroids = Matrix::zeros(k, data.cols());
    let first = rng.gen_range(0..n);
    centroids.row_mut(0).copy_from_slice(data.row(first));
    let mut d2: Vec<f32> = (0..n)
        .map(|r| dist2(data.row(r), centroids.row(0)))
        .collect();
    for c in 1..k {
        let pick = weighted_index(rng, &d2);
        centroids.row_mut(c).copy_from_slice(data.row(pick));
        for r in 0..n {
            let d = dist2(data.row(r), centroids.row(c));
            if d < d2[r] {
                d2[r] = d;
            }
        }
    }
    centroids
}

/// Pick the elbow of an SSE-vs-K curve by maximum distance to the chord
/// between the endpoints (the "knee" heuristic of the paper's §4.1.4).
/// `curve` is `(k, sse)` pairs sorted by increasing k; returns the k at
/// the elbow.
///
/// # Panics
/// Panics if `curve` is empty.
pub fn elbow_k(curve: &[(usize, f32)]) -> usize {
    assert!(!curve.is_empty(), "elbow_k: empty curve");
    if curve.len() < 3 {
        return curve[0].0;
    }
    let (x0, y0) = (curve[0].0 as f32, curve[0].1);
    let (x1, y1) = (curve[curve.len() - 1].0 as f32, curve[curve.len() - 1].1);
    // Normalize axes so the chord distance is scale-invariant.
    let dx = (x1 - x0).max(f32::EPSILON);
    let dy = (y0 - y1).max(f32::EPSILON);
    let mut best = (curve[0].0, f32::NEG_INFINITY);
    for &(k, sse) in curve {
        let nx = (k as f32 - x0) / dx;
        let ny = (sse - y1) / dy; // decreasing curve -> ny from 1 to 0
                                  // Distance from (nx, ny) to the line from (0,1) to (1,0):
                                  // |nx + ny - 1| / sqrt(2).
        let d = (1.0 - nx - ny).abs() / std::f32::consts::SQRT_2;
        if d > best.1 {
            best = (k, d);
        }
    }
    best.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn blobs(n_per: usize, centers: &[(f32, f32)], spread: f32, rng: &mut impl Rng) -> Matrix {
        let mut rows = Vec::new();
        for &(cx, cy) in centers {
            for _ in 0..n_per {
                rows.push(vec![
                    cx + crate::rng::normal(rng) * spread,
                    cy + crate::rng::normal(rng) * spread,
                ]);
            }
        }
        Matrix::from_rows(&rows)
    }

    #[test]
    fn recovers_well_separated_blobs() {
        let mut rng = seeded(1);
        let data = blobs(
            50,
            &[(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)],
            0.5,
            &mut rng,
        );
        let fit = KMeans::fit(&data, 3, 50, &mut rng);
        // All members of a ground-truth blob must share an assignment.
        for blob in 0..3 {
            let a0 = fit.assignments[blob * 50];
            for i in 0..50 {
                assert_eq!(fit.assignments[blob * 50 + i], a0, "blob {blob} split");
            }
        }
        // And the three blobs get three distinct clusters.
        let distinct: std::collections::HashSet<_> = [
            fit.assignments[0],
            fit.assignments[50],
            fit.assignments[100],
        ]
        .into_iter()
        .collect();
        assert_eq!(distinct.len(), 3);
    }

    #[test]
    fn sse_decreases_with_k() {
        let mut rng = seeded(2);
        let data = blobs(
            30,
            &[(0.0, 0.0), (5.0, 5.0), (9.0, 0.0), (0.0, 9.0)],
            1.0,
            &mut rng,
        );
        let mut prev = f32::INFINITY;
        for k in [1, 2, 4, 8] {
            let fit = KMeans::fit(&data, k, 50, &mut rng);
            assert!(
                fit.sse <= prev * 1.001,
                "k={k}: sse={} prev={prev}",
                fit.sse
            );
            prev = fit.sse;
        }
    }

    #[test]
    fn predict_matches_training_assignment() {
        let mut rng = seeded(3);
        let data = blobs(20, &[(0.0, 0.0), (8.0, 8.0)], 0.3, &mut rng);
        let fit = KMeans::fit(&data, 2, 50, &mut rng);
        for r in 0..data.rows() {
            assert_eq!(fit.model.predict(data.row(r)), fit.assignments[r]);
        }
    }

    #[test]
    fn clusters_by_distance_is_permutation_starting_with_nearest() {
        let mut rng = seeded(4);
        let data = blobs(20, &[(0.0, 0.0), (8.0, 8.0), (0.0, 8.0)], 0.3, &mut rng);
        let fit = KMeans::fit(&data, 3, 50, &mut rng);
        let order = fit.model.clusters_by_distance(&[0.0, 0.0]);
        assert_eq!(order.len(), 3);
        assert_eq!(order[0], fit.model.predict(&[0.0, 0.0]));
        let set: std::collections::HashSet<_> = order.iter().collect();
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn k_capped_at_sample_count() {
        let mut rng = seeded(5);
        let data = Matrix::from_rows(&[vec![0.0, 0.0], vec![1.0, 1.0]]);
        let fit = KMeans::fit(&data, 10, 10, &mut rng);
        assert_eq!(fit.model.k(), 2);
    }

    #[test]
    fn elbow_finds_sharp_knee() {
        // Sharp knee at k=4.
        let curve: Vec<(usize, f32)> = vec![
            (1, 1000.0),
            (2, 700.0),
            (3, 420.0),
            (4, 120.0),
            (5, 100.0),
            (6, 90.0),
            (7, 85.0),
            (8, 82.0),
        ];
        assert_eq!(elbow_k(&curve), 4);
    }

    #[test]
    fn elbow_degenerate_curves() {
        assert_eq!(elbow_k(&[(3, 5.0)]), 3);
        assert_eq!(elbow_k(&[(1, 5.0), (2, 4.0)]), 1);
    }

    #[test]
    fn fit_is_deterministic_given_seed() {
        let mut r1 = seeded(9);
        let mut r2 = seeded(9);
        let data = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 0.5, &mut r1);
        let data2 = blobs(20, &[(0.0, 0.0), (5.0, 5.0)], 0.5, &mut r2);
        assert_eq!(data, data2);
        let f1 = KMeans::fit(&data, 2, 20, &mut r1);
        let f2 = KMeans::fit(&data2, 2, 20, &mut r2);
        assert_eq!(f1.assignments, f2.assignments);
    }
}
