//! Variational Autoencoder with the paper's ELBO loss:
//! `l(θ,φ) = -E[log p_φ(x|z)] + KL(q_θ(z|x) ‖ N(0, I))`,
//! Bernoulli decoder (sigmoid + binary cross-entropy) over bit-vector
//! inputs, trained with Adam and the reparameterization trick.

use crate::activation::Activation;
use crate::loss;
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of a [`Vae`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VaeConfig {
    /// Input feature count (bits of one memory segment, after padding).
    pub input_dim: usize,
    /// Hidden layer widths of the encoder (mirrored in the decoder).
    pub hidden: Vec<usize>,
    /// Latent dimensionality (the paper uses ~10).
    pub latent_dim: usize,
    /// Adam learning rate.
    pub lr: f32,
    /// Weight of the KL term (β-VAE style; 1.0 = plain ELBO).
    pub beta: f32,
}

impl Default for VaeConfig {
    fn default() -> Self {
        Self {
            input_dim: 256,
            hidden: vec![128],
            latent_dim: 10,
            lr: 1e-3,
            beta: 1.0,
        }
    }
}

/// Per-batch / per-epoch loss components.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VaeLosses {
    /// Reconstruction loss (BCE summed over features, batch-averaged).
    pub recon: f32,
    /// KL divergence (batch-averaged).
    pub kl: f32,
}

impl VaeLosses {
    /// Total loss `recon + kl`.
    pub fn total(&self) -> f32 {
        self.recon + self.kl
    }
}

const LOGVAR_CLAMP: f32 = 8.0;

/// The VAE: encoder MLP to `(μ, log σ²)`, decoder MLP back to input
/// space.
#[derive(Debug, Clone)]
pub struct Vae {
    cfg: VaeConfig,
    encoder: Mlp,
    decoder: Mlp,
}

impl Vae {
    /// Initialize with random weights.
    pub fn new<R: Rng>(cfg: VaeConfig, rng: &mut R) -> Self {
        assert!(
            cfg.input_dim > 0 && cfg.latent_dim > 0,
            "VaeConfig: zero dims"
        );
        let mut enc_dims = vec![cfg.input_dim];
        enc_dims.extend_from_slice(&cfg.hidden);
        enc_dims.push(2 * cfg.latent_dim);
        let mut dec_dims = vec![cfg.latent_dim];
        dec_dims.extend(cfg.hidden.iter().rev());
        dec_dims.push(cfg.input_dim);
        Self {
            encoder: Mlp::new(&enc_dims, Activation::Relu, Activation::Linear, cfg.lr, rng),
            decoder: Mlp::new(
                &dec_dims,
                Activation::Relu,
                Activation::Sigmoid,
                cfg.lr,
                rng,
            ),
            cfg,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &VaeConfig {
        &self.cfg
    }

    /// Encode to `(μ, log σ²)` without training caches.
    pub fn encode(&self, x: &Matrix) -> (Matrix, Matrix) {
        let h = self.encoder.forward_inference(x);
        split_latent(&h, self.cfg.latent_dim)
    }

    /// Deterministic latent representation (μ) — the serving path used
    /// for clustering in E2-NVM.
    pub fn latent(&self, x: &Matrix) -> Matrix {
        self.encode(x).0
    }

    /// Decode latent codes to input-space probabilities.
    pub fn decode(&self, z: &Matrix) -> Matrix {
        self.decoder.forward_inference(z)
    }

    /// Reconstruct inputs deterministically (through μ).
    pub fn reconstruct(&self, x: &Matrix) -> Matrix {
        self.decode(&self.latent(x))
    }

    /// One gradient step on a batch. Returns the pre-step losses.
    pub fn train_batch<R: Rng>(&mut self, x: &Matrix, rng: &mut R) -> VaeLosses {
        self.train_batch_with(x, rng, |_| None)
    }

    /// One gradient step where `extra_dz` may inject an additional
    /// gradient w.r.t. the sampled latent `z` — the hook the joint
    /// VAE+K-means trainer uses to add its cluster-distance loss.
    pub fn train_batch_with<R: Rng>(
        &mut self,
        x: &Matrix,
        rng: &mut R,
        extra_dz: impl FnOnce(&Matrix) -> Option<Matrix>,
    ) -> VaeLosses {
        let n = x.rows();
        assert!(n > 0, "train_batch: empty batch");
        assert_eq!(x.cols(), self.cfg.input_dim, "train_batch: wrong input dim");
        let l = self.cfg.latent_dim;

        // --- forward ---
        let h = self.encoder.forward(x);
        let (mu, mut logvar) = split_latent(&h, l);
        logvar.map_inplace(|v| v.clamp(-LOGVAR_CLAMP, LOGVAR_CLAMP));
        let sigma = logvar.map(|v| (0.5 * v).exp());
        let mut eps = Matrix::zeros(n, l);
        rng::fill_normal(rng, eps.as_mut_slice(), 1.0);
        let mut z = sigma.hadamard(&eps);
        z.add_assign(&mu);
        let xhat = self.decoder.forward(&z);

        let losses = VaeLosses {
            recon: loss::bce(&xhat, x),
            kl: self.cfg.beta * loss::kl_gaussian(&mu, &logvar),
        };

        // --- backward ---
        // Sigmoid + BCE fused gradient wrt decoder pre-activation.
        let inv_n = 1.0 / n as f32;
        let dz_dec = xhat.zip(x, |p, t| (p - t) * inv_n);
        let mut dz = self.decoder.backward_preact_last(&dz_dec);
        if let Some(extra) = extra_dz(&z) {
            dz.add_assign(&extra);
        }
        // dμ = dz·1 + β·μ/n ; dlogσ² = dz·ε·σ/2 + β(σ²−1)/(2n).
        let beta = self.cfg.beta;
        let mut dmu = dz.clone();
        dmu.add_assign(&mu.map(|m| beta * m * inv_n));
        let mut dlogvar = dz.hadamard(&eps).hadamard(&sigma);
        dlogvar.scale(0.5);
        dlogvar.add_assign(&logvar.map(|lv| beta * 0.5 * (lv.exp() - 1.0) * inv_n));

        let dh = dmu.hcat(&dlogvar);
        // Encoder output layer is Linear, so output grad == preact grad.
        self.encoder.backward_preact_last(&dh);

        self.decoder.step();
        self.encoder.step();
        losses
    }

    /// One epoch over `data` in shuffled mini-batches; returns the mean
    /// losses across batches.
    pub fn train_epoch<R: Rng>(&mut self, data: &Matrix, batch: usize, rng: &mut R) -> VaeLosses {
        self.train_epoch_with(data, batch, rng, |_| None)
    }

    /// Epoch variant of [`Vae::train_batch_with`].
    pub fn train_epoch_with<R: Rng>(
        &mut self,
        data: &Matrix,
        batch: usize,
        rng: &mut R,
        mut extra_dz: impl FnMut(&Matrix) -> Option<Matrix>,
    ) -> VaeLosses {
        assert!(batch > 0, "train_epoch: zero batch size");
        let n = data.rows();
        let mut idx: Vec<usize> = (0..n).collect();
        // Fisher-Yates shuffle.
        for i in (1..n).rev() {
            idx.swap(i, rng.gen_range(0..=i));
        }
        let mut total = VaeLosses::default();
        let mut batches = 0;
        for chunk in idx.chunks(batch) {
            let xb = data.select_rows(chunk);
            let l = self.train_batch_with(&xb, rng, &mut extra_dz);
            total.recon += l.recon;
            total.kl += l.kl;
            batches += 1;
        }
        if batches > 0 {
            total.recon /= batches as f32;
            total.kl /= batches as f32;
        }
        total
    }

    /// Evaluate losses on held-out data (deterministic: z = μ).
    pub fn evaluate(&self, data: &Matrix) -> VaeLosses {
        let (mu, logvar) = self.encode(data);
        let xhat = self.decode(&mu);
        VaeLosses {
            recon: loss::bce(&xhat, data),
            kl: self.cfg.beta * loss::kl_gaussian(&mu, &logvar),
        }
    }

    /// Multiply-accumulates for one training epoch over `n` samples
    /// (forward + backward ≈ 3× forward cost). Feeds the CPU-energy
    /// model of Figures 8, 16, 18.
    pub fn train_macs_per_epoch(&self, n: usize) -> u64 {
        3 * (self.encoder.forward_macs(n) + self.decoder.forward_macs(n))
    }

    /// Multiply-accumulates for encoding one sample (the serving path).
    pub fn predict_macs(&self) -> u64 {
        self.encoder.forward_macs(1)
    }

    /// Borrow the encoder (serving/model-export path).
    pub fn encoder(&self) -> &Mlp {
        &self.encoder
    }

    /// Borrow the decoder (persistence).
    pub fn decoder(&self) -> &Mlp {
        &self.decoder
    }

    /// Rebuild from persisted parts, validating dimensions against the
    /// config.
    pub fn from_parts(cfg: VaeConfig, encoder: Mlp, decoder: Mlp) -> Result<Self, String> {
        if encoder.in_dim() != cfg.input_dim
            || encoder.out_dim() != 2 * cfg.latent_dim
            || decoder.in_dim() != cfg.latent_dim
            || decoder.out_dim() != cfg.input_dim
        {
            return Err("Vae::from_parts: dimensions do not match config".into());
        }
        Ok(Self {
            cfg,
            encoder,
            decoder,
        })
    }
}

fn split_latent(h: &Matrix, latent: usize) -> (Matrix, Matrix) {
    debug_assert_eq!(h.cols(), 2 * latent);
    (h.cols_range(0, latent), h.cols_range(latent, 2 * latent))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    fn two_cluster_bits(n: usize, dim: usize, rng: &mut impl Rng) -> Matrix {
        // Half the rows mostly-zeros, half mostly-ones, 10% flip noise.
        Matrix::from_fn(n, dim, |r, _| {
            let base = if r < n / 2 { 0.0 } else { 1.0 };
            if rng.gen::<f32>() < 0.1 {
                1.0 - base
            } else {
                base
            }
        })
    }

    #[test]
    fn shapes() {
        let mut rng = seeded(1);
        let vae = Vae::new(
            VaeConfig {
                input_dim: 32,
                hidden: vec![16],
                latent_dim: 4,
                ..VaeConfig::default()
            },
            &mut rng,
        );
        let x = Matrix::zeros(5, 32);
        let (mu, lv) = vae.encode(&x);
        assert_eq!((mu.rows(), mu.cols()), (5, 4));
        assert_eq!((lv.rows(), lv.cols()), (5, 4));
        let xhat = vae.reconstruct(&x);
        assert_eq!((xhat.rows(), xhat.cols()), (5, 32));
        // Sigmoid output in (0,1).
        assert!(xhat.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn training_reduces_loss() {
        let mut rng = seeded(2);
        let data = two_cluster_bits(128, 32, &mut rng);
        let mut vae = Vae::new(
            VaeConfig {
                input_dim: 32,
                hidden: vec![24],
                latent_dim: 4,
                lr: 5e-3,
                beta: 0.5,
            },
            &mut rng,
        );
        let first = vae.train_epoch(&data, 16, &mut rng);
        for _ in 0..30 {
            vae.train_epoch(&data, 16, &mut rng);
        }
        let last = vae.evaluate(&data);
        assert!(
            last.recon < first.recon * 0.6,
            "first={first:?} last={last:?}"
        );
    }

    #[test]
    fn latent_separates_clusters() {
        let mut rng = seeded(3);
        let data = two_cluster_bits(128, 32, &mut rng);
        let mut vae = Vae::new(
            VaeConfig {
                input_dim: 32,
                hidden: vec![24],
                latent_dim: 2,
                lr: 5e-3,
                beta: 0.1,
            },
            &mut rng,
        );
        for _ in 0..40 {
            vae.train_epoch(&data, 16, &mut rng);
        }
        let z = vae.latent(&data);
        // Mean latent of each half must be farther apart than the mean
        // intra-half spread.
        let half = z.rows() / 2;
        let mean =
            |m: &Matrix, lo: usize, hi: usize| -> Vec<f32> { m.rows_range(lo, hi).col_means() };
        let m0 = mean(&z, 0, half);
        let m1 = mean(&z, half, z.rows());
        let between: f32 = m0
            .iter()
            .zip(&m1)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(between > 0.5, "clusters not separated: dist={between}");
    }

    #[test]
    fn evaluate_is_deterministic() {
        let mut rng = seeded(4);
        let data = two_cluster_bits(32, 16, &mut rng);
        let vae = Vae::new(
            VaeConfig {
                input_dim: 16,
                hidden: vec![8],
                latent_dim: 3,
                ..VaeConfig::default()
            },
            &mut rng,
        );
        let a = vae.evaluate(&data);
        let b = vae.evaluate(&data);
        assert_eq!(a, b);
    }

    #[test]
    fn extra_dz_hook_receives_z() {
        let mut rng = seeded(5);
        let data = two_cluster_bits(16, 16, &mut rng);
        let mut vae = Vae::new(
            VaeConfig {
                input_dim: 16,
                hidden: vec![8],
                latent_dim: 3,
                ..VaeConfig::default()
            },
            &mut rng,
        );
        let mut called = false;
        vae.train_batch_with(&data, &mut rng, |z| {
            called = true;
            assert_eq!((z.rows(), z.cols()), (16, 3));
            None
        });
        assert!(called);
    }

    #[test]
    fn macs_positive_and_scale_with_n() {
        let mut rng = seeded(6);
        let vae = Vae::new(VaeConfig::default(), &mut rng);
        assert!(vae.predict_macs() > 0);
        assert!(vae.train_macs_per_epoch(200) > vae.train_macs_per_epoch(100));
    }
}
