//! Fully-connected layer with cached forward state, backprop, and an
//! embedded Adam optimizer.

use crate::activation::Activation;
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::rng;
use rand::Rng;

/// A dense layer `y = act(x·W + b)` over batched row-vector inputs.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weights, `in_dim × out_dim`.
    w: Matrix,
    /// Bias, length `out_dim`.
    b: Vec<f32>,
    act: Activation,
    // --- training state ---
    w_grad: Matrix,
    b_grad: Vec<f32>,
    w_adam: Adam,
    b_adam: Adam,
    /// Cached input of the last forward pass.
    cache_x: Option<Matrix>,
    /// Cached output (post-activation) of the last forward pass.
    cache_y: Option<Matrix>,
}

impl Dense {
    /// He/Xavier-initialized layer.
    pub fn new<R: Rng>(
        in_dim: usize,
        out_dim: usize,
        act: Activation,
        lr: f32,
        rng: &mut R,
    ) -> Self {
        // He init for ReLU, Xavier otherwise.
        let std = match act {
            Activation::Relu => (2.0 / in_dim as f32).sqrt(),
            _ => (1.0 / in_dim as f32).sqrt(),
        };
        let mut w = Matrix::zeros(in_dim, out_dim);
        rng::fill_normal(rng, w.as_mut_slice(), std);
        Self {
            w,
            b: vec![0.0; out_dim],
            act,
            w_grad: Matrix::zeros(in_dim, out_dim),
            b_grad: vec![0.0; out_dim],
            w_adam: Adam::new(in_dim * out_dim, lr),
            b_adam: Adam::new(out_dim, lr),
            cache_x: None,
            cache_y: None,
        }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.w.cols()
    }

    /// The layer activation.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Number of trainable parameters.
    pub fn param_count(&self) -> usize {
        self.w.rows() * self.w.cols() + self.b.len()
    }

    /// Multiply-accumulate count of one forward pass over a batch of `n`
    /// rows — used by the energy model to convert training work into pJ.
    pub fn forward_macs(&self, n: usize) -> u64 {
        (n * self.w.rows() * self.w.cols()) as u64
    }

    /// Forward pass, caching state for backprop.
    pub fn forward(&mut self, x: &Matrix) -> Matrix {
        let y = self.forward_inference(x);
        self.cache_x = Some(x.clone());
        self.cache_y = Some(y.clone());
        y
    }

    /// Forward pass without caching (serving path).
    pub fn forward_inference(&self, x: &Matrix) -> Matrix {
        let mut z = x.matmul(&self.w);
        z.add_row_broadcast(&self.b);
        let act = self.act;
        z.map_inplace(|v| act.apply(v));
        z
    }

    /// Backward pass from the gradient w.r.t. this layer's *output*.
    /// Accumulates parameter gradients and returns the gradient w.r.t.
    /// the input.
    ///
    /// # Panics
    /// Panics if called before [`Dense::forward`].
    pub fn backward(&mut self, d_out: &Matrix) -> Matrix {
        let y = self
            .cache_y
            .as_ref()
            .expect("Dense::backward before forward");
        let act = self.act;
        let dz = d_out.zip(y, |g, yv| g * act.derivative_from_output(yv));
        self.backward_preact(&dz)
    }

    /// Backward pass from the gradient w.r.t. the *pre-activation* `z`.
    /// Lets callers fuse loss+activation gradients (e.g. sigmoid + BCE
    /// simplifies to `ŷ − x`).
    pub fn backward_preact(&mut self, dz: &Matrix) -> Matrix {
        let x = self
            .cache_x
            .as_ref()
            .expect("Dense::backward_preact before forward");
        self.w_grad.add_assign(&x.t_matmul(dz));
        for (g, s) in self.b_grad.iter_mut().zip(dz.col_sums()) {
            *g += s;
        }
        dz.matmul_t(&self.w)
    }

    /// Zero accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w_grad.scale(0.0);
        self.b_grad.iter_mut().for_each(|g| *g = 0.0);
    }

    /// Apply one Adam step with the accumulated gradients, then zero
    /// them.
    pub fn step(&mut self) {
        self.w_adam
            .step(self.w.as_mut_slice(), self.w_grad.as_slice());
        self.b_adam.step(&mut self.b, &self.b_grad);
        self.zero_grad();
    }

    /// Read-only view of the weights (diagnostics/tests/persistence).
    pub fn weights(&self) -> &Matrix {
        &self.w
    }

    /// Read-only view of the bias.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Rebuild a layer from persisted parameters. The optimizer state
    /// starts fresh (persisted models are serving artifacts).
    ///
    /// # Panics
    /// Panics if `bias.len() != weights.cols()`.
    pub fn from_parts(weights: Matrix, bias: Vec<f32>, act: Activation) -> Self {
        assert_eq!(bias.len(), weights.cols(), "Dense::from_parts: bias width");
        let (in_dim, out_dim) = (weights.rows(), weights.cols());
        Self {
            w_grad: Matrix::zeros(in_dim, out_dim),
            b_grad: vec![0.0; out_dim],
            w_adam: Adam::new(in_dim * out_dim, 1e-3),
            b_adam: Adam::new(out_dim, 1e-3),
            cache_x: None,
            cache_y: None,
            w: weights,
            b: bias,
            act,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = seeded(1);
        let mut layer = Dense::new(3, 2, Activation::Linear, 0.01, &mut rng);
        let x = Matrix::zeros(4, 3);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (4, 2));
        // Zero input, zero bias -> zero output.
        assert!(y.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gradient_check_linear_mse() {
        // Numerically verify dW for a tiny layer under L = ||y - t||²/2.
        let mut rng = seeded(2);
        let mut layer = Dense::new(2, 2, Activation::Tanh, 0.01, &mut rng);
        let x = Matrix::from_vec(1, 2, vec![0.3, -0.7]);
        let t = Matrix::from_vec(1, 2, vec![0.1, 0.4]);

        let loss_of = |layer: &Dense| {
            let y = layer.forward_inference(&x);
            0.5 * y
                .as_slice()
                .iter()
                .zip(t.as_slice())
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f32>()
        };

        let y = layer.forward(&x);
        let d_out = y.zip(&t, |a, b| a - b);
        layer.backward(&d_out);

        let analytic = layer.w_grad.clone();
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let orig = layer.w.get(r, c);
                layer.w.set(r, c, orig + h);
                let lp = loss_of(&layer);
                layer.w.set(r, c, orig - h);
                let lm = loss_of(&layer);
                layer.w.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * h);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-3,
                    "dW[{r}{c}]: numeric={numeric} analytic={}",
                    analytic.get(r, c)
                );
            }
        }
    }

    #[test]
    fn layer_learns_linear_map() {
        // Fit y = x·A for a fixed A with MSE; loss must drop sharply.
        let mut rng = seeded(3);
        let mut layer = Dense::new(2, 1, Activation::Linear, 0.05, &mut rng);
        let data: Vec<(Matrix, f32)> = (0..64)
            .map(|i| {
                let a = (i % 8) as f32 / 8.0 - 0.5;
                let b = (i / 8) as f32 / 8.0 - 0.5;
                (Matrix::from_vec(1, 2, vec![a, b]), 2.0 * a - 3.0 * b)
            })
            .collect();
        let mut first = None;
        let mut last = 0.0;
        for epoch in 0..300 {
            let mut total = 0.0;
            for (x, t) in &data {
                let y = layer.forward(x);
                let err = y.get(0, 0) - t;
                total += err * err;
                let d = Matrix::from_vec(1, 1, vec![err]);
                layer.backward(&d);
                layer.step();
            }
            if epoch == 0 {
                first = Some(total);
            }
            last = total;
        }
        assert!(last < first.unwrap() * 0.01, "first={first:?} last={last}");
    }

    #[test]
    fn macs_and_params() {
        let mut rng = seeded(4);
        let layer = Dense::new(10, 5, Activation::Relu, 0.01, &mut rng);
        assert_eq!(layer.param_count(), 55);
        assert_eq!(layer.forward_macs(3), 150);
    }

    #[test]
    #[should_panic(expected = "before forward")]
    fn backward_without_forward_panics() {
        let mut rng = seeded(5);
        let mut layer = Dense::new(2, 2, Activation::Linear, 0.01, &mut rng);
        layer.backward(&Matrix::zeros(1, 2));
    }
}
