//! Data plumbing: bytes → bit features, train/validation splits, and
//! simple feature matrices from memory-segment snapshots.

use crate::matrix::Matrix;
use rand::Rng;

/// Convert one byte buffer into f32 bit features (MSB-first per byte),
/// one feature per bit — the encoding the paper describes in §3.2
/// ("Each memory location is encoded as a vector of bits, each of which
/// is used as a feature/dimension").
pub fn bytes_to_features(bytes: &[u8]) -> Vec<f32> {
    let mut out = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for shift in (0..8).rev() {
            out.push(((b >> shift) & 1) as f32);
        }
    }
    out
}

/// Stack many equal-length byte buffers into an `n × (len*8)` feature
/// matrix (the paper's "(n, m) 2D tensor").
///
/// # Panics
/// Panics if buffers have differing lengths or the input is empty.
pub fn segments_to_matrix(segments: &[impl AsRef<[u8]>]) -> Matrix {
    assert!(!segments.is_empty(), "segments_to_matrix: empty input");
    let len = segments[0].as_ref().len();
    let mut data = Vec::with_capacity(segments.len() * len * 8);
    for s in segments {
        let s = s.as_ref();
        assert_eq!(s.len(), len, "segments_to_matrix: ragged segments");
        data.extend(bytes_to_features(s));
    }
    Matrix::from_vec(segments.len(), len * 8, data)
}

/// Shuffled train/validation split: `val_frac` of rows go to the
/// validation matrix.
pub fn train_val_split<R: Rng>(data: &Matrix, val_frac: f32, rng: &mut R) -> (Matrix, Matrix) {
    assert!((0.0..1.0).contains(&val_frac), "val_frac must be in [0,1)");
    let n = data.rows();
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        idx.swap(i, rng.gen_range(0..=i));
    }
    let n_val = ((n as f32) * val_frac).round() as usize;
    let (val_idx, train_idx) = idx.split_at(n_val.min(n));
    (data.select_rows(train_idx), data.select_rows(val_idx))
}

/// Subsample at most `max_rows` rows uniformly without replacement
/// (used to bound training-set size on large pools).
pub fn subsample_rows<R: Rng>(data: &Matrix, max_rows: usize, rng: &mut R) -> Matrix {
    if data.rows() <= max_rows {
        return data.clone();
    }
    let mut idx: Vec<usize> = (0..data.rows()).collect();
    for i in 0..max_rows {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx.truncate(max_rows);
    data.select_rows(&idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn bit_features_msb_first() {
        let f = bytes_to_features(&[0b1010_0000]);
        assert_eq!(f, vec![1., 0., 1., 0., 0., 0., 0., 0.]);
    }

    #[test]
    fn matrix_from_segments() {
        let m = segments_to_matrix(&[[0xFFu8], [0x00u8]]);
        assert_eq!((m.rows(), m.cols()), (2, 8));
        assert_eq!(m.row(0), &[1.0f32; 8]);
        assert_eq!(m.row(1), &[0.0f32; 8]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_segments_rejected() {
        let a: &[u8] = &[1];
        let b: &[u8] = &[1, 2];
        segments_to_matrix(&[a, b]);
    }

    #[test]
    fn split_partitions_rows() {
        let mut rng = seeded(1);
        let data = Matrix::from_fn(100, 4, |r, _| r as f32);
        let (train, val) = train_val_split(&data, 0.2, &mut rng);
        assert_eq!(train.rows(), 80);
        assert_eq!(val.rows(), 20);
        // Every original row id appears exactly once across both.
        let mut seen: Vec<f32> = train
            .as_slice()
            .iter()
            .chain(val.as_slice())
            .copied()
            .collect::<Vec<_>>()
            .chunks(4)
            .map(|c| c[0])
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect: Vec<f32> = (0..100).map(|v| v as f32).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn subsample_bounds_rows() {
        let mut rng = seeded(2);
        let data = Matrix::from_fn(50, 2, |r, _| r as f32);
        let s = subsample_rows(&data, 10, &mut rng);
        assert_eq!(s.rows(), 10);
        let t = subsample_rows(&data, 100, &mut rng);
        assert_eq!(t.rows(), 50);
    }

    #[test]
    fn subsample_has_no_duplicates() {
        let mut rng = seeded(3);
        let data = Matrix::from_fn(30, 1, |r, _| r as f32);
        let s = subsample_rows(&data, 20, &mut rng);
        let mut vals: Vec<i64> = s.as_slice().iter().map(|&v| v as i64).collect();
        vals.sort_unstable();
        vals.dedup();
        assert_eq!(vals.len(), 20);
    }
}
