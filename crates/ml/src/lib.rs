//! # e2nvm-ml — from-scratch ML substrate for the E2-NVM reproduction
//!
//! The paper's model stack is small but specific: a **VAE** whose encoder
//! compresses memory-segment bit vectors into a ~10-dimensional latent
//! space, **K-means** jointly trained on that latent space (DEC-style),
//! **PCA + K-means** as the PNW baseline, and an **LSTM** that predicts
//! padding bits (64-bit window → 8 bits per step). None of the allowed
//! dependency crates provide these, so this crate implements them from
//! scratch on a compact row-major [`matrix::Matrix`], with Adam, BPTT,
//! and gradient-checked backprop.
//!
//! All models are deterministic given a seeded RNG
//! ([`rng::seeded`]), which keeps every experiment in the workspace
//! reproducible.

pub mod activation;
pub mod data;
pub mod dec;
pub mod dense;
pub mod kmeans;
pub mod loss;
pub mod lstm;
pub mod matrix;
pub mod mlp;
pub mod optim;
pub mod pca;
pub mod persist;
pub mod rng;
pub mod vae;

pub use activation::Activation;
pub use dec::{ClusterModel, DecConfig, TrainingHistory};
pub use dense::Dense;
pub use kmeans::{elbow_k, KMeans, KMeansFit};
pub use lstm::{Lstm, LstmConfig};
pub use matrix::Matrix;
pub use mlp::Mlp;
pub use pca::Pca;
pub use persist::{Persist, PersistError};
pub use vae::{Vae, VaeConfig, VaeLosses};
