//! Loss functions used by the VAE and LSTM trainers.

use crate::matrix::Matrix;

/// Mean squared error over a batch (mean over all elements).
pub fn mse(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let n = (pred.rows() * pred.cols()).max(1) as f32;
    pred.as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f32>()
        / n
}

/// Binary cross-entropy, summed over features and averaged over the
/// batch — the per-sample reconstruction term of the VAE's ELBO.
/// `pred` must already be in (0, 1) (sigmoid output); values are clamped
/// away from {0,1} for stability.
pub fn bce(pred: &Matrix, target: &Matrix) -> f32 {
    assert_eq!((pred.rows(), pred.cols()), (target.rows(), target.cols()));
    let eps = 1e-7f32;
    let total: f32 = pred
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(&p, &t)| {
            let p = p.clamp(eps, 1.0 - eps);
            -(t * p.ln() + (1.0 - t) * (1.0 - p).ln())
        })
        .sum();
    total / pred.rows().max(1) as f32
}

/// KL(q(z|x) ‖ N(0, I)) summed over latent dims, averaged over the
/// batch: `-½ Σ (1 + logσ² − μ² − σ²)`.
pub fn kl_gaussian(mu: &Matrix, logvar: &Matrix) -> f32 {
    assert_eq!((mu.rows(), mu.cols()), (logvar.rows(), logvar.cols()));
    let total: f32 = mu
        .as_slice()
        .iter()
        .zip(logvar.as_slice())
        .map(|(&m, &lv)| -0.5 * (1.0 + lv - m * m - lv.exp()))
        .sum();
    total / mu.rows().max(1) as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_on_equal() {
        let a = Matrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        assert_eq!(mse(&a, &a), 0.0);
    }

    #[test]
    fn mse_known_value() {
        let a = Matrix::from_vec(1, 2, vec![0., 0.]);
        let b = Matrix::from_vec(1, 2, vec![3., 4.]);
        assert!((mse(&a, &b) - 12.5).abs() < 1e-6);
    }

    #[test]
    fn bce_minimized_at_target() {
        let t = Matrix::from_vec(1, 2, vec![1., 0.]);
        let good = Matrix::from_vec(1, 2, vec![0.99, 0.01]);
        let bad = Matrix::from_vec(1, 2, vec![0.5, 0.5]);
        assert!(bce(&good, &t) < bce(&bad, &t));
        // Extreme predictions stay finite thanks to clamping.
        let extreme = Matrix::from_vec(1, 2, vec![1.0, 0.0]);
        assert!(bce(&extreme, &t).is_finite());
    }

    #[test]
    fn kl_zero_for_standard_normal() {
        let mu = Matrix::zeros(3, 4);
        let logvar = Matrix::zeros(3, 4);
        assert!(kl_gaussian(&mu, &logvar).abs() < 1e-6);
    }

    #[test]
    fn kl_positive_otherwise() {
        let mu = Matrix::from_vec(1, 2, vec![1.0, -2.0]);
        let logvar = Matrix::from_vec(1, 2, vec![0.5, -0.5]);
        assert!(kl_gaussian(&mu, &logvar) > 0.0);
    }
}
