//! Optimizers. Adam is the workhorse (the paper's LSTM snippet compiles
//! with `optimizer='adam'`); plain SGD is kept for tests and ablations.

/// Adam state for one parameter tensor (flattened).
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<f32>,
    v: Vec<f32>,
}

impl Adam {
    /// Standard Adam with the usual defaults (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(param_len: usize, lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; param_len],
            v: vec![0.0; param_len],
        }
    }

    /// Learning rate in effect.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Change the learning rate (e.g. for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Apply one Adam update: `params -= lr * m̂ / (sqrt(v̂) + ε)`.
    ///
    /// # Panics
    /// Panics if `params`/`grads` length differs from the state length.
    pub fn step(&mut self, params: &mut [f32], grads: &[f32]) {
        assert_eq!(params.len(), self.m.len(), "Adam: param length changed");
        assert_eq!(params.len(), grads.len(), "Adam: grad length mismatch");
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            let g = grads[i];
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * g;
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * g * g;
            let m_hat = self.m[i] / b1t;
            let v_hat = self.v[i] / b2t;
            params[i] -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
        }
    }
}

/// Plain SGD update: `params -= lr * grads`.
pub fn sgd_step(params: &mut [f32], grads: &[f32], lr: f32) {
    assert_eq!(params.len(), grads.len(), "sgd: grad length mismatch");
    for (p, g) in params.iter_mut().zip(grads) {
        *p -= lr * g;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimize f(x) = (x-3)² with Adam; must converge near 3.
    #[test]
    fn adam_minimizes_quadratic() {
        let mut adam = Adam::new(1, 0.1);
        let mut x = [0.0f32];
        for _ in 0..500 {
            let g = [2.0 * (x[0] - 3.0)];
            adam.step(&mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 0.05, "x={}", x[0]);
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        let mut x = [10.0f32];
        for _ in 0..200 {
            let g = [2.0 * (x[0] - 3.0)];
            sgd_step(&mut x, &g, 0.1);
        }
        assert!((x[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // Bias correction makes the first step ≈ lr regardless of grad
        // magnitude.
        let mut adam = Adam::new(1, 0.5);
        let mut x = [0.0f32];
        adam.step(&mut x, &[1e-4]);
        assert!((x[0] + 0.5).abs() < 1e-2, "x={}", x[0]);
    }

    #[test]
    #[should_panic(expected = "grad length mismatch")]
    fn mismatched_grads_panic() {
        let mut adam = Adam::new(2, 0.1);
        let mut x = [0.0f32; 2];
        adam.step(&mut x, &[1.0]);
    }
}
