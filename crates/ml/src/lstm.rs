//! A single-layer LSTM (Hochreiter & Schmidhuber '97) with a dense
//! sigmoid head, trained with truncated BPTT over full sequences.
//!
//! E2-NVM's *learned padding* (paper §4.1.3, Figure 6) uses an LSTM with
//! a sliding window that "takes as input 64 bits and predicts 8 bits in
//! a single step", sliding by 8 bits per prediction. In this crate the
//! LSTM is generic: sequences of `input_dim`-wide steps, one output
//! vector per sequence. The padding logic in `e2nvm-core` feeds it
//! 8 timesteps of one byte each (64 bits) and reads 8 predicted bits.

use crate::activation::{sigmoid, Activation};
use crate::dense::Dense;
use crate::loss;
use crate::matrix::Matrix;
use crate::optim::Adam;
use crate::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of an [`Lstm`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LstmConfig {
    /// Features per timestep.
    pub input_dim: usize,
    /// Hidden state width.
    pub hidden: usize,
    /// Output width (bits predicted per step).
    pub output_dim: usize,
    /// Adam learning rate.
    pub lr: f32,
}

impl Default for LstmConfig {
    fn default() -> Self {
        Self {
            input_dim: 8,
            hidden: 16,
            output_dim: 8,
            lr: 5e-3,
        }
    }
}

struct StepCache {
    x: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    tanh_c: Matrix,
}

/// The LSTM cell plus output head.
pub struct Lstm {
    cfg: LstmConfig,
    /// `input_dim × 4H` input weights (gate order: i, f, g, o).
    wx: Matrix,
    /// `H × 4H` recurrent weights.
    wh: Matrix,
    /// `4H` bias (forget gate initialized to 1).
    b: Vec<f32>,
    head: Dense,
    wx_adam: Adam,
    wh_adam: Adam,
    b_adam: Adam,
    cache: Vec<StepCache>,
}

impl Lstm {
    /// Initialize with Xavier weights and forget-bias 1.
    pub fn new<R: Rng>(cfg: LstmConfig, rng: &mut R) -> Self {
        assert!(
            cfg.input_dim > 0 && cfg.hidden > 0 && cfg.output_dim > 0,
            "LstmConfig: zero dims"
        );
        let h = cfg.hidden;
        let mut wx = Matrix::zeros(cfg.input_dim, 4 * h);
        let mut wh = Matrix::zeros(h, 4 * h);
        rng::fill_normal(rng, wx.as_mut_slice(), (1.0 / cfg.input_dim as f32).sqrt());
        rng::fill_normal(rng, wh.as_mut_slice(), (1.0 / h as f32).sqrt());
        let mut b = vec![0.0f32; 4 * h];
        // Forget gate bias = 1 helps gradient flow early in training.
        for v in &mut b[h..2 * h] {
            *v = 1.0;
        }
        let head = Dense::new(h, cfg.output_dim, Activation::Sigmoid, cfg.lr, rng);
        Self {
            wx_adam: Adam::new(cfg.input_dim * 4 * h, cfg.lr),
            wh_adam: Adam::new(h * 4 * h, cfg.lr),
            b_adam: Adam::new(4 * h, cfg.lr),
            cfg,
            wx,
            wh,
            b,
            head,
            cache: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &LstmConfig {
        &self.cfg
    }

    fn step(&self, x: &Matrix, h_prev: &Matrix, c_prev: &Matrix) -> (Matrix, Matrix, StepCache) {
        let hdim = self.cfg.hidden;
        let mut z = x.matmul(&self.wx);
        z.add_assign(&h_prev.matmul(&self.wh));
        z.add_row_broadcast(&self.b);
        let n = z.rows();
        let mut i = Matrix::zeros(n, hdim);
        let mut f = Matrix::zeros(n, hdim);
        let mut g = Matrix::zeros(n, hdim);
        let mut o = Matrix::zeros(n, hdim);
        for r in 0..n {
            let zr = z.row(r);
            for c in 0..hdim {
                i.set(r, c, sigmoid(zr[c]));
                f.set(r, c, sigmoid(zr[hdim + c]));
                g.set(r, c, zr[2 * hdim + c].tanh());
                o.set(r, c, sigmoid(zr[3 * hdim + c]));
            }
        }
        let mut c_new = f.hadamard(c_prev);
        c_new.add_assign(&i.hadamard(&g));
        let tanh_c = c_new.map(f32::tanh);
        let h_new = o.hadamard(&tanh_c);
        let cache = StepCache {
            x: x.clone(),
            h_prev: h_prev.clone(),
            c_prev: c_prev.clone(),
            i,
            f,
            g,
            o,
            tanh_c,
        };
        (h_new, c_new, cache)
    }

    /// Run the sequence and return the head output, caching state for
    /// BPTT. `seq` is one Matrix per timestep, each `n × input_dim`.
    ///
    /// # Panics
    /// Panics on an empty sequence or wrong feature width.
    pub fn forward(&mut self, seq: &[Matrix]) -> Matrix {
        assert!(!seq.is_empty(), "Lstm::forward: empty sequence");
        let n = seq[0].rows();
        let mut h = Matrix::zeros(n, self.cfg.hidden);
        let mut c = Matrix::zeros(n, self.cfg.hidden);
        self.cache.clear();
        for x in seq {
            assert_eq!(x.cols(), self.cfg.input_dim, "Lstm: wrong input_dim");
            assert_eq!(x.rows(), n, "Lstm: ragged batch");
            let (h_new, c_new, cache) = self.step(x, &h, &c);
            self.cache.push(cache);
            h = h_new;
            c = c_new;
        }
        self.head.forward(&h)
    }

    /// Inference without caches.
    pub fn predict(&self, seq: &[Matrix]) -> Matrix {
        assert!(!seq.is_empty(), "Lstm::predict: empty sequence");
        let n = seq[0].rows();
        let mut h = Matrix::zeros(n, self.cfg.hidden);
        let mut c = Matrix::zeros(n, self.cfg.hidden);
        for x in seq {
            let (h_new, c_new, _) = self.step(x, &h, &c);
            h = h_new;
            c = c_new;
        }
        self.head.forward_inference(&h)
    }

    /// One BPTT training step on a batch of sequences; `targets` is
    /// `n × output_dim` in `[0, 1]`. Returns the pre-step BCE loss.
    pub fn train_batch(&mut self, seq: &[Matrix], targets: &Matrix) -> f32 {
        let yhat = self.forward(seq);
        let loss_val = loss::bce(&yhat, targets);
        let n = yhat.rows() as f32;
        // Fused sigmoid+BCE head gradient.
        let dz_head = yhat.zip(targets, |p, t| (p - t) / n);
        let mut dh = self.head.backward_preact(&dz_head);
        let hdim = self.cfg.hidden;
        let mut dwx = Matrix::zeros(self.cfg.input_dim, 4 * hdim);
        let mut dwh = Matrix::zeros(hdim, 4 * hdim);
        let mut db = vec![0.0f32; 4 * hdim];
        let mut dc = Matrix::zeros(dh.rows(), hdim);

        for cache in self.cache.iter().rev() {
            // dL/do and dL/dc through h = o ⊙ tanh(c).
            let d_o = dh.hadamard(&cache.tanh_c);
            let mut dco = dh.hadamard(&cache.o);
            dco = dco.zip(&cache.tanh_c, |d, tc| d * (1.0 - tc * tc));
            dco.add_assign(&dc);

            let d_i = dco.hadamard(&cache.g);
            let d_f = dco.hadamard(&cache.c_prev);
            let d_g = dco.hadamard(&cache.i);

            // Gate pre-activation gradients.
            let dzi = d_i.zip(&cache.i, |d, y| d * y * (1.0 - y));
            let dzf = d_f.zip(&cache.f, |d, y| d * y * (1.0 - y));
            let dzg = d_g.zip(&cache.g, |d, y| d * (1.0 - y * y));
            let dzo = d_o.zip(&cache.o, |d, y| d * y * (1.0 - y));
            let dz = dzi.hcat(&dzf).hcat(&dzg).hcat(&dzo);

            dwx.add_assign(&cache.x.t_matmul(&dz));
            dwh.add_assign(&cache.h_prev.t_matmul(&dz));
            for (acc, v) in db.iter_mut().zip(dz.col_sums()) {
                *acc += v;
            }

            dh = dz.matmul_t(&self.wh);
            dc = dco.hadamard(&cache.f);
        }

        self.wx_adam.step(self.wx.as_mut_slice(), dwx.as_slice());
        self.wh_adam.step(self.wh.as_mut_slice(), dwh.as_slice());
        self.b_adam.step(&mut self.b, &db);
        self.head.step();
        loss_val
    }

    /// Multiply-accumulates of one forward pass over a `T`-step sequence
    /// with batch `n`.
    pub fn forward_macs(&self, t: usize, n: usize) -> u64 {
        let per_step =
            self.cfg.input_dim * 4 * self.cfg.hidden + self.cfg.hidden * 4 * self.cfg.hidden;
        (t * n * per_step) as u64 + self.head.forward_macs(n)
    }
}

impl std::fmt::Debug for Lstm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lstm")
            .field("input_dim", &self.cfg.input_dim)
            .field("hidden", &self.cfg.hidden)
            .field("output_dim", &self.cfg.output_dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    /// Sequences whose final-step target is a simple function of the
    /// first step: tests that the cell carries state across time.
    fn copy_task(n: usize, t: usize, rng: &mut impl Rng) -> (Vec<Matrix>, Matrix) {
        let firsts: Vec<f32> = (0..n)
            .map(|_| if rng.gen::<bool>() { 1.0 } else { 0.0 })
            .collect();
        let mut seq = Vec::with_capacity(t);
        for step in 0..t {
            seq.push(Matrix::from_fn(n, 1, |r, _| {
                if step == 0 {
                    firsts[r]
                } else {
                    rng.gen::<f32>().round()
                }
            }));
        }
        let targets = Matrix::from_fn(n, 1, |r, _| firsts[r]);
        (seq, targets)
    }

    #[test]
    fn shapes() {
        let mut rng = seeded(1);
        let mut lstm = Lstm::new(
            LstmConfig {
                input_dim: 4,
                hidden: 8,
                output_dim: 3,
                lr: 1e-3,
            },
            &mut rng,
        );
        let seq: Vec<Matrix> = (0..5).map(|_| Matrix::zeros(2, 4)).collect();
        let y = lstm.forward(&seq);
        assert_eq!((y.rows(), y.cols()), (2, 3));
        assert!(y.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn learns_copy_task() {
        let mut rng = seeded(2);
        let mut lstm = Lstm::new(
            LstmConfig {
                input_dim: 1,
                hidden: 12,
                output_dim: 1,
                lr: 2e-2,
            },
            &mut rng,
        );
        let (seq, targets) = copy_task(64, 4, &mut rng);
        let first = lstm.train_batch(&seq, &targets);
        let mut last = first;
        for _ in 0..250 {
            last = lstm.train_batch(&seq, &targets);
        }
        assert!(last < first * 0.3, "first={first} last={last}");
        // Check actual accuracy.
        let pred = lstm.predict(&seq);
        let correct = (0..64)
            .filter(|&r| (pred.get(r, 0) - targets.get(r, 0)).abs() < 0.4)
            .count();
        assert!(correct >= 55, "correct={correct}/64");
    }

    #[test]
    fn learns_parity_of_two_bits() {
        // Predict XOR of the two inputs — requires non-linear use of
        // state.
        let mut rng = seeded(3);
        let mut lstm = Lstm::new(
            LstmConfig {
                input_dim: 1,
                hidden: 8,
                output_dim: 1,
                lr: 3e-2,
            },
            &mut rng,
        );
        let seq = vec![
            Matrix::from_vec(4, 1, vec![0., 0., 1., 1.]),
            Matrix::from_vec(4, 1, vec![0., 1., 0., 1.]),
        ];
        let targets = Matrix::from_vec(4, 1, vec![0., 1., 1., 0.]);
        for _ in 0..1500 {
            lstm.train_batch(&seq, &targets);
        }
        let pred = lstm.predict(&seq);
        for r in 0..4 {
            assert!(
                (pred.get(r, 0) - targets.get(r, 0)).abs() < 0.35,
                "row {r}: pred={} target={}",
                pred.get(r, 0),
                targets.get(r, 0)
            );
        }
    }

    #[test]
    fn predict_matches_forward() {
        let mut rng = seeded(4);
        let mut lstm = Lstm::new(LstmConfig::default(), &mut rng);
        let seq: Vec<Matrix> = (0..8)
            .map(|s| Matrix::from_fn(3, 8, |r, c| ((s + r + c) % 2) as f32))
            .collect();
        let a = lstm.forward(&seq);
        let b = lstm.predict(&seq);
        assert_eq!(a, b);
    }

    #[test]
    fn macs_scale_with_sequence_length() {
        let mut rng = seeded(5);
        let lstm = Lstm::new(LstmConfig::default(), &mut rng);
        assert!(lstm.forward_macs(16, 1) > lstm.forward_macs(8, 1));
    }

    #[test]
    #[should_panic(expected = "empty sequence")]
    fn empty_sequence_panics() {
        let mut rng = seeded(6);
        let mut lstm = Lstm::new(LstmConfig::default(), &mut rng);
        lstm.forward(&[]);
    }
}
