//! Binary persistence for trained models.
//!
//! The paper's serving path keeps "only the encoder part of the VAE and
//! the K-means clustering models"; a deployment needs to save exactly
//! that artifact and load it on restart without retraining. This module
//! is a compact, versioned, little-endian codec for the model types —
//! no external format dependencies, explicit invariants, and round-trip
//! property tests.
//!
//! Optimizer state and training caches are deliberately *not* encoded:
//! a loaded model serves predictions; resuming training re-initializes
//! Adam (standard practice for small models).

use crate::activation::Activation;
use crate::dense::Dense;
use crate::kmeans::KMeans;
use crate::matrix::Matrix;
use crate::mlp::Mlp;
use crate::vae::{Vae, VaeConfig};

/// Format magic + version (bump on layout changes).
const MAGIC: &[u8; 4] = b"E2NV";
const VERSION: u16 = 1;

/// Decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// Buffer ended before the structure was complete.
    UnexpectedEof,
    /// Magic bytes or version did not match.
    BadHeader,
    /// A tag byte did not correspond to a known variant.
    BadTag(u8),
    /// A length field was implausible (corrupt or hostile input).
    BadLength(u64),
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::UnexpectedEof => write!(f, "unexpected end of model data"),
            PersistError::BadHeader => write!(f, "not an E2-NVM model file (bad magic/version)"),
            PersistError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            PersistError::BadLength(n) => write!(f, "implausible length field {n}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, PersistError>;

/// Upper bound on any single array we will allocate while decoding
/// (guards against corrupt length fields).
const MAX_ELEMENTS: u64 = 1 << 28;

/// Little-endian byte writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh writer with the format header.
    pub fn with_header() -> Self {
        let mut w = Self::default();
        w.buf.extend_from_slice(MAGIC);
        w.u16(VERSION);
        w
    }

    /// Finish and take the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Write one value.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    /// Write one value.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write one value.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write one value.
    pub fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Write one value.
    pub fn f32s(&mut self, vs: &[f32]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.f32(v);
        }
    }
}

/// Little-endian byte reader.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer and validate the header.
    pub fn with_header(buf: &'a [u8]) -> Result<Self> {
        let mut r = Self { buf, pos: 0 };
        let magic = r.take(4)?;
        if magic != MAGIC {
            return Err(PersistError::BadHeader);
        }
        if r.u16()? != VERSION {
            return Err(PersistError::BadHeader);
        }
        Ok(r)
    }

    /// Whether all bytes were consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(PersistError::UnexpectedEof);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one value.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    /// Read one value.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(
            self.take(2)?.try_into().expect("2 bytes"),
        ))
    }
    /// Read one value.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }
    /// Read one value.
    pub fn f32(&mut self) -> Result<f32> {
        Ok(f32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }
    /// Read one value.
    pub fn f32s(&mut self) -> Result<Vec<f32>> {
        let n = self.u64()?;
        if n > MAX_ELEMENTS {
            return Err(PersistError::BadLength(n));
        }
        (0..n).map(|_| self.f32()).collect()
    }
}

/// Types encodable into the model format.
pub trait Persist: Sized {
    /// Append self to the writer.
    fn encode(&self, w: &mut Writer);
    /// Decode self from the reader.
    fn decode(r: &mut Reader<'_>) -> Result<Self>;

    /// Encode with the format header into a standalone buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::with_header();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode from a standalone buffer (header required, trailing bytes
    /// rejected).
    fn from_bytes(buf: &[u8]) -> Result<Self> {
        let mut r = Reader::with_header(buf)?;
        let v = Self::decode(&mut r)?;
        if !r.is_exhausted() {
            return Err(PersistError::BadLength((buf.len() - r.pos) as u64));
        }
        Ok(v)
    }
}

impl Persist for Matrix {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.rows() as u64);
        w.u64(self.cols() as u64);
        w.f32s(self.as_slice());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let rows = r.u64()?;
        let cols = r.u64()?;
        let elements = rows.saturating_mul(cols);
        if elements > MAX_ELEMENTS {
            return Err(PersistError::BadLength(elements));
        }
        let data = r.f32s()?;
        if data.len() as u64 != elements {
            return Err(PersistError::BadLength(data.len() as u64));
        }
        Ok(Matrix::from_vec(rows as usize, cols as usize, data))
    }
}

fn activation_tag(a: Activation) -> u8 {
    match a {
        Activation::Linear => 0,
        Activation::Relu => 1,
        Activation::Sigmoid => 2,
        Activation::Tanh => 3,
    }
}

fn activation_from(tag: u8) -> Result<Activation> {
    Ok(match tag {
        0 => Activation::Linear,
        1 => Activation::Relu,
        2 => Activation::Sigmoid,
        3 => Activation::Tanh,
        t => return Err(PersistError::BadTag(t)),
    })
}

impl Persist for Dense {
    fn encode(&self, w: &mut Writer) {
        w.u8(activation_tag(self.activation()));
        self.weights().encode(w);
        w.f32s(self.bias());
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let act = activation_from(r.u8()?)?;
        let weights = Matrix::decode(r)?;
        let bias = r.f32s()?;
        if bias.len() != weights.cols() {
            return Err(PersistError::BadLength(bias.len() as u64));
        }
        Ok(Dense::from_parts(weights, bias, act))
    }
}

impl Persist for Mlp {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.layers().len() as u64);
        for layer in self.layers() {
            layer.encode(w);
        }
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let n = r.u64()?;
        if n > 1024 {
            return Err(PersistError::BadLength(n));
        }
        let layers: Result<Vec<Dense>> = (0..n).map(|_| Dense::decode(r)).collect();
        Mlp::from_layers(layers?).map_err(|_| PersistError::BadLength(n))
    }
}

impl Persist for VaeConfig {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.input_dim as u64);
        w.u64(self.hidden.len() as u64);
        for &h in &self.hidden {
            w.u64(h as u64);
        }
        w.u64(self.latent_dim as u64);
        w.f32(self.lr);
        w.f32(self.beta);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let input_dim = r.u64()? as usize;
        let nh = r.u64()?;
        if nh > 64 {
            return Err(PersistError::BadLength(nh));
        }
        let hidden: Result<Vec<usize>> = (0..nh).map(|_| Ok(r.u64()? as usize)).collect();
        Ok(VaeConfig {
            input_dim,
            hidden: hidden?,
            latent_dim: r.u64()? as usize,
            lr: r.f32()?,
            beta: r.f32()?,
        })
    }
}

impl Persist for Vae {
    fn encode(&self, w: &mut Writer) {
        self.config().encode(w);
        self.encoder().encode(w);
        self.decoder().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let cfg = VaeConfig::decode(r)?;
        let encoder = Mlp::decode(r)?;
        let decoder = Mlp::decode(r)?;
        Vae::from_parts(cfg, encoder, decoder).map_err(|_| PersistError::BadHeader)
    }
}

impl Persist for KMeans {
    fn encode(&self, w: &mut Writer) {
        self.centroids().encode(w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        Ok(KMeans::from_centroids(Matrix::decode(r)?))
    }
}

impl Persist for crate::dec::ClusterModel {
    fn encode(&self, w: &mut Writer) {
        // Fully qualified: `Vae` has an inherent `encode` (the latent
        // encoder) that would shadow the trait method.
        Persist::encode(self.vae(), w);
        Persist::encode(self.kmeans(), w);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self> {
        let vae = <Vae as Persist>::decode(r)?;
        let kmeans = <KMeans as Persist>::decode(r)?;
        crate::dec::ClusterModel::from_parts(vae, kmeans).map_err(|_| PersistError::BadHeader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dec::{ClusterModel, DecConfig};
    use crate::rng::seeded;
    use rand::Rng;

    #[test]
    fn matrix_roundtrip() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32 * 0.5 - 3.0);
        let bytes = m.to_bytes();
        assert_eq!(Matrix::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn bad_magic_rejected() {
        let m = Matrix::zeros(1, 1);
        let mut bytes = m.to_bytes();
        bytes[0] = b'X';
        assert_eq!(Matrix::from_bytes(&bytes), Err(PersistError::BadHeader));
    }

    #[test]
    fn truncation_rejected() {
        let m = Matrix::from_fn(4, 4, |r, c| (r + c) as f32);
        let bytes = m.to_bytes();
        for cut in [bytes.len() - 1, bytes.len() / 2, 7] {
            assert!(Matrix::from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let m = Matrix::zeros(2, 2);
        let mut bytes = m.to_bytes();
        bytes.push(0);
        assert!(matches!(
            Matrix::from_bytes(&bytes),
            Err(PersistError::BadLength(_))
        ));
    }

    #[test]
    fn corrupt_length_does_not_allocate() {
        // A huge rows field must be rejected before allocation.
        let mut w = Writer::with_header();
        w.u64(u64::MAX / 2);
        w.u64(u64::MAX / 2);
        let bytes = w.into_bytes();
        assert!(matches!(
            Matrix::from_bytes(&bytes),
            Err(PersistError::BadLength(_))
        ));
    }

    #[test]
    fn mlp_roundtrip_preserves_inference() {
        let mut rng = seeded(1);
        let mlp = Mlp::new(
            &[6, 4, 2],
            Activation::Relu,
            Activation::Sigmoid,
            1e-3,
            &mut rng,
        );
        let x = Matrix::from_fn(3, 6, |r, c| (r as f32 - c as f32) * 0.3);
        let before = mlp.forward_inference(&x);
        let loaded = Mlp::from_bytes(&mlp.to_bytes()).unwrap();
        assert_eq!(loaded.forward_inference(&x), before);
    }

    #[test]
    fn vae_roundtrip_preserves_latent() {
        let mut rng = seeded(2);
        let vae = Vae::new(
            VaeConfig {
                input_dim: 16,
                hidden: vec![8],
                latent_dim: 3,
                lr: 1e-3,
                beta: 0.5,
            },
            &mut rng,
        );
        let x = Matrix::from_fn(2, 16, |r, c| ((r + c) % 2) as f32);
        let before = vae.latent(&x);
        let loaded = Vae::from_bytes(&vae.to_bytes()).unwrap();
        assert_eq!(loaded.latent(&x), before);
        assert_eq!(loaded.config(), vae.config());
    }

    #[test]
    fn cluster_model_roundtrip_preserves_predictions() {
        let mut rng = seeded(3);
        let data = Matrix::from_fn(60, 16, |r, _| {
            let base = if r < 30 { 0.0 } else { 1.0 };
            if rng.gen::<f32>() < 0.1 {
                1.0 - base
            } else {
                base
            }
        });
        let cfg = DecConfig {
            vae: VaeConfig {
                input_dim: 16,
                hidden: vec![8],
                latent_dim: 3,
                lr: 3e-3,
                beta: 0.2,
            },
            k: 2,
            pretrain_epochs: 5,
            joint_epochs: 1,
            gamma: 0.2,
            batch: 16,
            kmeans_iters: 10,
            soft_assignment: false,
        };
        let (model, _) = ClusterModel::train(&cfg, &data, None, &mut rng);
        let loaded = ClusterModel::from_bytes(&model.to_bytes()).unwrap();
        for r in 0..data.rows() {
            assert_eq!(loaded.predict(data.row(r)), model.predict(data.row(r)));
        }
    }

    #[test]
    fn kmeans_roundtrip() {
        let km = KMeans::from_centroids(Matrix::from_fn(3, 4, |r, c| (r * c) as f32));
        let loaded = KMeans::from_bytes(&km.to_bytes()).unwrap();
        assert_eq!(loaded.centroids(), km.centroids());
    }
}
