//! Principal Component Analysis via orthogonal (subspace) iteration.
//!
//! The PNW baseline (Kargar et al., ICDE '21) reduces dimensionality
//! with PCA before K-means; the paper's Figure 4 sweeps feature counts
//! up to 16384, so an explicit `d × d` covariance eigendecomposition is
//! not an option. Orthogonal iteration only touches the data through
//! products `X·B` and `Xᵀ·(X·B)` (cost `O(n·d·p)` per sweep), which
//! scales to the full sweep.

use crate::matrix::Matrix;
use crate::rng;
use rand::Rng;

/// A fitted PCA: data mean and the top principal directions.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vec<f32>,
    /// `d × p` matrix of orthonormal principal directions (columns).
    components: Matrix,
}

impl Pca {
    /// Fit the top `p` components of `data` (rows = samples) with
    /// `sweeps` orthogonal-iteration rounds (8–15 is plenty for the
    /// well-separated spectra of bit-pattern data).
    ///
    /// # Panics
    /// Panics if `data` is empty or `p == 0`.
    pub fn fit<R: Rng>(data: &Matrix, p: usize, sweeps: usize, rng: &mut R) -> Self {
        assert!(data.rows() > 0, "Pca::fit: empty data");
        assert!(p > 0, "Pca::fit: zero components");
        let d = data.cols();
        let p = p.min(d).min(data.rows());
        let mean = data.col_means();

        // Centered copy once; memory is n*d floats, same as input.
        let mut centered = data.clone();
        for r in 0..centered.rows() {
            for (v, m) in centered.row_mut(r).iter_mut().zip(&mean) {
                *v -= m;
            }
        }

        let mut b = Matrix::zeros(d, p);
        rng::fill_normal(rng, b.as_mut_slice(), 1.0);
        orthonormalize(&mut b);
        for _ in 0..sweeps.max(1) {
            // B <- Xᵀ(X B); covariance scaling is irrelevant to the
            // direction iteration.
            let xb = centered.matmul(&b);
            b = centered.t_matmul(&xb);
            orthonormalize(&mut b);
        }
        Self {
            mean,
            components: b,
        }
    }

    /// Number of components.
    pub fn p(&self) -> usize {
        self.components.cols()
    }

    /// Project a batch into the component space (`n × p` scores).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.mean.len(), "Pca::transform: wrong dim");
        let mut centered = data.clone();
        for r in 0..centered.rows() {
            for (v, m) in centered.row_mut(r).iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        centered.matmul(&self.components)
    }

    /// Project one sample.
    pub fn transform_one(&self, x: &[f32]) -> Vec<f32> {
        let m = Matrix::from_vec(1, x.len(), x.to_vec());
        self.transform(&m).row(0).to_vec()
    }

    /// The component matrix (`d × p`).
    pub fn components(&self) -> &Matrix {
        &self.components
    }
}

/// Gram–Schmidt orthonormalization of the columns of `b`, in place.
fn orthonormalize(b: &mut Matrix) {
    let (d, p) = (b.rows(), b.cols());
    for j in 0..p {
        // Subtract projections onto previous columns.
        for prev in 0..j {
            let dot: f32 = (0..d).map(|r| b.get(r, j) * b.get(r, prev)).sum();
            for r in 0..d {
                let v = b.get(r, j) - dot * b.get(r, prev);
                b.set(r, j, v);
            }
        }
        let norm: f32 = (0..d).map(|r| b.get(r, j).powi(2)).sum::<f32>().sqrt();
        if norm > f32::EPSILON {
            for r in 0..d {
                b.set(r, j, b.get(r, j) / norm);
            }
        } else {
            // Degenerate column: reset to a unit basis vector.
            for r in 0..d {
                b.set(r, j, if r == j % d { 1.0 } else { 0.0 });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    /// Data spread along a known direction plus small noise.
    fn line_data(n: usize, dir: &[f32], rng: &mut impl Rng) -> Matrix {
        let d = dir.len();
        Matrix::from_fn(n, d, |r, c| {
            let t = (r as f32 / n as f32 - 0.5) * 20.0;
            t * dir[c] + rng::normal(rng) * 0.05 + 3.0
        })
    }

    #[test]
    fn recovers_dominant_direction() {
        let mut rng = seeded(1);
        let dir = [0.6f32, 0.8, 0.0, 0.0];
        let data = line_data(200, &dir, &mut rng);
        let pca = Pca::fit(&data, 1, 12, &mut rng);
        let c: Vec<f32> = (0..4).map(|r| pca.components().get(r, 0)).collect();
        // Component equals ±dir.
        let dot: f32 = c.iter().zip(&dir).map(|(a, b)| a * b).sum();
        assert!(dot.abs() > 0.99, "dot={dot} c={c:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        let mut rng = seeded(2);
        let data = Matrix::from_fn(100, 8, |r, c| {
            ((r * 7 + c * 3) % 13) as f32 + rng::normal(&mut rng)
        });
        let pca = Pca::fit(&data, 3, 10, &mut rng);
        let b = pca.components();
        for i in 0..3 {
            for j in 0..3 {
                let dot: f32 = (0..8).map(|r| b.get(r, i) * b.get(r, j)).sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-4, "B[{i}]·B[{j}]={dot}");
            }
        }
    }

    #[test]
    fn transform_centers_data() {
        let mut rng = seeded(3);
        let data = line_data(100, &[1.0, 0.0], &mut rng);
        let pca = Pca::fit(&data, 1, 10, &mut rng);
        let scores = pca.transform(&data);
        let mean: f32 = scores.as_slice().iter().sum::<f32>() / scores.rows() as f32;
        assert!(mean.abs() < 0.1, "scores not centered: {mean}");
    }

    #[test]
    fn transform_one_matches_batch() {
        let mut rng = seeded(4);
        let data = line_data(50, &[0.0, 1.0, 0.0], &mut rng);
        let pca = Pca::fit(&data, 2, 10, &mut rng);
        let batch = pca.transform(&data);
        let one = pca.transform_one(data.row(7));
        assert_eq!(one.as_slice(), batch.row(7));
    }

    #[test]
    fn p_capped_by_dims() {
        let mut rng = seeded(5);
        let data = Matrix::from_fn(10, 3, |r, c| (r + c) as f32);
        let pca = Pca::fit(&data, 99, 5, &mut rng);
        assert_eq!(pca.p(), 3);
    }

    #[test]
    fn projection_preserves_variance_better_than_random() {
        let mut rng = seeded(6);
        let dir = [0.5f32, 0.5, 0.5, 0.5];
        let data = line_data(200, &dir, &mut rng);
        let pca = Pca::fit(&data, 1, 12, &mut rng);
        let scores = pca.transform(&data);
        let var: f32 = scores.as_slice().iter().map(|v| v * v).sum::<f32>() / 200.0;
        // Total variance is ~ (spread of t) * |dir|²; the top component
        // must capture nearly all of it.
        assert!(var > 30.0, "captured var={var}");
    }
}
