//! Joint VAE + K-means training (DEC/IDEC-style), the heart of the
//! E2-NVM model (paper §3.2): "E2-NVM integrates the VAE's
//! reconstruction loss and the K-means clustering loss to jointly train
//! cluster label assignment and learning of suitable features for
//! clustering."
//!
//! Training proceeds in two phases:
//! 1. **Pretrain** the VAE on the raw bit features (ELBO only).
//! 2. **Joint fine-tune**: run K-means in latent space, then for a few
//!    epochs add the cluster-distance loss `γ · Σᵢ ‖zᵢ − μ_{c(i)}‖²` to
//!    the ELBO gradient, re-fitting centroids between epochs.
//!
//! The product is a [`ClusterModel`]: the VAE *encoder* plus the K-means
//! centroids — exactly the two artifacts the paper keeps for serving
//! ("After training, only the encoder part of the VAE and the K-means
//! clustering models are needed").

use crate::kmeans::KMeans;
use crate::matrix::Matrix;
use crate::vae::{Vae, VaeConfig, VaeLosses};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hyper-parameters of the joint trainer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecConfig {
    /// VAE architecture and optimizer settings.
    pub vae: VaeConfig,
    /// Number of clusters K.
    pub k: usize,
    /// VAE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Joint fine-tuning epochs.
    pub joint_epochs: usize,
    /// Weight γ of the cluster-distance loss during fine-tuning.
    pub gamma: f32,
    /// Mini-batch size.
    pub batch: usize,
    /// Lloyd iterations per K-means (re)fit.
    pub kmeans_iters: usize,
    /// Joint-training flavor: hard nearest-centroid distance loss
    /// (default, what the E2-NVM paper describes) or DEC/IDEC-style
    /// soft assignment with a Student-t kernel and a sharpened target
    /// distribution (the method of the paper's deep-clustering
    /// citation, Guo et al. IJCAI '17).
    pub soft_assignment: bool,
}

impl Default for DecConfig {
    fn default() -> Self {
        Self {
            vae: VaeConfig::default(),
            k: 10,
            pretrain_epochs: 20,
            joint_epochs: 10,
            gamma: 0.1,
            batch: 64,
            kmeans_iters: 25,
            soft_assignment: false,
        }
    }
}

/// Soft assignment q_ij ∝ (1 + ‖z_i − μ_j‖²)⁻¹ (Student-t kernel with
/// one degree of freedom), row-normalized — DEC's similarity measure.
pub fn soft_assignments(z: &Matrix, centroids: &Matrix) -> Matrix {
    let (n, k) = (z.rows(), centroids.rows());
    let mut q = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0f32;
        for j in 0..k {
            let d2: f32 = z
                .row(i)
                .iter()
                .zip(centroids.row(j))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            let v = 1.0 / (1.0 + d2);
            q.set(i, j, v);
            row_sum += v;
        }
        for j in 0..k {
            q.set(i, j, q.get(i, j) / row_sum.max(f32::EPSILON));
        }
    }
    q
}

/// DEC's sharpened target distribution p_ij ∝ q_ij² / f_j, where f_j is
/// the soft cluster frequency — pushes points toward high-confidence
/// assignments.
#[allow(clippy::needless_range_loop)] // index style is clearer here
pub fn target_distribution(q: &Matrix) -> Matrix {
    let (n, k) = (q.rows(), q.cols());
    let f: Vec<f32> = (0..k)
        .map(|j| (0..n).map(|i| q.get(i, j)).sum::<f32>().max(f32::EPSILON))
        .collect();
    let mut p = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0f32;
        for j in 0..k {
            let v = q.get(i, j) * q.get(i, j) / f[j];
            p.set(i, j, v);
            row_sum += v;
        }
        for j in 0..k {
            p.set(i, j, p.get(i, j) / row_sum.max(f32::EPSILON));
        }
    }
    p
}

/// Gradient of the KL(P‖Q) clustering loss w.r.t. z (DEC eq. 4, up to
/// the constant factor folded into γ):
/// dL/dz_i = 2γ Σ_j (q_ij − p_ij) · (z_i − μ_j) / (1 + ‖z_i − μ_j‖²).
#[allow(clippy::needless_range_loop)] // index style is clearer here
fn soft_grad(zb: &Matrix, centroids: &Matrix, p: &Matrix, q: &Matrix, gamma: f32) -> Matrix {
    let (n, l) = (zb.rows(), zb.cols());
    let k = centroids.rows();
    let mut grad = Matrix::zeros(n, l);
    let inv_n = 1.0 / n as f32;
    for i in 0..n {
        for j in 0..k {
            let d2: f32 = zb
                .row(i)
                .iter()
                .zip(centroids.row(j))
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum();
            let w = 2.0 * gamma * (q.get(i, j) - p.get(i, j)) / (1.0 + d2) * inv_n;
            for d in 0..l {
                let g = grad.get(i, d) + w * (zb.get(i, d) - centroids.row(j)[d]);
                grad.set(i, d, g);
            }
        }
    }
    grad
}

/// Loss trajectory of a training run (feeds the paper's Figure 9).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrainingHistory {
    /// Per-epoch training losses (pretrain then joint epochs).
    pub train: Vec<VaeLosses>,
    /// Per-epoch validation losses (empty when no validation set given).
    pub validation: Vec<VaeLosses>,
    /// SSE in latent space after each K-means (re)fit.
    pub sse: Vec<f32>,
}

/// The servable artifact: encoder + centroids.
#[derive(Debug, Clone)]
pub struct ClusterModel {
    vae: Vae,
    kmeans: KMeans,
}

impl ClusterModel {
    /// Train on `data` (rows = samples of bit features in `[0, 1]`),
    /// optionally tracking validation loss on `validation`.
    pub fn train<R: Rng>(
        cfg: &DecConfig,
        data: &Matrix,
        validation: Option<&Matrix>,
        rng: &mut R,
    ) -> (Self, TrainingHistory) {
        assert!(data.rows() > 0, "ClusterModel::train: empty data");
        let mut history = TrainingHistory::default();
        let mut vae = Vae::new(cfg.vae.clone(), rng);

        // Phase 1: ELBO-only pretraining.
        for _ in 0..cfg.pretrain_epochs {
            let l = vae.train_epoch(data, cfg.batch, rng);
            history.train.push(l);
            if let Some(v) = validation {
                history.validation.push(vae.evaluate(v));
            }
        }

        // Phase 2: joint fine-tuning.
        let z = vae.latent(data);
        let mut fit = KMeans::fit(&z, cfg.k, cfg.kmeans_iters, rng);
        history.sse.push(fit.sse);
        for _ in 0..cfg.joint_epochs {
            let centroids = fit.model.centroids().clone();
            let gamma = cfg.gamma;
            if cfg.soft_assignment {
                // DEC: compute the target distribution once per epoch
                // from the full latent snapshot, then descend KL(P||Q)
                // per batch.
                let l = vae.train_epoch_with(data, cfg.batch, rng, |zb| {
                    let q = soft_assignments(zb, &centroids);
                    let p = target_distribution(&q);
                    Some(soft_grad(zb, &centroids, &p, &q, gamma))
                });
                history.train.push(l);
                if let Some(v) = validation {
                    history.validation.push(vae.evaluate(v));
                }
                let z = vae.latent(data);
                fit = KMeans::fit(&z, cfg.k, cfg.kmeans_iters, rng);
                history.sse.push(fit.sse);
                continue;
            }
            let l = vae.train_epoch_with(data, cfg.batch, rng, |zb| {
                // dL_cluster/dz = 2γ(z − μ_c)/n for each row's nearest
                // centroid.
                let n = zb.rows() as f32;
                let nearest = |x: &[f32]| -> usize {
                    (0..centroids.rows())
                        .min_by(|&a, &b| {
                            let da: f32 = centroids
                                .row(a)
                                .iter()
                                .zip(x)
                                .map(|(&m, &v)| (m - v) * (m - v))
                                .sum();
                            let db: f32 = centroids
                                .row(b)
                                .iter()
                                .zip(x)
                                .map(|(&m, &v)| (m - v) * (m - v))
                                .sum();
                            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                        })
                        .unwrap_or(0)
                };
                let mut grad = Matrix::zeros(zb.rows(), zb.cols());
                for r in 0..zb.rows() {
                    let c = nearest(zb.row(r));
                    let mu = centroids.row(c);
                    for (g, (&zv, &mv)) in grad.row_mut(r).iter_mut().zip(zb.row(r).iter().zip(mu))
                    {
                        *g = 2.0 * gamma * (zv - mv) / n;
                    }
                }
                Some(grad)
            });
            history.train.push(l);
            if let Some(v) = validation {
                history.validation.push(vae.evaluate(v));
            }
            let z = vae.latent(data);
            fit = KMeans::fit(&z, cfg.k, cfg.kmeans_iters, rng);
            history.sse.push(fit.sse);
        }

        (
            Self {
                vae,
                kmeans: fit.model,
            },
            history,
        )
    }

    /// Predict the cluster of one feature vector (two-stage: encoder
    /// then K-means — the prediction path whose latency Figure 10
    /// reports).
    pub fn predict(&self, features: &[f32]) -> usize {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        let z = self.vae.latent(&x);
        self.kmeans.predict(z.row(0))
    }

    /// Predict clusters for a batch of samples.
    pub fn predict_batch(&self, data: &Matrix) -> Vec<usize> {
        let z = self.vae.latent(data);
        (0..z.rows())
            .map(|r| self.kmeans.predict(z.row(r)))
            .collect()
    }

    /// Clusters ordered nearest-first for a feature vector (the DAP's
    /// fallback order).
    pub fn clusters_by_distance(&self, features: &[f32]) -> Vec<usize> {
        let x = Matrix::from_vec(1, features.len(), features.to_vec());
        let z = self.vae.latent(&x);
        self.kmeans.clusters_by_distance(z.row(0))
    }

    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.kmeans.k()
    }

    /// Input feature dimensionality the model was trained on.
    pub fn input_dim(&self) -> usize {
        self.vae.config().input_dim
    }

    /// Multiply-accumulates per prediction (encoder forward + centroid
    /// scan) — feeds the CPU-energy model.
    pub fn predict_macs(&self) -> u64 {
        self.vae.predict_macs() + (self.kmeans.k() * self.vae.config().latent_dim) as u64
    }

    /// The underlying encoder-bearing VAE.
    pub fn vae(&self) -> &Vae {
        &self.vae
    }

    /// The underlying K-means model.
    pub fn kmeans(&self) -> &KMeans {
        &self.kmeans
    }

    /// Rebuild from persisted parts, validating that the centroids live
    /// in the VAE's latent space.
    pub fn from_parts(vae: Vae, kmeans: KMeans) -> Result<Self, String> {
        if kmeans.centroids().cols() != vae.config().latent_dim {
            return Err(format!(
                "ClusterModel::from_parts: centroid dim {} != latent dim {}",
                kmeans.centroids().cols(),
                vae.config().latent_dim
            ));
        }
        Ok(Self { vae, kmeans })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;
    use crate::vae::VaeConfig;

    /// Three bit-pattern classes with flip noise.
    fn three_class_bits(n_per: usize, dim: usize, rng: &mut impl Rng) -> (Matrix, Vec<usize>) {
        let templates: Vec<Vec<f32>> = (0..3)
            .map(|cls| {
                (0..dim)
                    .map(|d| if (d / 4) % 3 == cls { 1.0 } else { 0.0 })
                    .collect()
            })
            .collect();
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for (cls, t) in templates.iter().enumerate() {
            for _ in 0..n_per {
                rows.push(
                    t.iter()
                        .map(|&b| if rng.gen::<f32>() < 0.05 { 1.0 - b } else { b })
                        .collect(),
                );
                labels.push(cls);
            }
        }
        (Matrix::from_rows(&rows), labels)
    }

    fn quick_cfg(dim: usize, k: usize) -> DecConfig {
        DecConfig {
            vae: VaeConfig {
                input_dim: dim,
                hidden: vec![32],
                latent_dim: 4,
                lr: 5e-3,
                beta: 0.2,
            },
            k,
            pretrain_epochs: 15,
            joint_epochs: 5,
            gamma: 0.2,
            batch: 32,
            kmeans_iters: 20,
            soft_assignment: false,
        }
    }

    #[test]
    fn clusters_align_with_classes() {
        let mut rng = seeded(11);
        let (data, labels) = three_class_bits(60, 48, &mut rng);
        let (model, history) = ClusterModel::train(&quick_cfg(48, 3), &data, None, &mut rng);
        let preds = model.predict_batch(&data);
        // Majority label purity: each ground-truth class should map
        // dominantly to one cluster.
        let mut purity_total = 0.0;
        for cls in 0..3 {
            let mut counts = [0usize; 3];
            for (p, &l) in preds.iter().zip(&labels) {
                if l == cls {
                    counts[*p] += 1;
                }
            }
            purity_total += *counts.iter().max().unwrap() as f32 / 60.0;
        }
        let purity = purity_total / 3.0;
        assert!(purity > 0.8, "purity={purity}");
        assert!(!history.train.is_empty());
        assert_eq!(history.train.len(), 20);
    }

    #[test]
    fn validation_history_tracked() {
        let mut rng = seeded(12);
        let (data, _) = three_class_bits(30, 32, &mut rng);
        let (val, _) = three_class_bits(10, 32, &mut rng);
        let mut cfg = quick_cfg(32, 3);
        cfg.pretrain_epochs = 4;
        cfg.joint_epochs = 2;
        let (_, history) = ClusterModel::train(&cfg, &data, Some(&val), &mut rng);
        assert_eq!(history.validation.len(), 6);
        assert_eq!(history.sse.len(), 3);
    }

    #[test]
    fn predict_single_matches_batch() {
        let mut rng = seeded(13);
        let (data, _) = three_class_bits(20, 32, &mut rng);
        let mut cfg = quick_cfg(32, 3);
        cfg.pretrain_epochs = 3;
        cfg.joint_epochs = 1;
        let (model, _) = ClusterModel::train(&cfg, &data, None, &mut rng);
        let batch = model.predict_batch(&data);
        for (r, expected) in batch.iter().enumerate() {
            assert_eq!(model.predict(data.row(r)), *expected);
        }
    }

    #[test]
    fn joint_training_reduces_sse() {
        let mut rng = seeded(14);
        let (data, _) = three_class_bits(60, 48, &mut rng);
        let (_, history) = ClusterModel::train(&quick_cfg(48, 3), &data, None, &mut rng);
        let first = history.sse.first().copied().unwrap();
        let last = history.sse.last().copied().unwrap();
        // The joint loss optimises recon + KL + gamma·cluster, not SSE
        // itself, so SSE can wobble across epochs; only a blow-up is a
        // bug.
        assert!(
            last <= first * 1.25,
            "joint epochs should not blow up SSE: first={first} last={last}"
        );
    }

    #[test]
    fn soft_assignments_are_distributions() {
        let z = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0], vec![0.1, 0.0]]);
        let centroids = Matrix::from_rows(&[vec![0.0, 0.0], vec![5.0, 5.0]]);
        let q = soft_assignments(&z, &centroids);
        for i in 0..3 {
            let row_sum: f32 = (0..2).map(|j| q.get(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Points near a centroid assign strongly to it.
        assert!(q.get(0, 0) > 0.9);
        assert!(q.get(1, 1) > 0.9);
        let p = target_distribution(&q);
        // Sharpening: p is at least as confident as q on the argmax.
        assert!(p.get(0, 0) >= q.get(0, 0) - 1e-5);
        for i in 0..3 {
            let row_sum: f32 = (0..2).map(|j| p.get(i, j)).sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn soft_mode_clusters_align_with_classes() {
        let mut rng = seeded(21);
        let (data, labels) = three_class_bits(60, 48, &mut rng);
        let cfg = DecConfig {
            soft_assignment: true,
            gamma: 0.5,
            ..quick_cfg(48, 3)
        };
        let (model, history) = ClusterModel::train(&cfg, &data, None, &mut rng);
        let preds = model.predict_batch(&data);
        let mut purity_total = 0.0;
        for cls in 0..3 {
            let mut counts = [0usize; 3];
            for (p, &l) in preds.iter().zip(&labels) {
                if l == cls {
                    counts[*p] += 1;
                }
            }
            purity_total += *counts.iter().max().unwrap() as f32 / 60.0;
        }
        let purity = purity_total / 3.0;
        assert!(purity > 0.8, "soft-mode purity={purity}");
        assert!(!history.sse.is_empty());
    }

    #[test]
    fn metadata_accessors() {
        let mut rng = seeded(15);
        let (data, _) = three_class_bits(10, 32, &mut rng);
        let mut cfg = quick_cfg(32, 3);
        cfg.pretrain_epochs = 1;
        cfg.joint_epochs = 1;
        let (model, _) = ClusterModel::train(&cfg, &data, None, &mut rng);
        assert_eq!(model.k(), 3);
        assert_eq!(model.input_dim(), 32);
        assert!(model.predict_macs() > 0);
    }
}
