//! Property tests for the ML substrate: linear-algebra identities,
//! K-means invariants, and encoding round-trips.

use e2nvm_ml::kmeans::KMeans;
use e2nvm_ml::matrix::Matrix;
use e2nvm_ml::rng::seeded;
use e2nvm_ml::{data, Pca};
use proptest::prelude::*;

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// (A·B)ᵀ == Bᵀ·Aᵀ.
    #[test]
    fn matmul_transpose_identity(a in matrix(3, 4), b in matrix(4, 2)) {
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Fused-transpose products match materialized transposes.
    #[test]
    fn fused_transpose_products(a in matrix(4, 3), b in matrix(4, 5), c in matrix(6, 3)) {
        let fused = a.t_matmul(&b);
        let explicit = a.transpose().matmul(&b);
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        let fused2 = a.matmul_t(&c);
        let explicit2 = a.matmul(&c.transpose());
        for (x, y) in fused2.as_slice().iter().zip(explicit2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// Matrix multiplication distributes over addition.
    #[test]
    fn matmul_distributive(a in matrix(2, 3), b in matrix(3, 2), c in matrix(3, 2)) {
        let mut bc = b.clone();
        bc.add_assign(&c);
        let left = a.matmul(&bc);
        let mut right = a.matmul(&b);
        right.add_assign(&a.matmul(&c));
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-2);
        }
    }

    /// K-means: every point's assigned centroid is its nearest; SSE is
    /// the sum of those distances.
    #[test]
    fn kmeans_assignment_optimality(
        rows in proptest::collection::vec(
            proptest::collection::vec(-5.0f32..5.0, 3), 4..40),
        k in 1usize..5,
    ) {
        let data = Matrix::from_rows(&rows);
        let mut rng = seeded(7);
        let fit = KMeans::fit(&data, k, 30, &mut rng);
        let mut sse = 0.0f32;
        for r in 0..data.rows() {
            let (best, d) = fit.model.predict_with_distance(data.row(r));
            // Assigned cluster must not be farther than the best.
            let assigned_d: f32 = fit.model.centroids().row(fit.assignments[r])
                .iter().zip(data.row(r)).map(|(&a, &b)| (a - b) * (a - b)).sum();
            prop_assert!(assigned_d <= d + 1e-3,
                "row {r}: assigned {assigned_d} vs best {d} (cluster {best})");
            sse += d;
        }
        prop_assert!((sse - fit.sse).abs() < sse.abs().max(1.0) * 1e-3);
    }

    /// bytes -> features -> (threshold) -> bytes round-trips.
    #[test]
    fn feature_roundtrip(bytes in proptest::collection::vec(any::<u8>(), 1..64)) {
        let feats = data::bytes_to_features(&bytes);
        prop_assert_eq!(feats.len(), bytes.len() * 8);
        let bits: Vec<u8> = feats.iter().map(|&f| if f > 0.5 { 1 } else { 0 }).collect();
        let back = e2nvm_sim_free_bits_to_bytes(&bits);
        prop_assert_eq!(back, bytes);
    }

    /// PCA transform output has the requested width and finite values.
    #[test]
    fn pca_output_finite(
        rows in proptest::collection::vec(
            proptest::collection::vec(-3.0f32..3.0, 6), 8..32),
        p in 1usize..4,
    ) {
        let data = Matrix::from_rows(&rows);
        let mut rng = seeded(11);
        let pca = Pca::fit(&data, p, 8, &mut rng);
        let scores = pca.transform(&data);
        prop_assert_eq!(scores.cols(), p.min(6));
        prop_assert!(scores.as_slice().iter().all(|v| v.is_finite()));
    }
}

/// Minimal local bit-packer (MSB-first) to avoid a cross-crate dep in
/// this test.
fn e2nvm_sim_free_bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    bits.chunks_exact(8)
        .map(|chunk| chunk.iter().fold(0u8, |acc, &b| (acc << 1) | (b & 1)))
        .collect()
}
