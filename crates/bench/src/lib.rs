//! # e2nvm-bench — the experiment harness
//!
//! One module per concern: [`table`] renders/persists result tables,
//! [`systems`] wraps every write scheme behind one streaming interface,
//! and [`figures`] regenerates each figure of the paper (see DESIGN.md
//! §4 for the experiment index). The `experiments` binary drives it:
//!
//! ```text
//! cargo run -p e2nvm-bench --release --bin experiments -- all --quick
//! cargo run -p e2nvm-bench --release --bin experiments -- fig10 fig12
//! ```

pub mod figures;
pub mod systems;
pub mod table;

pub use systems::{seeded_device, stream, E2System, InPlaceSystem, PlacementSystem, WriteSystem};
pub use table::{fmt, Table};

/// Global knob: quick mode shrinks pools/epochs so the full suite runs
/// in minutes; full mode uses larger (still laptop-scale) sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Quick (CI-sized) runs.
    pub quick: bool,
}

impl Scale {
    /// Pick between the quick and full value.
    pub fn pick<T>(&self, quick: T, full: T) -> T {
        if self.quick {
            quick
        } else {
            full
        }
    }
}
